"""Batched execution: byte-identity with the per-cell path, and the arena.

The contract under test: ``execute_campaign(batch=True)`` (and the
default in-process batching) produces rows, store records and resume
behaviour *byte-identical* to the per-cell serial executor over the same
grid -- batching buys wall-clock time only.  Plus unit coverage of
:class:`repro.simulator.fast_network.BatchedEngine` lanes: identical
kernel semantics to a standalone ``FastNetwork``, state isolation across
re-vends, and bandwidth enforcement.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import run_algorithm
from repro.campaign import Campaign, RunStore, execute_campaign
from repro.campaign.spec import graph_spec_for
from repro.config import RunConfig
from repro.core.elkin_mst import compute_mst
from repro.exceptions import (
    BandwidthExceededError,
    ConfigurationError,
    SimulationError,
    VerificationError,
)
from repro.graphs.generators import GraphSpec, make_graph
from repro.simulator.engine import create_engine, engine_provider, register_engine
from repro.simulator.fast_network import BatchedEngine, FastNetwork
from repro.verify.mst_checks import MSTOracle


def _sixteen_cell_grid() -> Campaign:
    """2 graphs x 2 algorithms x 2 bandwidths x 2 seeds on the fast kernel."""
    graphs = [
        graph_spec_for("random_connected", 20),
        graph_spec_for("planted_fragments", 16),
    ]
    return Campaign.from_grid(
        "batched-eq",
        graphs,
        algorithms=("elkin", "boruvka_seq"),
        bandwidths=(1, 2),
        engines=("fast",),
        seeds=(0, 1),
    )


class TestBatchedEquivalence:
    def test_rows_and_store_records_byte_identical(self, tmp_path):
        campaign = _sixteen_cell_grid()
        assert len(campaign) == 16
        serial_store = RunStore(tmp_path / "serial.jsonl")
        batched_store = RunStore(tmp_path / "batched.jsonl")
        serial = execute_campaign(campaign, store=serial_store, batch=False)
        batched = execute_campaign(campaign, store=batched_store, batch=True)

        assert serial.rows == batched.rows
        assert serial_store.run_keys() == batched_store.run_keys()
        for spec in campaign.specs:
            key = spec.run_key()
            assert json.dumps(serial_store.get_row(key), sort_keys=True) == json.dumps(
                batched_store.get_row(key), sort_keys=True
            )
            assert (
                serial_store.get_result(key).to_json_dict()
                == batched_store.get_result(key).to_json_dict()
            )
            assert serial_store.get_spec(key) == batched_store.get_spec(key)

    def test_resume_across_execution_modes(self, tmp_path):
        campaign = _sixteen_cell_grid()
        store_path = tmp_path / "store.jsonl"
        first = execute_campaign(campaign, store=RunStore(store_path), batch=False)
        assert first.executed == 16
        # A batched run resumes every per-cell record...
        resumed = execute_campaign(campaign, store=RunStore(store_path), batch=True)
        assert resumed.executed == 0
        assert resumed.reused == 16
        assert resumed.rows == first.rows
        # ... and vice versa: per-cell execution resumes batched records.
        batched_path = tmp_path / "batched.jsonl"
        second = execute_campaign(campaign, store=RunStore(batched_path), batch=True)
        reresumed = execute_campaign(
            campaign, store=RunStore(batched_path), batch=False
        )
        assert reresumed.executed == 0
        assert reresumed.rows == second.rows

    def test_default_in_process_execution_batches(self, tmp_path):
        campaign = _sixteen_cell_grid()
        report = execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl"))
        provenance = report.store.get_provenance(campaign.specs[0].run_key())
        assert provenance["executor"] == "batched"
        explicit = execute_campaign(campaign, batch=False)
        assert report.rows == explicit.rows

    def test_batch_with_pool_rejected(self):
        with pytest.raises(ConfigurationError, match="in-process"):
            execute_campaign(_sixteen_cell_grid(), jobs=2, batch=True)

    def test_parallel_rows_match_batched_rows(self):
        campaign = _sixteen_cell_grid()
        batched = execute_campaign(campaign, batch=True)
        pooled = execute_campaign(campaign, jobs=2)
        assert batched.rows == pooled.rows

    def test_nondeterministic_cells_stay_self_consistent(self):
        # No pinned seed: every cell must draw its own instance, and the
        # row's instance description must match the simulated graph.
        campaign = Campaign.from_grid(
            "nondet",
            [GraphSpec("random_connected", {"n": 18})],
            algorithms=("elkin",),
            seeds=(None,),
        )
        report = execute_campaign(campaign, batch=True)
        row = report.rows[0]
        result = report.store.get_result(campaign.specs[0].run_key())
        assert row["n"] == result.n and row["m"] == result.m

    def test_batched_verification_still_catches_wrong_results(self):
        from repro.algorithms import AlgorithmInfo, register_algorithm, _REGISTRY

        def broken(graph, config=None):
            result = run_algorithm(graph, "kruskal", config)
            result.edges = set(list(result.edges)[:-1])  # drop an edge
            result.algorithm = "broken"
            return result

        register_algorithm(
            AlgorithmInfo(
                name="broken",
                runner=broken,
                family="sequential-baseline",
                is_distributed=False,
            )
        )
        try:
            campaign = Campaign.from_grid(
                "broken",
                [graph_spec_for("random_connected", 16)],
                algorithms=("broken",),
                seeds=(0,),
            )
            with pytest.raises(VerificationError):
                execute_campaign(campaign, batch=True)
        finally:
            _REGISTRY.pop("broken", None)

    def test_batched_stands_down_when_fast_engine_is_replaced(self):
        # A re-registered "fast" kernel must be honoured: the batch
        # runner detects the substitution and constructs engines
        # normally instead of vending stock-FastNetwork lanes.
        created = []

        class CountingFast(FastNetwork):
            __slots__ = ()

            def __init__(self, graph, bandwidth=1, validate=True):
                created.append(id(graph))
                super().__init__(graph, bandwidth=bandwidth, validate=validate)

        register_engine("fast", CountingFast)
        try:
            campaign = Campaign.from_grid(
                "swapped",
                [graph_spec_for("random_connected", 16)],
                algorithms=("elkin",),
                engines=("fast",),
                seeds=(0,),
            )
            report = execute_campaign(campaign, batch=True)
            assert created, "replacement engine was never constructed"
            assert report.executed == 1
        finally:
            register_engine("fast", FastNetwork)


class TestBatchedEngineLanes:
    def test_lane_reports_identical_results_to_standalone(self):
        graph = make_graph("random_connected", n=20, seed=3)
        arena = BatchedEngine([graph])
        baseline = compute_mst(graph, RunConfig(engine="fast"))
        for _ in range(3):  # re-vends must be state-clean
            vended = []

            def provider(candidate, bandwidth, name):
                if name == "fast" and candidate is graph and not vended:
                    vended.append(True)
                    return arena.lane(candidate, bandwidth)
                return None

            with engine_provider(provider):
                result = compute_mst(graph, RunConfig(engine="fast"))
            assert result.to_json_dict() == baseline.to_json_dict()

    def test_lanes_share_one_dense_index_space(self):
        graphs = [
            make_graph("random_connected", n=12, seed=s) for s in range(4)
        ]
        arena = BatchedEngine(graphs)
        assert arena.graph_count == 4
        assert arena.total_vertices == sum(g.number_of_nodes() for g in graphs)
        assert arena.total_slots == sum(2 * g.number_of_edges() for g in graphs)
        lanes = [arena.lane(g) for g in graphs]
        # All lanes alias the same flat arena arrays.
        assert len({id(lane._nbr_weight) for lane in lanes}) == 1

    def test_lane_bandwidth_enforcement(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.lane(graph, bandwidth=1)
        lane.send(0, 1, "a")
        with pytest.raises(BandwidthExceededError):
            lane.send(0, 1, "b")
        # A fresh vend resets the counters by generation stamping.
        lane = arena.lane(graph, bandwidth=1)
        lane.send(0, 1, "a")

    def test_lane_reset_clears_messages_and_scratch(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.lane(graph)
        lane.send(0, 1, "stale")
        lane.node(0).scratch("proto")["key"] = "value"
        lane = arena.lane(graph)
        assert lane.pending_count() == 0
        assert lane.node(0).memory == {}
        assert lane.metrics.rounds == 0

    def test_distinct_bandwidth_lanes_coexist(self):
        graph = make_graph("random_connected", n=16, seed=1)
        arena = BatchedEngine([graph])
        for bandwidth in (1, 2, 1, 4, 2):
            expected = compute_mst(graph, RunConfig(engine="fast", bandwidth=bandwidth))
            vended = []

            def provider(candidate, bw, name):
                if name == "fast" and not vended:
                    vended.append(True)
                    return arena.lane(candidate, bw)
                return None

            with engine_provider(provider):
                result = compute_mst(
                    graph, RunConfig(engine="fast", bandwidth=bandwidth)
                )
            assert result.to_json_dict() == expected.to_json_dict()

    def test_unpacked_graph_is_rejected(self):
        arena = BatchedEngine([])
        with pytest.raises(SimulationError, match="not part of this batch"):
            arena.lane(make_graph("path", n=3, seed=0))

    def test_add_graph_is_idempotent_by_identity(self):
        graph = make_graph("path", n=5, seed=0)
        arena = BatchedEngine([graph])
        slots = arena.total_slots
        arena.add_graph(graph)
        assert arena.total_slots == slots

    def test_provider_fallthrough_reaches_registry(self):
        graph = make_graph("path", n=4, seed=0)
        with engine_provider(lambda g, b, name: None):
            engine = create_engine(graph, engine="fast")
        assert isinstance(engine, FastNetwork)


class TestMSTOracle:
    def test_oracle_matches_full_verification(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        oracle.verify(result)  # no raise

    def test_oracle_rejects_wrong_edge_set(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        result.edges = set(list(result.edges)[:-1])
        with pytest.raises(VerificationError, match="MST mismatch"):
            oracle.verify(result)

    def test_oracle_rejects_wrong_weight(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        result.total_weight += 5.0
        with pytest.raises(VerificationError, match="does not match"):
            oracle.verify(result)
