"""Batched execution: byte-identity with the per-cell path, and the arena.

The contract under test: ``execute_campaign(batch=True)`` (and the
default in-process batching) produces rows, store records and resume
behaviour *byte-identical* to the per-cell serial executor over the same
grid -- batching buys wall-clock time only.  Plus unit coverage of
:class:`repro.simulator.fast_network.BatchedEngine` lanes: identical
kernel semantics to a standalone ``FastNetwork``, state isolation across
re-vends, and bandwidth enforcement.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.algorithms import run_algorithm
from repro.campaign import Campaign, execute_campaign, RunStore
from repro.campaign.scheduler import partition_units
from repro.campaign.spec import graph_spec_for
from repro.config import RunConfig
from repro.core.elkin_mst import compute_mst
from repro.exceptions import (
    BandwidthExceededError,
    ConfigurationError,
    SimulationError,
    VerificationError,
)
from repro.graphs.generators import GraphSpec, make_graph
from repro.simulator.engine import (
    active_provider_count,
    create_engine,
    engine_provider,
    register_engine,
)
from repro.simulator.fast_network import BatchedEngine, FastNetwork
from repro.verify.mst_checks import MSTOracle


def _sixteen_cell_grid() -> Campaign:
    """2 graphs x 2 algorithms x 2 bandwidths x 2 seeds on the fast kernel."""
    graphs = [
        graph_spec_for("random_connected", 20),
        graph_spec_for("planted_fragments", 16),
    ]
    return Campaign.from_grid(
        "batched-eq",
        graphs,
        algorithms=("elkin", "boruvka_seq"),
        bandwidths=(1, 2),
        engines=("fast",),
        seeds=(0, 1),
    )


class TestBatchedEquivalence:
    def test_rows_and_store_records_byte_identical(self, tmp_path):
        campaign = _sixteen_cell_grid()
        assert len(campaign) == 16
        serial_store = RunStore(tmp_path / "serial.jsonl")
        batched_store = RunStore(tmp_path / "batched.jsonl")
        serial = execute_campaign(campaign, store=serial_store, batch=False)
        batched = execute_campaign(campaign, store=batched_store, batch=True)

        assert serial.rows == batched.rows
        assert serial_store.run_keys() == batched_store.run_keys()
        for spec in campaign.specs:
            key = spec.run_key()
            assert json.dumps(serial_store.get_row(key), sort_keys=True) == json.dumps(
                batched_store.get_row(key), sort_keys=True
            )
            assert (
                serial_store.get_result(key).to_json_dict()
                == batched_store.get_result(key).to_json_dict()
            )
            assert serial_store.get_spec(key) == batched_store.get_spec(key)

    def test_resume_across_execution_modes(self, tmp_path):
        campaign = _sixteen_cell_grid()
        store_path = tmp_path / "store.jsonl"
        first = execute_campaign(campaign, store=RunStore(store_path), batch=False)
        assert first.executed == 16
        # A batched run resumes every per-cell record...
        resumed = execute_campaign(campaign, store=RunStore(store_path), batch=True)
        assert resumed.executed == 0
        assert resumed.reused == 16
        assert resumed.rows == first.rows
        # ... and vice versa: per-cell execution resumes batched records.
        batched_path = tmp_path / "batched.jsonl"
        second = execute_campaign(campaign, store=RunStore(batched_path), batch=True)
        reresumed = execute_campaign(
            campaign, store=RunStore(batched_path), batch=False
        )
        assert reresumed.executed == 0
        assert reresumed.rows == second.rows

    def test_default_in_process_execution_batches(self, tmp_path):
        campaign = _sixteen_cell_grid()
        report = execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl"))
        provenance = report.store.get_provenance(campaign.specs[0].run_key())
        assert provenance["executor"] == "batched"
        explicit = execute_campaign(campaign, batch=False)
        assert report.rows == explicit.rows

    def test_parallel_rows_match_batched_rows(self):
        campaign = _sixteen_cell_grid()
        batched = execute_campaign(campaign, batch=True)
        pooled = execute_campaign(campaign, jobs=2)
        assert batched.rows == pooled.rows

    def test_nondeterministic_cells_stay_self_consistent(self):
        # No pinned seed: every cell must draw its own instance, and the
        # row's instance description must match the simulated graph.
        campaign = Campaign.from_grid(
            "nondet",
            [GraphSpec("random_connected", {"n": 18})],
            algorithms=("elkin",),
            seeds=(None,),
        )
        report = execute_campaign(campaign, batch=True)
        row = report.rows[0]
        result = report.store.get_result(campaign.specs[0].run_key())
        assert row["n"] == result.n and row["m"] == result.m

    def test_batched_verification_still_catches_wrong_results(self):
        from repro.algorithms import AlgorithmInfo, register_algorithm, _REGISTRY

        def broken(graph, config=None):
            result = run_algorithm(graph, "kruskal", config)
            result.edges = set(list(result.edges)[:-1])  # drop an edge
            result.algorithm = "broken"
            return result

        register_algorithm(
            AlgorithmInfo(
                name="broken",
                runner=broken,
                family="sequential-baseline",
                is_distributed=False,
            )
        )
        try:
            campaign = Campaign.from_grid(
                "broken",
                [graph_spec_for("random_connected", 16)],
                algorithms=("broken",),
                seeds=(0,),
            )
            with pytest.raises(VerificationError):
                execute_campaign(campaign, batch=True)
        finally:
            _REGISTRY.pop("broken", None)

    def test_batched_stands_down_when_fast_engine_is_replaced(self):
        # A re-registered "fast" kernel must be honoured: the batch
        # runner detects the substitution and constructs engines
        # normally instead of vending stock-FastNetwork lanes.
        created = []

        class CountingFast(FastNetwork):
            __slots__ = ()

            def __init__(self, graph, bandwidth=1, validate=True):
                created.append(id(graph))
                super().__init__(graph, bandwidth=bandwidth, validate=validate)

        register_engine("fast", CountingFast)
        try:
            campaign = Campaign.from_grid(
                "swapped",
                [graph_spec_for("random_connected", 16)],
                algorithms=("elkin",),
                engines=("fast",),
                seeds=(0,),
            )
            report = execute_campaign(campaign, batch=True)
            assert created, "replacement engine was never constructed"
            assert report.executed == 1
        finally:
            register_engine("fast", FastNetwork)


class TestScheduledEquivalence:
    """``jobs>1 x batch``: the graph-affine scheduler joins the matrix.

    Same contract as in-process batching, one axis further out: rows,
    per-key store records and resume behaviour must be byte-identical
    to the serial executor, whichever mix of batching and processes
    produced them.  (Store *insertion order* is the one legitimate
    difference: shards merge in worker order, not campaign order.)
    """

    def _store_records(self, store, campaign):
        return {
            key: (
                json.dumps(store.get_row(key), sort_keys=True),
                json.dumps(store.get_result(key).to_json_dict(), sort_keys=True),
                store.get_spec(key),
            )
            for key in campaign.run_keys()
        }

    def test_scheduled_rows_and_store_records_byte_identical(self, tmp_path):
        campaign = _sixteen_cell_grid()
        assert len(campaign) == 16
        serial_store = RunStore(tmp_path / "serial.jsonl")
        sched_store = RunStore(tmp_path / "sched.jsonl")
        serial = execute_campaign(campaign, store=serial_store, batch=False)
        scheduled = execute_campaign(campaign, store=sched_store, jobs=2, batch=True)

        assert serial.rows == scheduled.rows
        assert sorted(serial_store.run_keys()) == sorted(sched_store.run_keys())
        assert self._store_records(serial_store, campaign) == self._store_records(
            sched_store, campaign
        )

    def test_parallel_batching_is_the_default_and_tagged(self, tmp_path):
        campaign = _sixteen_cell_grid()
        report = execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl"), jobs=2)
        provenance = report.store.get_provenance(campaign.specs[0].run_key())
        assert provenance["executor"] == "batched-pool-2"
        assert report.workers == 2
        assert sum(stat["cells"] for stat in report.worker_stats) == report.executed
        assert "workers" in report.summary()
        legacy = execute_campaign(campaign, jobs=2, batch=False)
        assert legacy.workers == 0
        assert report.rows == legacy.rows

    def test_resume_across_scheduled_and_serial(self, tmp_path):
        campaign = _sixteen_cell_grid()
        # Serial records satisfy a scheduled resume...
        serial_path = tmp_path / "serial.jsonl"
        first = execute_campaign(campaign, store=RunStore(serial_path), batch=False)
        resumed = execute_campaign(campaign, store=RunStore(serial_path), jobs=2)
        assert resumed.executed == 0
        assert resumed.reused == 16
        assert resumed.rows == first.rows
        # ... and scheduled records satisfy serial and batched resumes.
        sched_path = tmp_path / "sched.jsonl"
        second = execute_campaign(campaign, store=RunStore(sched_path), jobs=2)
        for kwargs in ({"batch": False}, {"batch": True}, {"jobs": 3}):
            reresumed = execute_campaign(campaign, store=RunStore(sched_path), **kwargs)
            assert reresumed.executed == 0
            assert reresumed.rows == second.rows

    def test_scheduler_streams_observer_events(self):
        campaign = _sixteen_cell_grid()
        events = []

        class Recorder:
            def on_run_start(self, spec):
                events.append(("start", spec.run_key()))

            def on_phase(self, spec, phase):
                events.append(("phase", spec.run_key()))

            def on_result(self, spec, result, row):
                events.append(("result", spec.run_key()))

        report = execute_campaign(campaign, jobs=2, observers=[Recorder()])
        starts = [key for kind, key in events if kind == "start"]
        results = [key for kind, key in events if kind == "result"]
        assert sorted(starts) == sorted(results) == sorted(campaign.run_keys())
        assert report.executed == 16
        assert any(kind == "phase" for kind, _ in events)

    def test_scheduled_verification_failure_propagates(self):
        from repro.algorithms import AlgorithmInfo, register_algorithm, _REGISTRY

        def broken(graph, config=None):
            result = run_algorithm(graph, "kruskal", config)
            result.edges = set(list(result.edges)[:-1])
            result.algorithm = "broken"
            return result

        register_algorithm(
            AlgorithmInfo(
                name="broken",
                runner=broken,
                family="sequential-baseline",
                is_distributed=False,
            )
        )
        try:
            campaign = Campaign.from_grid(
                "broken-par",
                [graph_spec_for("random_connected", 16)],
                algorithms=("broken", "kruskal"),
                seeds=(0, 1),
            )
            with pytest.raises(VerificationError):
                execute_campaign(campaign, jobs=2)
        finally:
            _REGISTRY.pop("broken", None)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the crash is injected through an env var inherited via fork",
    )
    def test_worker_death_keeps_committed_leases_and_resume_completes(
        self, tmp_path, monkeypatch
    ):
        """Kill one worker mid-campaign: the fold must stay consistent.

        The kamikaze algorithm hard-exits the worker whose lease covers
        the 20-vertex graph group; graph-affinity puts that whole group
        in one unit, so the other group's lease commits normally.  The
        campaign raises, the merged store holds exactly a subset of the
        serial records, and a resume finishes the rest.
        """
        from repro.algorithms import AlgorithmInfo, register_algorithm, _REGISTRY

        def kamikaze(graph, config=None):
            if (
                os.environ.get("REPRO_TEST_KAMIKAZE") == "1"
                and graph.number_of_nodes() == 20
            ):
                os._exit(3)
            return run_algorithm(graph, "kruskal", config)

        register_algorithm(
            AlgorithmInfo(
                name="kamikaze",
                runner=kamikaze,
                family="sequential-baseline",
                is_distributed=False,
            )
        )
        try:
            campaign = Campaign.from_grid(
                "kamikaze",
                [
                    graph_spec_for("random_connected", 16),
                    graph_spec_for("random_connected", 20),
                ],
                algorithms=("kamikaze",),
                seeds=(0, 1, 2),
            )
            store_path = tmp_path / "kamikaze.jsonl"
            monkeypatch.setenv("REPRO_TEST_KAMIKAZE", "1")
            with pytest.raises(SimulationError, match="died with exit code 3"):
                execute_campaign(campaign, store=RunStore(store_path), jobs=2)

            # Whatever leases committed before the crash merged cleanly:
            # every surviving record is byte-identical to serial output.
            monkeypatch.delenv("REPRO_TEST_KAMIKAZE")
            reference = execute_campaign(
                campaign, store=RunStore(tmp_path / "ref.jsonl"), batch=False
            )
            survivor = RunStore(store_path)
            campaign_keys = set(campaign.run_keys())
            assert set(survivor.run_keys()) < campaign_keys
            for key in survivor.run_keys():
                assert json.dumps(survivor.get_row(key), sort_keys=True) == json.dumps(
                    reference.store.get_row(key), sort_keys=True
                )

            # Resume completes exactly the missing cells, byte-identically.
            resumed = execute_campaign(campaign, store=survivor, jobs=2)
            assert resumed.executed == len(campaign) - resumed.reused
            assert resumed.rows == reference.rows
        finally:
            _REGISTRY.pop("kamikaze", None)


class TestWorkUnits:
    def test_units_are_graph_affine_and_cover_everything(self):
        campaign = _sixteen_cell_grid()
        pending = [
            (index, spec, spec.run_key()) for index, spec in enumerate(campaign.specs)
        ]
        units = partition_units(pending, {}, jobs=2)
        unit_of_graph = {}
        seen = []
        for unit_index, unit in enumerate(units):
            for index, spec_json, _ in unit.cells:
                seen.append(index)
                graph_key = campaign.specs[index].graph_key()
                unit_of_graph.setdefault(graph_key, unit_index)
                # A graph group is never split across units.
                assert unit_of_graph[graph_key] == unit_index
        assert sorted(seen) == list(range(len(campaign)))

    def test_partition_is_deterministic(self):
        campaign = _sixteen_cell_grid()
        pending = [
            (index, spec, spec.run_key()) for index, spec in enumerate(campaign.specs)
        ]
        first = partition_units(pending, {}, jobs=3)
        second = partition_units(pending, {}, jobs=3)
        assert [unit.unit_key for unit in first] == [unit.unit_key for unit in second]

    def test_unit_cells_cap_is_respected_per_group(self):
        campaign = _sixteen_cell_grid()
        pending = [
            (index, spec, spec.run_key()) for index, spec in enumerate(campaign.specs)
        ]
        units = partition_units(pending, {}, jobs=2, unit_cells=4)
        # The seed axis is part of the graph identity, so the grid has
        # four graph groups of 4 cells; at 4 cells per unit each group
        # fills exactly one unit.
        assert [len(unit.cells) for unit in units] == [4, 4, 4, 4]
        merged = partition_units(pending, {}, jobs=2, unit_cells=8)
        assert [len(unit.cells) for unit in merged] == [8, 8]


class TestBatchedEngineLanes:
    def test_lane_reports_identical_results_to_standalone(self):
        graph = make_graph("random_connected", n=20, seed=3)
        arena = BatchedEngine([graph])
        baseline = compute_mst(graph, RunConfig(engine="fast"))
        for _ in range(3):  # re-vends must be state-clean
            vended = []

            def provider(candidate, bandwidth, name):
                if name == "fast" and candidate is graph and not vended:
                    vended.append(True)
                    return arena.lane(candidate, bandwidth)
                return None

            with engine_provider(provider):
                result = compute_mst(graph, RunConfig(engine="fast"))
            assert result.to_json_dict() == baseline.to_json_dict()

    def test_lanes_share_one_dense_index_space(self):
        graphs = [
            make_graph("random_connected", n=12, seed=s) for s in range(4)
        ]
        arena = BatchedEngine(graphs)
        assert arena.graph_count == 4
        assert arena.total_vertices == sum(g.number_of_nodes() for g in graphs)
        assert arena.total_slots == sum(2 * g.number_of_edges() for g in graphs)
        lanes = [arena.lane(g) for g in graphs]
        # All lanes alias the same flat arena arrays.
        assert len({id(lane._nbr_weight) for lane in lanes}) == 1

    def test_lane_bandwidth_enforcement(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.lane(graph, bandwidth=1)
        lane.send(0, 1, "a")
        with pytest.raises(BandwidthExceededError):
            lane.send(0, 1, "b")
        # A fresh vend resets the counters by generation stamping.
        lane = arena.lane(graph, bandwidth=1)
        lane.send(0, 1, "a")

    def test_lane_reset_clears_messages_and_scratch(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.lane(graph)
        lane.send(0, 1, "stale")
        lane.node(0).scratch("proto")["key"] = "value"
        lane = arena.lane(graph)
        assert lane.pending_count() == 0
        assert lane.node(0).memory == {}
        assert lane.metrics.rounds == 0

    def test_distinct_bandwidth_lanes_coexist(self):
        graph = make_graph("random_connected", n=16, seed=1)
        arena = BatchedEngine([graph])
        for bandwidth in (1, 2, 1, 4, 2):
            expected = compute_mst(graph, RunConfig(engine="fast", bandwidth=bandwidth))
            vended = []

            def provider(candidate, bw, name):
                if name == "fast" and not vended:
                    vended.append(True)
                    return arena.lane(candidate, bw)
                return None

            with engine_provider(provider):
                result = compute_mst(
                    graph, RunConfig(engine="fast", bandwidth=bandwidth)
                )
            assert result.to_json_dict() == expected.to_json_dict()

    def test_unpacked_graph_is_rejected(self):
        arena = BatchedEngine([])
        with pytest.raises(SimulationError, match="not part of this batch"):
            arena.lane(make_graph("path", n=3, seed=0))

    def test_add_graph_is_idempotent_by_identity(self):
        graph = make_graph("path", n=5, seed=0)
        arena = BatchedEngine([graph])
        slots = arena.total_slots
        arena.add_graph(graph)
        assert arena.total_slots == slots

    def test_provider_fallthrough_reaches_registry(self):
        graph = make_graph("path", n=4, seed=0)
        with engine_provider(lambda g, b, name: None):
            engine = create_engine(graph, engine="fast")
        assert isinstance(engine, FastNetwork)


class TestConditionedExecutionEquivalence:
    """The condition axis joins the byte-identity matrix.

    Network conditions are delivery-side state inside the run, so the
    executor contract is unchanged: serial, in-process batched and
    jobs>1 scheduled execution of a conditioned grid -- including cells
    whose crash schedule ends in a typed non-termination -- produce
    byte-identical rows and store records.
    """

    def _conditioned_grid(self) -> Campaign:
        return Campaign.from_grid(
            "batched-cond",
            [
                graph_spec_for("random_connected", 20),
                graph_spec_for("grid", 16),
            ],
            algorithms=("elkin", "ghs"),
            engines=("fast",),
            seeds=(0,),
            conditions=(None, "lossy", "crash-stop"),
        )

    def test_rows_byte_identical_across_execution_modes(self, tmp_path):
        campaign = self._conditioned_grid()
        assert len(campaign) == 12
        serial = execute_campaign(
            campaign, store=RunStore(tmp_path / "serial.jsonl"), batch=False
        )
        batched = execute_campaign(
            campaign, store=RunStore(tmp_path / "batched.jsonl"), batch=True
        )
        pooled = execute_campaign(
            campaign, store=RunStore(tmp_path / "pooled.jsonl"), jobs=2
        )
        assert serial.rows == batched.rows == pooled.rows
        statuses = {row["status"] for row in serial.rows if "status" in row}
        assert statuses == {"ok", "non-terminated"}

    def test_store_records_and_resume_with_conditions(self, tmp_path):
        campaign = self._conditioned_grid()
        store_path = tmp_path / "store.jsonl"
        first = execute_campaign(campaign, store=RunStore(store_path), batch=False)
        for kwargs in ({"batch": True}, {"jobs": 2}):
            resumed = execute_campaign(campaign, store=RunStore(store_path), **kwargs)
            assert resumed.executed == 0
            assert resumed.reused == len(campaign)
            assert resumed.rows == first.rows
        # Non-terminated records round-trip: the stored synthetic result
        # keeps the typed outcome.
        crash_keys = [
            spec.run_key()
            for spec in campaign.specs
            if spec.condition is not None and spec.condition.crash is not None
        ]
        store = RunStore(store_path)
        for key in crash_keys:
            assert store.get_result(key).details["non_terminated"] is True


class TestProviderEdgeCases:
    """engine_provider under nesting, failure, and the jobs>1 scheduler."""

    def test_nested_providers_innermost_wins(self):
        graph = make_graph("path", n=4, seed=0)
        outer_engine = FastNetwork(graph)
        inner_engine = FastNetwork(graph)
        consulted = []

        def outer(g, b, name):
            consulted.append("outer")
            return outer_engine

        def inner(g, b, name):
            consulted.append("inner")
            return inner_engine

        with engine_provider(outer):
            with engine_provider(inner):
                assert create_engine(graph, engine="fast") is inner_engine
                assert consulted == ["inner"]  # outer never reached
            assert create_engine(graph, engine="fast") is outer_engine

    def test_nested_provider_none_falls_through_to_outer(self):
        graph = make_graph("path", n=4, seed=0)
        outer_engine = FastNetwork(graph)
        with engine_provider(lambda g, b, name: outer_engine):
            with engine_provider(lambda g, b, name: None):
                assert create_engine(graph, engine="fast") is outer_engine

    def test_provider_raising_mid_campaign_propagates_and_unwinds(self):
        campaign = Campaign.from_grid(
            "provider-raises",
            [graph_spec_for("random_connected", 16)],
            algorithms=("elkin",),
            seeds=(0, 1, 2),
        )
        calls = []

        def flaky(graph, bandwidth, name):
            calls.append(name)
            if len(calls) >= 2:
                raise RuntimeError("provider backend went away")
            return None

        with pytest.raises(RuntimeError, match="went away"):
            with engine_provider(flaky):
                execute_campaign(campaign, batch=False)
        assert len(calls) >= 2
        # The stack unwound: later runs are provider-free and succeed.
        assert active_provider_count() == 0
        report = execute_campaign(campaign, batch=False)
        assert report.executed == len(campaign)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="provider inheritance into workers requires fork",
    )
    def test_scheduler_workers_see_the_parents_provider(self, tmp_path):
        # The provider substitutes a bandwidth-4 kernel whenever the
        # campaign asks for the reference engine at bandwidth 1 -- an
        # observable change (round counts drop).  Forked workers must
        # consult the same provider, so the scheduled rows match the
        # serial rows produced under the provider and differ from the
        # provider-free baseline.
        campaign = Campaign.from_grid(
            "provider-jobs",
            [
                graph_spec_for("random_connected", 20),
                graph_spec_for("random_connected", 24),
            ],
            algorithms=("elkin",),
            engines=("reference",),
            seeds=(0,),
        )
        bare = execute_campaign(campaign, batch=False)

        def provider(graph, bandwidth, name):
            if name == "reference" and bandwidth == 1:
                return FastNetwork(graph, bandwidth=4)
            return None

        with engine_provider(provider):
            serial = execute_campaign(campaign, batch=False)
            pooled = execute_campaign(campaign, jobs=2)
        assert serial.rows == pooled.rows
        assert [row["rounds"] for row in serial.rows] != [
            row["rounds"] for row in bare.rows
        ]

    def test_scheduler_fails_loudly_without_fork(self, monkeypatch):
        campaign = _sixteen_cell_grid()
        monkeypatch.setattr(
            "repro.campaign.scheduler.multiprocessing.get_all_start_methods",
            lambda: ["spawn"],
        )
        with engine_provider(lambda g, b, name: None):
            with pytest.raises(ConfigurationError, match="cannot fork"):
                execute_campaign(campaign, jobs=2)


class TestMSTOracle:
    def test_oracle_matches_full_verification(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        oracle.verify(result)  # no raise

    def test_oracle_rejects_wrong_edge_set(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        result.edges = set(list(result.edges)[:-1])
        with pytest.raises(VerificationError, match="MST mismatch"):
            oracle.verify(result)

    def test_oracle_rejects_wrong_weight(self):
        graph = make_graph("random_connected", n=24, seed=2)
        oracle = MSTOracle(graph)
        result = run_algorithm(graph, "kruskal")
        result.total_weight += 5.0
        with pytest.raises(VerificationError, match="does not match"):
            oracle.verify(result)
