"""Integration tests: whole-pipeline scenarios across several modules.

These tests exercise the same paths as the benchmark experiments (E1-E10)
on small instances, so a regression that would invalidate the
reproduction is caught by ``pytest`` long before the benchmarks run.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import elkin_message_bound_formula, elkin_time_bound_formula
from repro.analysis.experiments import compare_algorithms, run_single, sweep_bandwidth
from repro.baselines import gkp_mst, prs_style_mst
from repro.config import RunConfig
from repro.core.controlled_ghs import build_base_forest
from repro.core.elkin_mst import compute_mst
from repro.graphs import (
    graph_summary,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
)
from repro.simulator.network import SyncNetwork
from repro.verify.complexity_checks import assert_controlled_ghs_bounds
from repro.verify.forest_checks import assert_alpha_beta_forest
from repro.verify.mst_checks import verify_mst_result


class TestExperimentE1E2ControlledGHS:
    @pytest.mark.parametrize("k", [2, 5, 10])
    def test_forest_and_cost_guarantees_together(self, k):
        graph = random_connected_graph(90, seed=71)
        network = SyncNetwork(graph)
        result = build_base_forest(network, k)
        assert_alpha_beta_forest(graph, result.forest, k)
        assert_controlled_ghs_bounds(
            result, graph.number_of_nodes(), graph.number_of_edges()
        )


class TestExperimentE3E4LowDiameter:
    def test_rounds_and_messages_scale_within_bounds(self):
        for n in (40, 80, 120):
            graph = random_connected_graph(n, seed=100 + n)
            summary = graph_summary(graph)
            result = compute_mst(graph)
            verify_mst_result(graph, result)
            assert result.rounds <= elkin_time_bound_formula(n, summary.hop_diameter)
            assert result.messages <= elkin_message_bound_formula(n, summary.m)


class TestExperimentE5LargeDiameter:
    def test_path_and_grid_use_the_k_equals_d_regime(self):
        path = path_graph(90, seed=73)
        result = compute_mst(path)
        verify_mst_result(path, result)
        # BFS depth estimate >= sqrt(n), so the algorithm must have picked k >= sqrt(n).
        assert result.details["k"] >= math.isqrt(90)

        grid = grid_graph(4, 25, seed=74)
        result = compute_mst(grid)
        verify_mst_result(grid, result)


class TestExperimentE6Bandwidth:
    def test_bandwidth_round_bounds_and_overall_gain(self):
        graph = random_connected_graph(100, seed=75)
        summary = graph_summary(graph)
        rows = sweep_bandwidth(graph, bandwidths=(1, 2, 4, 8), label="e6")
        for row in rows:
            # Theorem 3.2: O((D + sqrt(n/b)) log n) rounds for every b.
            bound = elkin_time_bound_formula(
                summary.n, summary.hop_diameter, bandwidth=int(row["bandwidth"])
            )
            assert row["rounds"] <= bound
        # The largest bandwidth must not be slower than the standard model
        # (individual adjacent steps need not be monotone because the
        # parameter k changes discretely with b).
        assert rows[-1]["rounds"] <= rows[0]["rounds"]
        messages = [row["messages"] for row in rows]
        # Message complexity obeys the same O(m log n + n log n log* n)
        # bound for every b (Theorem 3.2); measured values move a little
        # because the base-forest parameter k changes discretely with b.
        assert max(messages) <= 1.6 * min(messages)
        for row in rows:
            assert row["messages"] <= elkin_message_bound_formula(summary.n, summary.m)


class TestExperimentE7E8E9Baselines:
    def test_three_way_comparison_on_one_instance(self):
        graph = random_connected_graph(60, seed=76)
        rows = compare_algorithms(graph, algorithms=("elkin", "ghs", "gkp"), label="e7")
        weights = {row["weight"] for row in rows}
        assert len(weights) == 1

    def test_prs_versus_elkin_second_phase_messages_on_high_diameter(self):
        graph = lollipop_graph(10, 120, seed=77)
        elkin = compute_mst(graph)
        prs = prs_style_mst(graph)
        verify_mst_result(graph, elkin)
        verify_mst_result(graph, prs)
        # The paper's argument is about the second phase: a sqrt(n) base
        # forest costs Theta(D sqrt(n)) messages there, k = D costs O(n).
        prs_stage = prs.details["stage_costs"]["boruvka"]["messages"]
        elkin_stage = elkin.details["stage_costs"]["boruvka"]["messages"]
        assert prs_stage > elkin_stage

    def test_gkp_pipeline_messages_grow_faster_than_elkin(self):
        small_n, large_n = 60, 200
        ratios = {}
        for n in (small_n, large_n):
            graph = random_connected_graph(n, extra_edges=n, seed=78)
            gkp = gkp_mst(graph)
            elkin = compute_mst(graph)
            ratios[n] = gkp.messages / elkin.messages
        # GKP's ~ n^{3/2} pipeline term grows faster than Elkin's ~ m log n.
        assert ratios[large_n] > 0.8 * ratios[small_n]


class TestExperimentE10PhaseDecomposition:
    def test_per_phase_telemetry_matches_equation_1(self):
        graph = random_connected_graph(120, seed=79)
        result = compute_mst(graph)
        k = result.details["k"]
        depth = result.details["bfs_depth"]
        n = graph.number_of_nodes()
        for phase in result.phases:
            assert phase.fragments_after <= (phase.fragments_before + 1) // 2
            # Equation (1): each phase costs O(D + k + n/k) rounds.
            assert phase.rounds <= 40 * (depth + k + n / k) + 40

    def test_run_single_is_consistent_with_direct_calls(self):
        graph = random_connected_graph(50, seed=80)
        via_runner = run_single(graph, algorithm="elkin")
        direct = compute_mst(graph, RunConfig())
        assert via_runner.edges == direct.edges
        assert via_runner.rounds == direct.rounds
