"""Tests for the scenario-first facade (:mod:`repro.api`).

Covers scenario normalization and validation, the content-hash
identity, the Runner execution paths (run / run_many / stream, resume,
parallel equality), the lifecycle-hook protocol, the registry's
capability metadata, and the headline acceptance guarantee: the facade
and the legacy ``run_single`` produce byte-identical result JSON for
every registered algorithm on every engine.
"""

from __future__ import annotations

import io
import json

import networkx as nx
import pytest

from repro import GraphSpec, RunConfig
from repro.algorithms import algorithm_info, available_algorithms
from repro.analysis.experiments import compare_algorithms, run_single
from repro.api import (
    ProgressReporter,
    Runner,
    Scenario,
    TelemetryCollector,
)
from repro.campaign.store import RunStore
from repro.exceptions import ConfigurationError, DisconnectedGraphError
from repro.graphs.generators import random_connected_graph
from repro.simulator.engine import available_engines


def _result_json(result) -> str:
    return json.dumps(result.to_json_dict(), sort_keys=True)


class TestScenarioNormalization:
    def test_graph_spec_source_passes_through(self):
        spec = GraphSpec("random_connected", {"n": 20, "seed": 1})
        scenario = Scenario(graph=spec)
        assert scenario.graph is spec
        assert scenario.config == RunConfig()

    def test_prebuilt_graph_becomes_edge_list_spec(self):
        graph = random_connected_graph(12, seed=2)
        scenario = Scenario(graph=graph)
        assert scenario.graph.family == "edge_list"
        rebuilt = scenario.build_graph()
        assert rebuilt.number_of_nodes() == 12
        assert {tuple(sorted(e)) for e in rebuilt.edges()} == {
            tuple(sorted(e)) for e in graph.edges()
        }

    def test_edge_list_source(self):
        scenario = Scenario(graph=[(0, 1, 1.5), (1, 2, 2.5)])
        assert scenario.graph.family == "edge_list"
        assert scenario.build_graph().number_of_edges() == 2

    def test_label_not_part_of_identity(self):
        spec = GraphSpec("path", {"n": 10, "seed": 0})
        assert Scenario(graph=spec).key() == Scenario(graph=spec, label="pretty").key()

    def test_key_matches_campaign_run_key(self):
        scenario = Scenario(
            graph=GraphSpec("path", {"n": 10, "seed": 0}),
            algorithm="ghs",
            config=RunConfig(bandwidth=2, engine="fast", seed=4),
        )
        assert scenario.key() == scenario.to_run_spec().run_key()

    def test_json_round_trip(self):
        scenario = Scenario(
            graph=GraphSpec("grid", {"rows": 3, "cols": 3, "seed": 0}),
            algorithm="gkp",
            config=RunConfig(bandwidth=4, engine="fast"),
            verify=False,
        )
        clone = Scenario.from_json_dict(json.loads(json.dumps(scenario.to_json_dict())))
        assert clone.key() == scenario.key()
        assert clone.verify is False

    def test_with_config_changes_identity(self):
        base = Scenario(graph=GraphSpec("path", {"n": 10, "seed": 0}))
        widened = base.with_config(bandwidth=4)
        assert widened.config.bandwidth == 4
        assert widened.key() != base.key()

    def test_config_is_copied_so_later_mutation_cannot_change_the_key(self):
        config = RunConfig()
        scenario = Scenario(graph=GraphSpec("path", {"n": 10, "seed": 0}), config=config)
        key = scenario.key()
        config.bandwidth = 8
        config.engine = "bogus"
        assert scenario.key() == key
        assert scenario.config.bandwidth == 1

    def test_truthy_verify_values_are_coerced_to_bool(self):
        scenario = Scenario(graph=GraphSpec("path", {"n": 8, "seed": 0}), verify=1)
        assert scenario.verify is True
        outcome = Runner().run(scenario)
        assert outcome.row["n"] == 8


class TestScenarioValidation:
    def test_rejects_disconnected_graph(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=2.0)
        with pytest.raises(DisconnectedGraphError, match="2 components"):
            Scenario(graph=graph)

    def test_rejects_bandwidth_below_one(self):
        config = RunConfig()
        config.bandwidth = 0  # mutate past construction-time validation
        with pytest.raises(ConfigurationError, match="bandwidth must be >= 1"):
            Scenario(graph=GraphSpec("path", {"n": 5, "seed": 0}), config=config)

    def test_rejects_unknown_algorithm_listing_options(self):
        with pytest.raises(ConfigurationError, match="elkin"):
            Scenario(graph=GraphSpec("path", {"n": 5, "seed": 0}), algorithm="dijkstra")

    def test_rejects_unknown_engine_listing_options(self):
        with pytest.raises(ConfigurationError, match="reference"):
            Scenario(
                graph=GraphSpec("path", {"n": 5, "seed": 0}),
                config=RunConfig(engine="warp"),
            )

    def test_rejects_unknown_family_listing_options(self):
        with pytest.raises(ConfigurationError, match="random_connected"):
            Scenario(graph=GraphSpec("moebius", {"n": 5}))

    def test_rejects_seed_on_prebuilt_graph(self):
        graph = random_connected_graph(8, seed=1)
        with pytest.raises(ConfigurationError, match="seed"):
            Scenario(graph=graph, config=RunConfig(seed=3))

    def test_rejects_empty_edge_list(self):
        with pytest.raises(ConfigurationError, match="empty"):
            Scenario(graph=[])

    def test_rejects_string_graph_source(self):
        with pytest.raises(ConfigurationError, match="GraphSpec"):
            Scenario(graph="random_connected")


class TestRunner:
    def test_run_produces_row_and_result(self):
        outcome = Runner().run(
            Scenario(graph=GraphSpec("random_connected", {"n": 20, "seed": 0}))
        )
        assert outcome.row["algorithm"] == "elkin"
        assert outcome.result.rounds > 0
        assert outcome.reused is False

    def test_resume_answers_from_store(self, tmp_path):
        scenario = Scenario(graph=GraphSpec("random_connected", {"n": 20, "seed": 0}))
        store = RunStore(tmp_path / "runs.jsonl")
        first = Runner(store=store).run(scenario)
        again = Runner(store=RunStore(tmp_path / "runs.jsonl")).run(scenario)
        assert again.reused is True
        assert _result_json(again.result) == _result_json(first.result)

    def test_run_many_mixed_verify_preserves_order(self):
        scenarios = [
            Scenario(graph=GraphSpec("path", {"n": 8, "seed": 0}), verify=True),
            Scenario(graph=GraphSpec("path", {"n": 9, "seed": 0}), verify=False),
            Scenario(graph=GraphSpec("path", {"n": 10, "seed": 0}), verify=True),
        ]
        outcomes = Runner().run_many(scenarios)
        assert [o.row["n"] for o in outcomes] == [8, 9, 10]

    def test_run_many_parallel_matches_serial(self):
        scenarios = [
            Scenario(graph=GraphSpec("random_connected", {"n": 18, "seed": seed}))
            for seed in range(4)
        ]
        serial = Runner().run_many(scenarios)
        parallel = Runner().run_many(scenarios, jobs=2)
        assert [o.row for o in serial] == [o.row for o in parallel]

    def test_run_many_rejects_non_scenarios(self):
        with pytest.raises(ConfigurationError, match="Scenario"):
            Runner().run_many([{"graph": "nope"}])

    def test_stream_yields_lazily_and_shares_store(self):
        scenario = Scenario(graph=GraphSpec("random_connected", {"n": 16, "seed": 1}))
        runner = Runner()
        outcomes = list(runner.stream([scenario, scenario]))
        assert [o.reused for o in outcomes] == [False, True]

    def test_strict_bounds_and_telemetry_thread_through(self):
        scenario = Scenario(
            graph=GraphSpec("random_connected", {"n": 20, "seed": 0}),
            config=RunConfig(collect_telemetry=False),
        )
        outcome = Runner().run(scenario)
        assert outcome.result.phases == []
        # Non-default switches give a distinct identity...
        default = Scenario(graph=GraphSpec("random_connected", {"n": 20, "seed": 0}))
        assert scenario.key() != default.key()
        # ... while the default combination hashes as it always did.
        assert "collect_telemetry" not in default.to_run_spec()._identity()


class TestLifecycleHooks:
    def test_progress_and_telemetry_hooks_fire(self):
        stream = io.StringIO()
        progress = ProgressReporter(stream=stream, phases=True)
        telemetry = TelemetryCollector()
        runner = Runner(hooks=[progress, telemetry])
        runner.run_many(
            [
                Scenario(graph=GraphSpec("random_connected", {"n": 18, "seed": 0})),
                Scenario(
                    graph=GraphSpec("random_connected", {"n": 18, "seed": 0}),
                    algorithm="ghs",
                ),
            ]
        )
        assert progress.started == 2
        assert progress.finished == 2
        text = stream.getvalue()
        assert "run elkin" in text and "run ghs" in text
        assert len(telemetry.run_rows) == 2
        assert any(row["algorithm"] == "ghs" for row in telemetry.phase_rows)
        assert all("fragments_before" in row for row in telemetry.phase_rows)

    def test_resumed_cells_fire_no_events(self):
        scenario = Scenario(graph=GraphSpec("random_connected", {"n": 16, "seed": 2}))
        progress = ProgressReporter(stream=io.StringIO())
        runner = Runner(hooks=[progress])
        runner.run(scenario)
        runner.run(scenario)  # resumed
        assert progress.started == 1

    def test_partial_observers_are_legal(self):
        class OnlyResult:
            def __init__(self):
                self.seen = []

            def on_result(self, spec, result, row):
                self.seen.append(result.algorithm)

        observer = OnlyResult()
        Runner(hooks=[observer]).run(
            Scenario(graph=GraphSpec("path", {"n": 8, "seed": 0}))
        )
        assert observer.seen == ["elkin"]


class TestRegistryCapabilities:
    def test_sequential_baselines_registered(self):
        for name in ("kruskal", "prim", "boruvka_seq"):
            info = algorithm_info(name)
            assert info.is_distributed is False
            assert info.supports_bandwidth is False
            assert info.family == "sequential-baseline"

    def test_distributed_only_filter(self):
        assert "kruskal" not in available_algorithms(distributed_only=True)
        assert "kruskal" in available_algorithms()

    def test_sequential_rows_report_zero_costs(self):
        graph = random_connected_graph(15, seed=4)
        rows = compare_algorithms(graph, algorithms=("elkin", "kruskal", "prim"))
        by_algorithm = {row["algorithm"]: row for row in rows}
        assert by_algorithm["kruskal"]["rounds"] == 0
        assert by_algorithm["kruskal"]["messages"] == 0
        assert by_algorithm["prim"]["rounds"] == 0
        assert by_algorithm["elkin"]["rounds"] > 0
        # All three agree on the tree weight, so the baselines verify too.
        weights = {row["weight"] for row in rows}
        assert len(weights) == 1


class TestFacadeEquivalence:
    """Acceptance: facade and legacy runner agree byte for byte."""

    @pytest.mark.parametrize("engine", sorted(available_engines()))
    @pytest.mark.parametrize("algorithm", available_algorithms())
    def test_byte_identical_result_json(self, algorithm, engine):
        graph = random_connected_graph(16, seed=9)
        legacy = run_single(graph, algorithm=algorithm, bandwidth=2, engine=engine)
        outcome = Runner().run(
            Scenario(
                graph=graph,
                algorithm=algorithm,
                config=RunConfig(bandwidth=2, engine=engine),
            )
        )
        assert _result_json(outcome.result) == _result_json(legacy)

    def test_seeded_generator_scenario_matches_run_single(self):
        spec = GraphSpec("random_connected", {"n": 20})
        scenario = Scenario(graph=spec, config=RunConfig(seed=6))
        outcome = Runner().run(scenario)
        legacy = run_single(scenario.build_graph(), seed=6)
        assert _result_json(outcome.result) == _result_json(legacy)
        assert outcome.result.details["seed"] == 6

    def test_seed_recorded_when_threaded_via_config(self):
        graph = random_connected_graph(14, seed=5)
        from repro.algorithms import run_algorithm

        result = run_algorithm(graph, "elkin", RunConfig(seed=5))
        assert result.details["seed"] == 5
