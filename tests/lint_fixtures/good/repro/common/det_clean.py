"""Compliant twin of ``det_violations.py``: seeded, sorted, monotonic."""

import json
import random
import time


def jitter(seed):
    return random.Random(seed).random()


def stamp():
    return time.perf_counter()


def order_stable(values):
    chosen = {value for value in values if value > 0}
    return [value for value in sorted(chosen)]


def keyed_cache(key, obj, cache):
    cache[key] = obj
    return cache


def payload_fingerprint(payload):
    return json.dumps(payload, sort_keys=True)
