"""Compliant twin of ``con_violations.py``.

The engine implements the full kernel contract and charges every cost
through the Metrics helpers; the read-only store open only reads.
"""

from repro.campaign.store import open_store
from repro.simulator.engine import Engine


class FullEngine(Engine):
    def __init__(self, metrics):
        self.metrics = metrics

    def vertices(self):
        return []

    def node(self, vertex):
        return None

    def edge_weight(self, u, v):
        return 1

    def send(self, sender, receiver, kind, payload):
        self.metrics.record_message(kind, 1)

    def remaining_capacity(self, sender, receiver):
        return 1

    def pending_count(self):
        return 0

    def deliver_round(self):
        self.metrics.record_bulk(0, 0)
        return {}

    def idle_rounds(self, count):
        for _ in range(count):
            self.metrics.record_round()


def summarize(path):
    store = open_store(path, read_only=True)
    return len(store)
