"""Compliant twin of ``loc_violations.py``: same shape, fully local.

Topology validation happens in ``__init__`` (the declared seam), round
callbacks touch only the current vertex's state, and every message goes
through the ProtocolApi.  The analyzer must stay silent on this file.
"""

from repro.simulator.protocol import NodeProtocol


class LocalProtocol(NodeProtocol):
    """Validates topology at construction and stays vertex-local after."""

    def __init__(self, network):
        self.network = network
        self._n = len(list(network.graph.nodes()))

    @property
    def name(self):
        return "local"

    def participants(self, network):
        return list(network.vertices())

    def on_start(self, vertex, node, api):
        api.send_to_neighbors(vertex, "probe", 1)

    def on_round(self, vertex, node, api, inbox):
        own = api.node(vertex)
        if inbox and own is not None:
            api.finish(vertex)

    def result(self, network):
        return self._n
