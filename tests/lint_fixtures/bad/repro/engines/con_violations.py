"""Seeded contract violations (CON301-CON304).

The engine subclass is missing most of the kernel contract, writes the
metrics counters directly, and mutates itself after construction; the
store helper writes through a read-only open.
"""

from repro.campaign.store import open_store
from repro.simulator.engine import Engine


class HalfEngine(Engine):  # seeded CON301
    def vertices(self):
        return []

    def node(self, vertex):
        return None

    def deliver_round(self):
        self.metrics.messages += 1  # seeded CON302
        self.metrics.words += 2  # seeded CON302
        self.metrics.messages_by_kind["probe"] += 1  # seeded CON302
        return {}

    def rekey(self, token):
        object.__setattr__(self, "cached_key", token)  # seeded CON303


def summarize(path):
    store = open_store(path, read_only=True)
    store.record_run({"status": "oops"})  # seeded CON304
    return store
