"""Seeded CONGEST-locality violations (LOC101-LOC104).

Every marked line must produce exactly the named finding; the compliant
twin lives in ``good/repro/core/loc_clean.py``.  The path mimics the
real tree so the default protocol globs classify it as protocol code.
"""

from repro.simulator.protocol import NodeProtocol

TOTAL_STARTS = 0


class LeakyProtocol(NodeProtocol):
    """Reads global topology and foreign state from round callbacks."""

    def __init__(self, network):
        self.network = network

    @property
    def name(self):
        return "leaky"

    def participants(self, network):
        return list(network.vertices())

    def on_start(self, vertex, node, api):
        global TOTAL_STARTS  # seeded LOC104
        TOTAL_STARTS += 1
        edges = self.network.graph.edges()  # seeded LOC101
        api.send(vertex, next(iter(node.neighbors)), "probe", len(edges))

    def on_round(self, vertex, node, api, inbox):
        other = next(iter(node.neighbors))
        foreign = api.node(other)  # seeded LOC102
        api._network.send(vertex, other, "cheat", 1)  # seeded LOC103
        self.network.send(vertex, other, "raw", 1 if foreign else 0)  # seeded LOC103

    def result(self, network):
        return TOTAL_STARTS
