"""Seeded determinism violations (DET201-DET205).

One function per rule; the compliant twin is
``good/repro/common/det_clean.py``.
"""

import json
import random
import time


def jitter():
    return random.random()  # seeded DET201


def stamp():
    return time.time()  # seeded DET202


def order_sensitive(values):
    chosen = {value for value in values if value > 0}
    out = []
    for value in chosen:  # seeded DET203
        out.append(value)
    return out


def identity_cache(obj, cache):
    cache[id(obj)] = obj  # seeded DET204
    return cache


def payload_fingerprint(payload):
    return json.dumps(payload)  # seeded DET205
