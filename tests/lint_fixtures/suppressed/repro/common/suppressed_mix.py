"""Suppression round-trip fixture.

One justified suppression (clean), one without a reason (SUP001), one
naming an unknown rule id (SUP002), and one that matches nothing
(SUP003).
"""

import random


def draw():
    a = random.random()  # repro: allow[DET201] fixture: reviewed ambient draw
    b = random.random()  # repro: allow[DET201]
    return a + b


# repro: allow[XYZ999] the rule id does not exist
def nothing():
    # repro: allow[DET202] stale: no wall-clock read below
    return 0
