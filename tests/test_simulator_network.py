"""Tests for the SyncNetwork kernel and the metrics accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import BandwidthExceededError, SimulationError
from repro.graphs import path_graph
from repro.simulator.message import Message
from repro.simulator.metrics import Metrics
from repro.simulator.network import SyncNetwork


class TestMessage:
    def test_requires_at_least_one_word(self):
        with pytest.raises(ValueError):
            Message(sender=0, receiver=1, kind="x", words=0)

    def test_describe_mentions_endpoints(self):
        message = Message(sender=3, receiver=7, kind="explore", words=2, sent_in_round=5)
        text = message.describe()
        assert "3" in text and "7" in text and "explore" in text


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.record_round()
        metrics.record_message("a", 1)
        metrics.record_message("b", 3)
        assert metrics.rounds == 1
        assert metrics.messages == 2
        assert metrics.words == 4
        assert metrics.messages_by_kind["a"] == 1

    def test_checkpoint_and_since(self):
        metrics = Metrics()
        metrics.record_round()
        snapshot = metrics.checkpoint()
        metrics.record_round()
        metrics.record_message("x", 2)
        delta = metrics.since(snapshot)
        assert delta.rounds == 1
        assert delta.messages == 1
        assert delta.words == 2


class TestSyncNetwork:
    def test_basic_properties(self, small_random_graph):
        network = SyncNetwork(small_random_graph)
        assert network.n == 40
        assert network.m == small_random_graph.number_of_edges()
        assert network.round == 0
        assert list(network.vertices()) == sorted(small_random_graph.nodes())

    def test_node_state_knows_neighbors_and_weights(self, small_random_graph):
        network = SyncNetwork(small_random_graph)
        vertex = next(iter(network.vertices()))
        state = network.node(vertex)
        assert set(state.neighbors) == set(small_random_graph.neighbors(vertex))
        for neighbor in state.neighbors:
            assert state.edge_weights[neighbor] == small_random_graph[vertex][neighbor]["weight"]

    def test_unknown_vertex_raises(self, network):
        with pytest.raises(SimulationError):
            network.node(10_000)

    def test_send_and_deliver_one_round(self):
        network = SyncNetwork(path_graph(3, seed=0))
        network.send(0, 1, "ping", payload=("hello",))
        assert network.pending_count() == 1
        inboxes = network.deliver_round()
        assert network.round == 1
        assert network.pending_count() == 0
        assert [message.payload[0] for message in inboxes[1]] == ["hello"]
        assert network.metrics.messages == 1

    def test_send_over_non_edge_raises(self):
        network = SyncNetwork(path_graph(4, seed=0))
        with pytest.raises(SimulationError):
            network.send(0, 3, "ping")

    def test_bandwidth_is_enforced_per_directed_edge(self):
        network = SyncNetwork(path_graph(3, seed=0), bandwidth=2)
        network.send(0, 1, "a")
        network.send(0, 1, "b")
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "c")
        # The reverse direction and other edges still have capacity.
        network.send(1, 0, "d")
        network.send(1, 2, "e")

    def test_bandwidth_resets_each_round(self):
        network = SyncNetwork(path_graph(3, seed=0), bandwidth=1)
        network.send(0, 1, "a")
        network.deliver_round()
        network.send(0, 1, "b")
        assert network.pending_count() == 1

    def test_remaining_capacity(self):
        network = SyncNetwork(path_graph(3, seed=0), bandwidth=3)
        assert network.remaining_capacity(0, 1) == 3
        network.send(0, 1, "a", words=2)
        assert network.remaining_capacity(0, 1) == 1

    def test_rejects_invalid_bandwidth(self, small_random_graph):
        with pytest.raises(SimulationError):
            SyncNetwork(small_random_graph, bandwidth=0)

    def test_idle_rounds_advance_clock_only(self, network):
        before = network.metrics.messages
        network.idle_rounds(5)
        assert network.round == 5
        assert network.metrics.messages == before

    def test_idle_rounds_reject_pending_messages(self):
        network = SyncNetwork(path_graph(3, seed=0))
        network.send(0, 1, "a")
        with pytest.raises(SimulationError):
            network.idle_rounds(1)

    def test_idle_rounds_reject_negative(self, network):
        with pytest.raises(SimulationError):
            network.idle_rounds(-1)

    def test_edge_weight_lookup(self):
        graph = path_graph(3, seed=0, random_weights=False)
        network = SyncNetwork(graph)
        assert network.edge_weight(0, 1) == graph[0][1]["weight"]
        with pytest.raises(SimulationError):
            network.edge_weight(0, 2)

    def test_sorted_edges_are_sorted_by_weight(self, network):
        edges = network.sorted_edges()
        weights = [weight for weight, _, _ in edges]
        assert weights == sorted(weights)

    def test_cost_checkpoints(self):
        network = SyncNetwork(path_graph(4, seed=0))
        snapshot = network.checkpoint()
        network.send(0, 1, "a")
        network.deliver_round()
        delta = network.cost_since(snapshot)
        assert delta.rounds == 1 and delta.messages == 1
        assert network.total_cost().messages == 1

    def test_words_counted_at_delivery(self):
        network = SyncNetwork(path_graph(3, seed=0), bandwidth=4)
        network.send(0, 1, "a", words=3)
        assert network.metrics.words == 0
        network.deliver_round()
        assert network.metrics.words == 3
