"""Cross-engine equivalence: the optimized kernels change wall-clock only.

Every algorithm in the library is run on the same instance once per
engine -- the reference kernel (``engine="reference"``) against each
optimized comparand (``engine="fast"``, and ``engine="array"`` when
numpy is installed) -- and the executions must agree exactly: identical
MST edge sets, identical round counts, identical message and word
counts, and (where the network is in hand) identical per-kind message
histograms.  This is the contract that makes the optimized kernels safe
to use for the paper's complexity reproductions.
"""

from __future__ import annotations

import pytest

from repro.baselines.ghs import ghs_style_mst
from repro.baselines.gkp import gkp_mst
from repro.baselines.pipeline_mst import pipeline_mst_upcast
from repro.config import RunConfig
from repro.core.controlled_ghs import build_base_forest
from repro.core.elkin_mst import compute_mst
from repro.graphs import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.simulator.engine import create_engine
from repro.simulator.primitives.bfs import build_bfs_tree
from repro.simulator.primitives.neighbor_exchange import neighbor_exchange
from repro.types import normalize_edge

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: The optimized kernels compared against the reference execution.
OTHER_ENGINES = ["fast"] + (["array"] if HAVE_NUMPY else [])

#: Graph families the equivalence matrix covers (label -> builder).
GRAPH_FAMILIES = {
    "random": lambda: random_connected_graph(40, extra_edges=60, seed=11),
    "grid": lambda: grid_graph(6, 6, seed=9),
    "path": lambda: path_graph(30, seed=3),
    "star": lambda: star_graph(25, seed=4),
    "complete": lambda: complete_graph(12, seed=6),
}

FAMILIES = sorted(GRAPH_FAMILIES)


def _mst_signature(result):
    """Everything a run reports that must not depend on the engine."""
    return (
        frozenset(result.edges),
        result.total_weight,
        result.cost.rounds,
        result.cost.messages,
        result.cost.words,
    )


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_elkin_identical_across_engines(family, other):
    graph = GRAPH_FAMILIES[family]()
    reference = compute_mst(graph, RunConfig(engine="reference"))
    fast = compute_mst(graph, RunConfig(engine=other))
    assert _mst_signature(reference) == _mst_signature(fast)
    assert reference.details["k"] == fast.details["k"]
    assert reference.details["boruvka_phase_count"] == fast.details["boruvka_phase_count"]


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_ghs_identical_across_engines(family, other):
    graph = GRAPH_FAMILIES[family]()
    reference = ghs_style_mst(graph, RunConfig(engine="reference"))
    fast = ghs_style_mst(graph, RunConfig(engine=other))
    assert _mst_signature(reference) == _mst_signature(fast)


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_gkp_identical_across_engines(family, other):
    graph = GRAPH_FAMILIES[family]()
    reference = gkp_mst(graph, RunConfig(engine="reference"))
    fast = gkp_mst(graph, RunConfig(engine=other))
    assert _mst_signature(reference) == _mst_signature(fast)


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("k", [2, 4, 8])
def test_controlled_ghs_identical_across_engines(family, k, other):
    graph = GRAPH_FAMILIES[family]()

    def run(engine):
        network = create_engine(graph, validate=False, engine=engine)
        result = build_base_forest(network, k)
        return (
            frozenset(result.forest.tree_edges()),
            result.forest.count,
            network.total_cost(),
            dict(network.metrics.messages_by_kind),
        )

    assert run("reference") == run(other)


def _run_pipeline(graph, engine):
    """The Pipeline-MST filtered upcast over singleton fragments."""
    network = create_engine(graph, validate=False, engine=engine)
    bfs = build_bfs_tree(network)
    fragment_of = {vertex: vertex for vertex in network.vertices()}
    neighbor_fragments = neighbor_exchange(network, fragment_of)
    items = {}
    for vertex in network.vertices():
        own = fragment_of[vertex]
        node = network.node(vertex)
        best = {}
        for neighbor in node.neighbors:
            other = neighbor_fragments[vertex].get(neighbor, own)
            if other == own:
                continue
            candidate = (
                node.edge_weights[neighbor],
                *normalize_edge(vertex, neighbor),
                own,
                other,
            )
            current = best.get(other)
            if current is None or candidate < current:
                best[other] = candidate
        if best:
            items[vertex] = sorted(best.values())
    collected = pipeline_mst_upcast(
        network, bfs.forest, items, set(fragment_of.values())
    )
    return (
        tuple(collected),
        network.total_cost(),
        dict(network.metrics.messages_by_kind),
    )


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_pipeline_identical_across_engines(family, other):
    graph = GRAPH_FAMILIES[family]()
    assert _run_pipeline(graph, "reference") == _run_pipeline(graph, other)


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("bandwidth", [1, 2, 4])
def test_elkin_identical_across_engines_under_bandwidth(bandwidth, other):
    graph = random_connected_graph(48, extra_edges=96, seed=23)
    reference = compute_mst(graph, RunConfig(bandwidth=bandwidth, engine="reference"))
    fast = compute_mst(graph, RunConfig(bandwidth=bandwidth, engine=other))
    assert _mst_signature(reference) == _mst_signature(fast)


def _point_send_storm(graph, engine_name):
    """A protocol round mix dominated by single-target sends.

    Exercises the point-send path (staged in Python lists on the array
    kernel) interleaved with whole-neighbourhood broadcasts across
    several rounds, reading every delivered message: the trace below
    must not depend on the engine.
    """
    network = create_engine(graph, bandwidth=2, engine=engine_name)
    vertices = sorted(network.vertices())
    trace = []
    for round_index in range(4):
        for vertex in vertices:
            neighbors = network.node(vertex).neighbors
            target = neighbors[round_index % len(neighbors)]
            network.send(vertex, target, "probe", payload=(vertex, round_index))
        if round_index % 2:
            # Every other round mixes a broadcast in, so staged point
            # sends must flush ahead of it in global send order.
            network.send_to_neighbors(vertices[0], "blast", words=1)
        inboxes = network.deliver_round()
        for receiver in inboxes:
            for message in inboxes[receiver]:
                trace.append(
                    (receiver, message.sender, message.kind, message.payload, message.words)
                )
    return trace, network.metrics.rounds, network.metrics.messages, network.metrics.words


@pytest.mark.parametrize("other", OTHER_ENGINES)
@pytest.mark.parametrize("family", FAMILIES)
def test_point_send_storm_identical_across_engines(family, other):
    graph = GRAPH_FAMILIES[family]()
    assert _point_send_storm(graph, "reference") == _point_send_storm(graph, other)


@pytest.mark.parametrize("other", OTHER_ENGINES)
def test_prs_inherits_engine_from_config(other):
    from repro.baselines.prs import prs_style_mst

    graph = random_connected_graph(36, extra_edges=40, seed=17)
    reference = prs_style_mst(graph, RunConfig(engine="reference"))
    fast = prs_style_mst(graph, RunConfig(engine=other))
    assert _mst_signature(reference) == _mst_signature(fast)
