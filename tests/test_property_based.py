"""Property-based tests (hypothesis) on the core invariants.

Strategy: generate small random weighted connected graphs (or abstract
forests) and assert the library-wide invariants that the paper's
correctness rests on -- agreement with the sequential MST, validity of
the Cole-Vishkin colouring and the maximal matching, the laminar-family
property of the interval labelling, and the (alpha, beta) guarantees of
Controlled-GHS.

The differential workload-zoo suite (:class:`TestZooDifferential`) runs
the paper's algorithm against every sequential reference on seeded
instances of *every registered graph family*, asserting identical edge
sets, equal MST weight, verified spanning-forest invariants and (for
planted families) agreement with the planted ground truth.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, HealthCheck, settings
from hypothesis import strategies as st

from repro import workloads
from repro.analysis.experiments import run_single
from repro.baselines import kruskal_mst
from repro.config import RunConfig
from repro.core.cole_vishkin import cole_vishkin_coloring, validate_coloring
from repro.core.controlled_ghs import build_base_forest
from repro.core.elkin_mst import compute_mst
from repro.core.maximal_matching import maximal_matching_from_coloring
from repro.graphs.generators import available_families
from repro.graphs.weights import assign_unique_weights
from repro.simulator.network import SyncNetwork
from repro.simulator.primitives.bfs import build_bfs_tree
from repro.simulator.primitives.intervals import assign_intervals
from repro.simulator.primitives.pipeline import pipelined_upcast
from repro.verify.forest_checks import assert_alpha_beta_forest
from repro.verify.planted_checks import assert_matches_planted_mst, planted_mst_edges

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_weighted_graphs(draw, max_vertices=26):
    """A connected graph on 2..max_vertices vertices with distinct weights."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Random spanning tree by attaching each vertex to an earlier one.
    for vertex in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=vertex - 1))
        graph.add_edge(vertex, parent)
    extra = draw(st.integers(min_value=0, max_value=min(3 * n, n * (n - 1) // 2 - (n - 1))))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    assign_unique_weights(graph)
    # Permute weights so the MST is not simply the attachment tree.
    shift = draw(st.integers(min_value=0, max_value=5))
    for index, (u, v) in enumerate(sorted((min(a, b), max(a, b)) for a, b in graph.edges())):
        graph[u][v]["weight"] = float(1 + ((index * 7 + shift) % (3 * graph.number_of_edges() + 1)))
    assign_unique_weights(graph) if len(
        {d["weight"] for _, _, d in graph.edges(data=True)}
    ) != graph.number_of_edges() else None
    return graph


@st.composite
def rooted_forests(draw, max_nodes=40):
    """A random rooted forest over integer node identities."""
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    parent = {}
    for node in range(size):
        if node == 0 or draw(st.booleans()):
            parent[node] = None
        else:
            parent[node] = draw(st.integers(min_value=0, max_value=node - 1))
    return parent


class TestMSTProperties:
    @SLOW
    @given(graph=connected_weighted_graphs())
    def test_elkin_agrees_with_kruskal(self, graph):
        result = compute_mst(graph)
        assert result.edges == kruskal_mst(graph)

    @SLOW
    @given(graph=connected_weighted_graphs(max_vertices=20), bandwidth=st.sampled_from([1, 2, 4]))
    def test_elkin_is_bandwidth_invariant_in_output(self, graph, bandwidth):
        result = compute_mst(graph, RunConfig(bandwidth=bandwidth))
        assert result.edges == kruskal_mst(graph)

    @SLOW
    @given(graph=connected_weighted_graphs(max_vertices=20), k=st.integers(min_value=1, max_value=8))
    def test_controlled_ghs_alpha_beta_property(self, graph, k):
        network = SyncNetwork(graph)
        result = build_base_forest(network, k)
        assert_alpha_beta_forest(graph, result.forest, k)


class TestColoringAndMatchingProperties:
    @settings(max_examples=40, deadline=None)
    @given(parent=rooted_forests())
    def test_cole_vishkin_always_proper_and_three_colored(self, parent):
        result = cole_vishkin_coloring(parent)
        validate_coloring(parent, result.colors)
        assert set(result.colors.values()) <= {0, 1, 2}

    @settings(max_examples=40, deadline=None)
    @given(parent=rooted_forests())
    def test_matching_valid_and_maximal(self, parent):
        coloring = cole_vishkin_coloring(parent)
        matching = maximal_matching_from_coloring(parent, coloring.colors)
        matched = set()
        for edge in matching:
            assert len(edge) == 2
            assert not (edge & matched)
            matched |= edge
        for node, parent_node in parent.items():
            if parent_node is not None:
                assert node in matched or parent_node in matched


#: Every sequential reference the zoo instances are checked against.
SEQUENTIAL_REFERENCES = ("kruskal", "prim", "prim_dense", "boruvka_seq")


class TestZooDifferential:
    """Differential suite: elkin vs. every sequential reference, per family.

    For each registered workload family, seeded random instances are run
    by the paper's algorithm (with full oracle verification) and by all
    four sequential references; the suite asserts identical edge sets,
    equal MST weight, the spanning-forest invariant and -- on planted
    families -- agreement with the planted ground truth.
    """

    @pytest.mark.parametrize("family", available_families())
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_family_differential(self, family, seed):
        graph = workloads.coverage_spec(family, seed=seed).build()
        # verify=True runs the full oracle stack (networkx + Kruskal +
        # Prim + planted checks) on the distributed result.
        elkin = run_single(graph, "elkin", engine="fast", verify=True, seed=seed)
        assert elkin.spans(graph)
        assert elkin.edge_count == graph.number_of_nodes() - 1
        for reference in SEQUENTIAL_REFERENCES:
            result = run_single(graph, reference, verify=True, seed=seed)
            assert result.edges == elkin.edges, (
                f"{reference} disagrees with elkin on {family} (seed {seed})"
            )
            assert result.total_weight == pytest.approx(elkin.total_weight)
            assert result.spans(graph)
            assert result.rounds == 0 and result.messages == 0

    @pytest.mark.parametrize("family", workloads.PLANTED_FAMILIES)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_planted_families_expose_and_match_ground_truth(self, family, seed):
        graph = workloads.coverage_spec(family, seed=seed).build()
        planted = planted_mst_edges(graph)
        assert planted is not None and len(planted) == graph.number_of_nodes() - 1
        # The planted tree must be the unique MST, independently.
        assert kruskal_mst(graph) == planted
        result = run_single(graph, "elkin", engine="fast", verify=True, seed=seed)
        assert_matches_planted_mst(graph, result)
        assert result.details["planted_mst"] == [list(edge) for edge in sorted(planted)]

    @pytest.mark.parametrize(
        "family", ("unit_weight_stress", "duplicate_weight_stress")
    )
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_weight_stress_families_keep_weights_distinct(self, family, seed):
        graph = workloads.coverage_spec(family, seed=seed).build()
        weights = [data["weight"] for _, _, data in graph.edges(data=True)]
        assert len(set(weights)) == len(weights)
        assert all(weight > 0 for weight in weights)


class TestPrimitiveProperties:
    @SLOW
    @given(graph=connected_weighted_graphs(max_vertices=22))
    def test_intervals_are_laminar_and_routing_works(self, graph):
        network = SyncNetwork(graph)
        tree = build_bfs_tree(network, root=0)
        routing = assign_intervals(network, tree.forest)
        for vertex, parent in tree.forest.parent.items():
            if parent is not None:
                assert routing.contains(parent, vertex)
        # Routing from the root reaches an arbitrary vertex.
        target = max(tree.forest.vertices)
        current = tree.root
        while current != target:
            current = routing.next_hop(current, target)
        assert current == target

    @SLOW
    @given(graph=connected_weighted_graphs(max_vertices=22), data=st.data())
    def test_pipelined_upcast_returns_minimum_per_key(self, graph, data):
        network = SyncNetwork(graph)
        tree = build_bfs_tree(network, root=0)
        items = {}
        expected = {}
        for vertex in tree.forest.vertices:
            count = data.draw(st.integers(min_value=0, max_value=2))
            for _ in range(count):
                key = data.draw(st.integers(min_value=0, max_value=5))
                value = (float(data.draw(st.integers(min_value=1, max_value=100))), vertex)
                current = items.setdefault(vertex, {}).get(key)
                if current is None or value < current:
                    items[vertex][key] = value
                best = expected.get(key)
                if (
                    key not in items[vertex]
                    or items[vertex][key] == value
                ) and (best is None or value < best):
                    expected[key] = value
        result = pipelined_upcast(network, tree.forest, items)
        # Recompute the expectation directly from what was actually stored.
        recomputed = {}
        for vertex_items in items.values():
            for key, value in vertex_items.items():
                if key not in recomputed or value < recomputed[key]:
                    recomputed[key] = value
        assert result[tree.root] == recomputed
