"""Tests for the Controlled-GHS base-forest construction (Theorem 4.3)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import controlled_ghs_message_bound, controlled_ghs_time_bound
from repro.core.controlled_ghs import build_base_forest
from repro.graphs import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.simulator.network import SyncNetwork
from repro.verify.forest_checks import (
    assert_alpha_beta_forest,
    assert_fragments_are_mst_subtrees,
    assert_valid_mst_forest,
)


def _build(graph, k):
    network = SyncNetwork(graph)
    result = build_base_forest(network, k)
    return network, result


GRAPH_CASES = [
    ("random", lambda: random_connected_graph(60, seed=21)),
    ("path", lambda: path_graph(40, seed=22)),
    ("grid", lambda: grid_graph(6, 7, seed=23)),
    ("star", lambda: star_graph(30, seed=24)),
    ("complete", lambda: complete_graph(14, seed=25)),
]


class TestForestGuarantees:
    @pytest.mark.parametrize("name,builder", GRAPH_CASES)
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_alpha_beta_guarantee(self, name, builder, k):
        graph = builder()
        _, result = _build(graph, k)
        assert result.k == k
        assert_alpha_beta_forest(graph, result.forest, k)

    @pytest.mark.parametrize("name,builder", GRAPH_CASES)
    def test_fragments_are_subtrees_of_the_unique_mst(self, name, builder):
        graph = builder()
        _, result = _build(graph, 6)
        assert_fragments_are_mst_subtrees(graph, result.forest)

    def test_k_equals_one_returns_singletons_for_free(self, small_random_graph):
        network, result = _build(small_random_graph, 1)
        assert result.forest.count == small_random_graph.number_of_nodes()
        assert network.total_cost().rounds == 0
        assert network.total_cost().messages == 0

    def test_large_k_collapses_to_few_fragments(self, small_path_graph):
        _, result = _build(small_path_graph, small_path_graph.number_of_nodes())
        # With k >= n the construction keeps merging until very few
        # fragments remain (possibly one, i.e. the whole MST).
        assert result.forest.count <= 4
        assert_valid_mst_forest(small_path_graph, result.forest)

    def test_fragment_count_shrinks_monotonically(self, medium_random_graph):
        _, result = _build(medium_random_graph, 8)
        counts = [phase.fragments_before for phase in result.phases]
        counts.append(result.phases[-1].fragments_after)
        assert all(later <= earlier for earlier, later in zip(counts, counts[1:]))
        # Lemma 4.2: the fragment count at least halves while all
        # fragments are small (phase 0 starts from singletons).
        assert result.phases[0].fragments_after <= math.ceil(counts[0] / 2)


class TestCostGuarantees:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_theorem_4_3_bounds(self, medium_random_graph, k):
        network, result = _build(medium_random_graph, k)
        n = medium_random_graph.number_of_nodes()
        m = medium_random_graph.number_of_edges()
        assert result.cost.rounds <= controlled_ghs_time_bound(n, k)
        assert result.cost.messages <= controlled_ghs_message_bound(n, m, k)

    def test_phase_count_is_log_k(self, medium_random_graph):
        _, result = _build(medium_random_graph, 8)
        assert len(result.phases) <= math.ceil(math.log2(8))

    def test_phase_telemetry_sums_to_total(self, small_random_graph):
        _, result = _build(small_random_graph, 8)
        assert sum(phase.rounds for phase in result.phases) == result.cost.rounds
        assert sum(phase.messages for phase in result.phases) == result.cost.messages

    def test_mst_edges_match_tree_edges(self, small_grid_graph):
        _, result = _build(small_grid_graph, 4)
        assert result.mst_edges == result.forest.tree_edges()
        assert result.fragment_count == result.forest.count
        assert result.max_fragment_diameter() == result.forest.max_diameter()


class TestBandwidthVariant:
    def test_higher_bandwidth_preserves_structure(self, small_random_graph):
        network = SyncNetwork(small_random_graph, bandwidth=4)
        result = build_base_forest(network, 6)
        assert_alpha_beta_forest(small_random_graph, result.forest, 6)
