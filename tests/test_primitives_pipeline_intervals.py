"""Tests for interval labelling and the pipelined upcast / downcast."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.graphs import grid_graph, path_graph, random_connected_graph
from repro.simulator.network import SyncNetwork
from repro.simulator.primitives.bfs import build_bfs_tree
from repro.simulator.primitives.intervals import assign_intervals
from repro.simulator.primitives.pipeline import pipelined_downcast, pipelined_upcast


def _bfs_tree(graph, bandwidth=1):
    network = SyncNetwork(graph, bandwidth=bandwidth)
    tree = build_bfs_tree(network, root=0)
    return network, tree


class TestIntervalAssignment:
    def test_intervals_form_a_laminar_family(self):
        graph = random_connected_graph(40, seed=7)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        intervals = routing.intervals
        assert intervals[tree.root] == (1, graph.number_of_nodes())
        for vertex, parent in tree.forest.parent.items():
            lo, hi = intervals[vertex]
            assert lo <= hi
            if parent is not None:
                # Nested in the parent's interval and disjoint from siblings.
                assert routing.contains(parent, vertex)
                for sibling in tree.forest.children[parent]:
                    if sibling == vertex:
                        continue
                    slo, shi = intervals[sibling]
                    assert hi < slo or shi < lo

    def test_interval_length_equals_subtree_size(self):
        graph = grid_graph(4, 5, seed=2)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        sizes = {v: 1 for v in tree.forest.vertices}
        for vertex in tree.forest.bottom_up_order():
            parent = tree.forest.parent[vertex]
            if parent is not None:
                sizes[parent] += sizes[vertex]
        for vertex, (lo, hi) in routing.intervals.items():
            assert hi - lo + 1 == sizes[vertex]

    def test_next_hop_routes_towards_the_target(self):
        graph = random_connected_graph(35, seed=8)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        for target in tree.forest.vertices:
            current = tree.root
            hops = 0
            while current != target:
                current = routing.next_hop(current, target)
                hops += 1
                assert hops <= tree.depth + 1
            assert current == target

    def test_next_hop_rejects_self_and_foreign_targets(self):
        graph = path_graph(6, seed=1)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        with pytest.raises(ProtocolError):
            routing.next_hop(3, 3)
        with pytest.raises(ProtocolError):
            routing.next_hop(4, 0)  # 0 is not in the subtree of 4 on a path rooted at 0

    def test_cost_is_linear(self):
        graph = random_connected_graph(50, seed=9)
        network, tree = _bfs_tree(graph)
        before = network.checkpoint()
        assign_intervals(network, tree.forest)
        cost = network.cost_since(before)
        assert cost.messages <= 2 * graph.number_of_nodes()
        assert cost.rounds <= 2 * (tree.depth + 2)


class TestPipelinedUpcast:
    def test_minimum_per_key_reaches_the_root(self):
        graph = random_connected_graph(45, seed=10)
        network, tree = _bfs_tree(graph)
        items = {}
        expected = {}
        for index, vertex in enumerate(sorted(tree.forest.vertices)):
            key = index % 7
            value = (float((index * 37) % 101), vertex)
            items[vertex] = {key: value}
            if key not in expected or value < expected[key]:
                expected[key] = value
        result = pipelined_upcast(network, tree.forest, items)
        assert result[tree.root] == expected

    def test_pipelining_round_bound(self):
        graph = path_graph(30, seed=4)
        network, tree = _bfs_tree(graph)
        keys = list(range(12))
        items = {29: {key: (float(key), 29) for key in keys}}
        before = network.checkpoint()
        pipelined_upcast(network, tree.forest, items)
        cost = network.cost_since(before)
        # Depth is 29; 12 items must not cost 12 * depth rounds.
        assert cost.rounds <= tree.depth + len(keys) + 5

    def test_larger_bandwidth_reduces_rounds(self):
        graph = path_graph(25, seed=4)
        items = {24: {key: (float(key), 24) for key in range(16)}}
        costs = {}
        for bandwidth in (1, 4):
            network, tree = _bfs_tree(graph, bandwidth=bandwidth)
            before = network.checkpoint()
            pipelined_upcast(network, tree.forest, items)
            costs[bandwidth] = network.cost_since(before).rounds
        assert costs[4] < costs[1]

    def test_empty_items_still_terminate(self):
        graph = grid_graph(3, 3, seed=1)
        network, tree = _bfs_tree(graph)
        result = pipelined_upcast(network, tree.forest, {})
        assert result[tree.root] == {}

    def test_tree_edges_must_be_graph_edges(self):
        graph = path_graph(4, seed=1)
        network, _ = _bfs_tree(graph)
        from repro.simulator.primitives.trees import RootedForest

        bad_tree = RootedForest(parent={0: None, 2: 0})
        with pytest.raises(ProtocolError):
            pipelined_upcast(network, bad_tree, {})


class TestPipelinedDowncast:
    def test_every_target_receives_its_payloads(self):
        graph = random_connected_graph(40, seed=12)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        targets = sorted(tree.forest.vertices)[::3]
        payloads = [(target, f"msg-{target}") for target in targets]
        delivered = pipelined_downcast(network, tree.forest, payloads, routing=routing)
        assert set(delivered) == set(targets)
        for target in targets:
            assert delivered[target] == [f"msg-{target}"]

    def test_multiple_payloads_to_one_target(self):
        graph = path_graph(8, seed=1)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        delivered = pipelined_downcast(
            network, tree.forest, [(5, "a"), (5, "b"), (3, "c")], routing=routing
        )
        assert sorted(delivered[5]) == ["a", "b"]
        assert delivered[3] == ["c"]

    def test_root_as_target_costs_no_messages(self):
        graph = path_graph(5, seed=1)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        before = network.checkpoint()
        delivered = pipelined_downcast(network, tree.forest, [(0, "self")], routing=routing)
        assert delivered == {0: ["self"]}
        assert network.cost_since(before).messages == 0

    def test_pipelining_round_bound(self):
        graph = path_graph(25, seed=2)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        payloads = [(24, index) for index in range(10)]
        before = network.checkpoint()
        pipelined_downcast(network, tree.forest, payloads, routing=routing)
        cost = network.cost_since(before)
        assert cost.rounds <= tree.depth + len(payloads) + 5

    def test_requires_routing_or_next_hop(self):
        graph = path_graph(4, seed=1)
        network, tree = _bfs_tree(graph)
        with pytest.raises(ProtocolError):
            pipelined_downcast(network, tree.forest, [(2, "x")])

    def test_unknown_target_raises(self):
        graph = path_graph(4, seed=1)
        network, tree = _bfs_tree(graph)
        routing = assign_intervals(network, tree.forest)
        with pytest.raises(ProtocolError):
            pipelined_downcast(network, tree.forest, [(99, "x")], routing=routing)
