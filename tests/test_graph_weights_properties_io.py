"""Tests for weight assignment, graph properties and edge-list IO."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import kruskal_mst
from repro.exceptions import DisconnectedGraphError, GraphError, WeightError
from repro.graphs import (
    assign_random_unique_weights,
    assign_unique_weights,
    ensure_unique_weights,
    graph_summary,
    hop_diameter,
    is_connected_weighted,
    path_graph,
    random_connected_graph,
    read_edge_list,
    validate_weighted_graph,
    weights_are_unique,
    write_edge_list,
)


def _unweighted_triangle():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return graph


class TestWeightAssignment:
    def test_assign_unique_weights_is_deterministic(self):
        first = assign_unique_weights(_unweighted_triangle())
        second = assign_unique_weights(_unweighted_triangle())
        assert [first[u][v]["weight"] for u, v in sorted(first.edges())] == [
            second[u][v]["weight"] for u, v in sorted(second.edges())
        ]

    def test_assign_unique_weights_rejects_bad_step(self):
        with pytest.raises(WeightError):
            assign_unique_weights(_unweighted_triangle(), step=0)

    def test_random_weights_are_unique_and_in_range(self):
        graph = assign_random_unique_weights(_unweighted_triangle(), seed=1, low=10, high=20)
        assert weights_are_unique(graph)
        assert all(10 <= data["weight"] < 20 for _, _, data in graph.edges(data=True))

    def test_random_weights_reject_bad_range(self):
        with pytest.raises(WeightError):
            assign_random_unique_weights(_unweighted_triangle(), low=5, high=5)

    def test_weights_are_unique_detects_duplicates(self):
        graph = _unweighted_triangle()
        nx.set_edge_attributes(graph, 1.0, "weight")
        assert not weights_are_unique(graph)

    def test_weights_are_unique_detects_missing(self):
        assert not weights_are_unique(_unweighted_triangle())

    def test_ensure_unique_preserves_mst_under_tie_breaking(self):
        graph = _unweighted_triangle()
        graph[0][1]["weight"] = 1.0
        graph[1][2]["weight"] = 1.0
        graph[0][2]["weight"] = 1.0
        ensure_unique_weights(graph)
        assert weights_are_unique(graph)
        # Lexicographically smallest edges win: (0,1) and (0,2).
        assert kruskal_mst(graph) == {(0, 1), (0, 2)}

    def test_ensure_unique_requires_weights(self):
        with pytest.raises(WeightError):
            ensure_unique_weights(_unweighted_triangle())


class TestProperties:
    def test_hop_diameter_of_known_graphs(self):
        assert hop_diameter(path_graph(10, seed=0)) == 9
        single = nx.Graph()
        single.add_node(0)
        assert hop_diameter(single) == 0

    def test_hop_diameter_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=2.0)
        with pytest.raises(DisconnectedGraphError):
            hop_diameter(graph)

    def test_hop_diameter_rejects_empty(self):
        with pytest.raises(GraphError):
            hop_diameter(nx.Graph())

    def test_validate_accepts_generated_graph(self):
        validate_weighted_graph(random_connected_graph(20, seed=1))

    def test_validate_rejects_missing_weight(self):
        with pytest.raises(WeightError):
            validate_weighted_graph(_unweighted_triangle())

    def test_validate_rejects_non_positive_weight(self):
        graph = _unweighted_triangle()
        graph[0][1]["weight"] = -1.0
        graph[1][2]["weight"] = 2.0
        graph[0][2]["weight"] = 3.0
        with pytest.raises(WeightError):
            validate_weighted_graph(graph)

    def test_validate_rejects_duplicate_weights_when_required(self):
        graph = _unweighted_triangle()
        nx.set_edge_attributes(graph, 1.0, "weight")
        with pytest.raises(WeightError):
            validate_weighted_graph(graph, require_unique_weights=True)
        validate_weighted_graph(graph, require_unique_weights=False)

    def test_validate_rejects_directed(self):
        graph = nx.DiGraph()
        graph.add_edge(0, 1, weight=1.0)
        with pytest.raises(GraphError):
            validate_weighted_graph(graph)

    def test_is_connected_weighted(self):
        assert is_connected_weighted(path_graph(5, seed=0))
        assert not is_connected_weighted(nx.Graph())
        assert not is_connected_weighted(_unweighted_triangle())

    def test_graph_summary_fields(self):
        graph = path_graph(8, seed=0, random_weights=False)
        summary = graph_summary(graph)
        assert summary.n == 8
        assert summary.m == 7
        assert summary.hop_diameter == 7
        assert summary.min_weight == 1.0
        assert summary.max_weight == 7.0
        assert summary.total_weight == pytest.approx(28.0)
        assert not summary.is_low_diameter

    def test_graph_summary_low_diameter_flag(self):
        assert graph_summary(random_connected_graph(50, seed=2)).is_low_diameter


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        graph = random_connected_graph(15, seed=8)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        from repro.types import normalize_edges

        assert normalize_edges(loaded.edges()) == normalize_edges(graph.edges())
        for u, v in graph.edges():
            assert loaded[u][v]["weight"] == pytest.approx(graph[u][v]["weight"])

    def test_write_requires_weights(self, tmp_path):
        with pytest.raises(GraphError):
            write_edge_list(_unweighted_triangle(), tmp_path / "bad.edges")

    def test_read_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "broken.edges"
        path.write_text("0 1 2.0\n0 garbage\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_read_rejects_non_numeric(self, tmp_path):
        path = tmp_path / "broken.edges"
        path.write_text("a b c\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.edges"
        path.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comments_and_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "ok.edges"
        path.write_text("# header\n\n0 1 1.5\n1 2 2.5\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.number_of_edges() == 2
