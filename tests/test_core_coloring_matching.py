"""Tests for Cole-Vishkin colouring and the maximal matching procedure."""

from __future__ import annotations

import random

import pytest

from repro.analysis.bounds import log_star
from repro.core.cole_vishkin import cole_vishkin_coloring, validate_coloring
from repro.core.maximal_matching import maximal_matching_from_coloring
from repro.exceptions import ProtocolError


def _random_forest(size, seed, root_fraction=0.2):
    """A random rooted forest over node identities 0..size-1."""
    rng = random.Random(seed)
    parent = {}
    order = list(range(size))
    rng.shuffle(order)
    for index, node in enumerate(order):
        if index == 0 or rng.random() < root_fraction:
            parent[node] = None
        else:
            parent[node] = order[rng.randrange(index)]
    return parent


class TestColeVishkin:
    @pytest.mark.parametrize("size,seed", [(5, 1), (20, 2), (60, 3), (150, 4)])
    def test_produces_proper_three_coloring(self, size, seed):
        parent = _random_forest(size, seed)
        result = cole_vishkin_coloring(parent)
        validate_coloring(parent, result.colors)
        assert set(result.colors.values()) <= {0, 1, 2}

    def test_path_forest(self):
        parent = {0: None}
        for node in range(1, 50):
            parent[node] = node - 1
        result = cole_vishkin_coloring(parent)
        validate_coloring(parent, result.colors)
        assert max(result.colors.values()) <= 2

    def test_iteration_count_is_log_star_like(self):
        parent = _random_forest(200, seed=9)
        result = cole_vishkin_coloring(parent)
        # log*(200) = 4 (base 2); allow a small additive constant.
        assert result.bit_reduction_iterations <= log_star(200) + 4
        assert result.shift_down_steps <= 3

    def test_custom_initial_identifiers(self):
        parent = {10: None, 20: 10, 30: 20}
        result = cole_vishkin_coloring(parent, initial_ids={10: 1000, 20: 2000, 30: 555})
        validate_coloring(parent, result.colors)

    def test_exchange_callback_called_once_per_exchange(self):
        parent = _random_forest(80, seed=5)
        calls = []
        result = cole_vishkin_coloring(parent, on_exchange=lambda colors: calls.append(len(colors)))
        assert len(calls) == result.exchanges
        assert all(count == len(parent) for count in calls)

    def test_single_node_forest(self):
        result = cole_vishkin_coloring({42: None})
        assert result.colors == {42: 0} or result.colors[42] in (0, 1, 2)

    def test_two_colored_input_terminates_quickly(self):
        parent = {0: None, 1: 0}
        result = cole_vishkin_coloring(parent, initial_ids={0: 0, 1: 1})
        assert result.exchanges == 0
        validate_coloring(parent, result.colors)

    def test_rejects_duplicate_identifiers(self):
        with pytest.raises(ProtocolError):
            cole_vishkin_coloring({0: None, 1: 0}, initial_ids={0: 3, 1: 3})

    def test_rejects_negative_identifiers(self):
        with pytest.raises(ProtocolError):
            cole_vishkin_coloring({0: None, 1: 0}, initial_ids={0: -1, 1: 2})

    def test_rejects_unknown_parent(self):
        with pytest.raises(ProtocolError):
            cole_vishkin_coloring({0: 5})

    def test_rejects_empty_forest(self):
        with pytest.raises(ProtocolError):
            cole_vishkin_coloring({})

    def test_validate_coloring_detects_conflicts(self):
        with pytest.raises(ProtocolError):
            validate_coloring({0: None, 1: 0}, {0: 1, 1: 1})
        with pytest.raises(ProtocolError):
            validate_coloring({0: None, 1: 0}, {0: 1})


class TestMaximalMatching:
    @pytest.mark.parametrize("size,seed", [(10, 1), (40, 2), (120, 3)])
    def test_matching_is_valid_and_maximal(self, size, seed):
        parent = _random_forest(size, seed)
        coloring = cole_vishkin_coloring(parent)
        matching = maximal_matching_from_coloring(parent, coloring.colors)
        matched = set()
        for edge in matching:
            a, b = tuple(edge)
            # Every matching edge is a forest edge.
            assert parent.get(a) == b or parent.get(b) == a
            assert a not in matched and b not in matched
            matched.update(edge)
        # Maximality: no forest edge joins two unmatched nodes.
        for node, parent_node in parent.items():
            if parent_node is None:
                continue
            assert node in matched or parent_node in matched

    def test_star_forest_matches_exactly_one_child(self):
        parent = {0: None, 1: 0, 2: 0, 3: 0, 4: 0}
        coloring = cole_vishkin_coloring(parent)
        matching = maximal_matching_from_coloring(parent, coloring.colors)
        assert len(matching) == 1
        assert any(0 in edge for edge in matching)

    def test_isolated_nodes_stay_unmatched(self):
        parent = {0: None, 1: None, 2: None}
        matching = maximal_matching_from_coloring(parent, {0: 0, 1: 1, 2: 2})
        assert matching == set()

    def test_on_step_called_three_times(self):
        parent = _random_forest(30, seed=4)
        coloring = cole_vishkin_coloring(parent)
        steps = []
        maximal_matching_from_coloring(
            parent, coloring.colors, on_step=lambda step, matching: steps.append(step)
        )
        assert steps == [0, 1, 2]

    def test_rejects_colors_out_of_range(self):
        parent = {0: None, 1: 0}
        with pytest.raises(ProtocolError):
            maximal_matching_from_coloring(parent, {0: 0, 1: 5})

    def test_rejects_improper_coloring(self):
        parent = {0: None, 1: 0}
        with pytest.raises(ProtocolError):
            maximal_matching_from_coloring(parent, {0: 1, 1: 1})

    def test_deterministic(self):
        parent = _random_forest(50, seed=6)
        coloring = cole_vishkin_coloring(parent)
        first = maximal_matching_from_coloring(parent, coloring.colors)
        second = maximal_matching_from_coloring(parent, coloring.colors)
        assert first == second
