"""The network-conditions subsystem: specs, the proxy, and determinism.

The contract under test (DESIGN.md, Section 14): a
:class:`~repro.conditions.NetworkCondition` is pure content-hashed data;
the :class:`~repro.conditions.ConditionedEngine` proxy applies it on the
delivery side of any kernel; and an identical ``(instance, condition,
seed)`` replays byte-identically on every engine and in every executor
mode.  Crash schedules that prevent termination surface as the typed
:class:`~repro.exceptions.NonTerminationError`, never as a hang.
"""

from __future__ import annotations

import pytest

from repro.algorithms import run_algorithm
from repro.analysis.experiments import run_single
from repro.analysis.report import analyze_rows, render_markdown
from repro.campaign import Campaign, execute_campaign, RunStore
from repro.campaign.spec import graph_spec_for, RunSpec
from repro.conditions import (
    AdversarialModel,
    available_conditions,
    CONDITION_PRESETS,
    ConditionedEngine,
    CrashModel,
    DelayModel,
    LossModel,
    NetworkCondition,
    normalize_condition,
    parse_condition,
    with_name,
)
from repro.config import RunConfig
from repro.exceptions import (
    ConfigurationError,
    NonTerminationError,
    SimulationError,
    VerificationError,
)
from repro.graphs.generators import make_graph
from repro.simulator.fast_network import FastNetwork
from repro.verify.complexity_checks import assert_elkin_bounds

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

#: Every registered kernel joins the conditioned byte-identity matrix.
ALL_ENGINES = ["reference", "fast"] + (["array"] if HAVE_NUMPY else [])


class TestConditionSpec:
    def test_presets_resolve_by_name(self):
        for name in available_conditions():
            condition = parse_condition(name)
            assert condition is CONDITION_PRESETS[name]
            assert condition.label() == name

    def test_clause_syntax_composes_models(self):
        condition = parse_condition("loss(rate=0.1,retransmit=4)+delay(max=2)+seed=7")
        assert condition.loss == LossModel(rate=0.1, retransmit=4)
        assert condition.delay == DelayModel(max_delay=2)
        assert condition.crash is None and condition.adversary is None
        assert condition.seed == 7

    def test_crash_clauses_accumulate_schedule_events(self):
        condition = parse_condition("crash(v=0,at=5,down=4)+crash(v=3,at=8)+stretch=2")
        assert condition.crash.schedule == ((0, 5, 9), (3, 8, None))
        assert condition.round_stretch == 2

    def test_adversary_clauses(self):
        condition = parse_condition(
            "adversary(heavy=4,delay=3)+adversary(drop=upcast,rate=0.5)"
        )
        assert condition.adversary == AdversarialModel(
            heaviest_edges=4, heavy_delay=3, drop_kind="upcast", drop_rate=0.5
        )

    @pytest.mark.parametrize(
        "text",
        [
            "delay(3)",  # positional args are not part of the grammar
            "bogus(x=1)",
            "loss(rate=2)",  # rate out of [0, 1)
            "loss(rate=0.1,typo=1)",
            "delay(max=0)",
            "crash(v=0,at=0)",  # crashes start at round >= 1
            "lossy+",  # presets do not compose with clauses
            "",
        ],
    )
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ConfigurationError):
            parse_condition(text)

    def test_describe_round_trips_through_the_parser(self):
        for name in available_conditions():
            condition = CONDITION_PRESETS[name]
            assert parse_condition(condition.describe()).key() == condition.key()

    def test_name_is_excluded_from_the_identity_hash(self):
        condition = parse_condition("loss(rate=0.1)+seed=3")
        renamed = with_name(condition, "my-lossy")
        assert renamed.key() == condition.key()
        assert renamed.label() == "my-lossy"
        assert condition.label() == condition.describe()

    def test_json_round_trip_is_exact(self):
        for name in available_conditions():
            condition = CONDITION_PRESETS[name]
            assert NetworkCondition.from_json_dict(condition.to_json_dict()) == condition

    def test_normalize_accepts_every_input_form(self):
        condition = CONDITION_PRESETS["lossy"]
        assert normalize_condition(None) is None
        assert normalize_condition(condition) is condition
        assert normalize_condition("lossy") is condition
        assert normalize_condition(condition.to_json_dict()) == condition
        with pytest.raises(ConfigurationError):
            normalize_condition(42)

    def test_seed_and_models_change_the_hash(self):
        base = parse_condition("loss(rate=0.1)")
        assert parse_condition("loss(rate=0.1)+seed=1").key() != base.key()
        assert parse_condition("loss(rate=0.2)").key() != base.key()

    def test_condition_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkCondition(seed=-1)
        with pytest.raises(ConfigurationError):
            NetworkCondition(round_stretch=0)
        with pytest.raises(ConfigurationError):
            LossModel(rate=1.0)
        with pytest.raises(ConfigurationError):
            CrashModel(schedule=((0, 5, 5),))  # end must exceed start
        with pytest.raises(ConfigurationError):
            AdversarialModel(heaviest_edges=2)  # needs heavy_delay >= 1


class TestRunSpecIntegration:
    """Conditions ride inside run specs without disturbing clean keys."""

    def test_clean_spec_keys_are_unchanged(self):
        graph = graph_spec_for("random_connected", 16)
        bare = RunSpec(graph=graph, algorithm="elkin", seed=0)
        explicit = RunSpec(graph=graph, algorithm="elkin", seed=0, condition=None)
        assert bare.run_key() == explicit.run_key()
        assert "condition" not in bare.to_json_dict()

    def test_conditioned_specs_key_on_the_condition(self):
        graph = graph_spec_for("random_connected", 16)
        bare = RunSpec(graph=graph, algorithm="elkin", seed=0)
        lossy = RunSpec(graph=graph, algorithm="elkin", seed=0, condition="lossy")
        flaky = RunSpec(graph=graph, algorithm="elkin", seed=0, condition="flaky")
        assert len({bare.run_key(), lossy.run_key(), flaky.run_key()}) == 3
        # Renaming never invalidates stored runs.
        renamed = RunSpec(
            graph=graph,
            algorithm="elkin",
            seed=0,
            condition=with_name(CONDITION_PRESETS["lossy"], "other"),
        )
        assert renamed.run_key() == lossy.run_key()

    def test_spec_json_round_trip_carries_the_condition(self):
        spec = RunSpec(
            graph=graph_spec_for("grid", 16),
            algorithm="ghs",
            seed=1,
            condition="delayed",
        )
        back = RunSpec.from_json_dict(spec.to_json_dict())
        assert back.condition == CONDITION_PRESETS["delayed"]
        assert back.run_key() == spec.run_key()

    def test_from_grid_conditions_axis(self):
        campaign = Campaign.from_grid(
            "grid-cond",
            [graph_spec_for("random_connected", 16)],
            algorithms=("elkin",),
            seeds=(0,),
            conditions=(None, "lossy", "delayed"),
        )
        assert len(campaign) == 3
        assert [spec.condition for spec in campaign.specs] == [
            None,
            CONDITION_PRESETS["lossy"],
            CONDITION_PRESETS["delayed"],
        ]

    def test_with_condition_retargets_every_cell(self):
        campaign = Campaign.from_grid(
            "retarget", [graph_spec_for("random_connected", 16)], seeds=(0, 1)
        )
        lossy = campaign.with_condition("lossy")
        assert all(spec.condition == CONDITION_PRESETS["lossy"] for spec in lossy.specs)
        assert campaign.run_keys() != lossy.run_keys()


class TestConditionedEngineUnits:
    """Proxy semantics against a real kernel, one model at a time."""

    def _wrap(self, graph, text, bandwidth=4):
        inner = FastNetwork(graph, bandwidth=bandwidth)
        return ConditionedEngine(inner, parse_condition(text)), inner

    def test_noop_condition_binds_delivery_straight_through(self):
        graph = make_graph("path", n=4, seed=0)
        inner = FastNetwork(graph)
        engine = ConditionedEngine(inner, NetworkCondition(seed=0))
        assert engine.deliver_round.__self__ is inner
        assert engine.send.__self__ is inner

    def test_full_delay_defers_every_message_exactly_one_round(self):
        # max=1 draws are uniform over {1}: fully deterministic.
        graph = make_graph("path", n=3, seed=0)
        engine, _ = self._wrap(graph, "delay(max=1)")
        engine.send(0, 1, "ping")
        assert engine.deliver_round() == {}  # held back
        assert engine.pending_count() == 1
        assert engine.telemetry["delayed"] == 1
        inboxes = engine.deliver_round()
        assert [m.kind for m in inboxes[1]] == ["ping"]
        assert engine.telemetry["delivered"] == 1

    def test_links_stay_fifo_under_delay(self):
        # Independent 1..3-round draws would reorder same-edge traffic
        # without the per-edge FIFO front (the pipelined primitives
        # assume FIFO CONGEST links); the clamp must keep each link's
        # arrival order equal to its send order.
        graph = make_graph("path", n=3, seed=0)
        engine, _ = self._wrap(graph, "delay(max=3)")
        arrivals = []
        for index in range(8):
            engine.send(0, 1, f"m{index}")
            for inbox in engine.deliver_round().values():
                arrivals.extend(message.kind for message in inbox)
        while engine.pending_count():
            for inbox in engine.deliver_round().values():
                arrivals.extend(message.kind for message in inbox)
        assert arrivals == [f"m{index}" for index in range(8)]

    def test_crash_window_omits_traffic_at_both_endpoints(self):
        graph = make_graph("cycle", n=3, seed=0)
        engine, _ = self._wrap(graph, "crash(v=1,at=1,down=2)")
        # Sent in round 0 (before the crash): the send already left the
        # sender, but arrival in round 1 hits the down receiver.
        engine.send(0, 1, "to-crashed")
        engine.send(0, 2, "healthy")
        inboxes = engine.deliver_round()  # round 1: vertex 1 goes down
        assert set(inboxes) == {2}
        assert engine.telemetry["crash_omissions"] == 1
        # A send issued while the sender is down is omitted on delivery.
        engine.send(1, 0, "from-crashed")
        assert engine.deliver_round() == {}  # round 2: still down
        assert engine.telemetry["crash_omissions"] == 2
        engine.deliver_round()  # round 3: the window [1, 3) has ended
        engine.send(0, 1, "after-restart")
        inboxes = engine.deliver_round()
        assert [m.kind for m in inboxes[1]] == ["after-restart"]

    def test_adversary_drop_kind_targets_matching_traffic(self):
        graph = make_graph("path", n=3, seed=0)
        engine, _ = self._wrap(graph, "adversary(drop=upcast)")
        engine.send(0, 1, "upcast-key")
        engine.send(1, 2, "broadcast")
        inboxes = engine.deliver_round()
        assert set(inboxes) == {2}
        assert engine.telemetry["adversary_dropped"] == 1

    def test_retransmits_charge_messages_and_latency(self):
        graph = make_graph("random_connected", n=24, seed=3)
        clean = run_single(graph, algorithm="elkin", engine="fast", seed=0)
        lossy = run_single(
            graph, algorithm="elkin", engine="fast", seed=0, condition="lossy"
        )
        telemetry = lossy.details["condition"]
        assert telemetry["retransmits"] > 0
        assert telemetry["dropped"] == 0  # retransmit=8 makes loss transient
        # Honest accounting: every link-layer retry is a charged message.
        assert lossy.cost.messages == clean.cost.messages + telemetry["retransmits"]
        assert lossy.cost.rounds > clean.cost.rounds
        assert lossy.total_weight == clean.total_weight

    def test_round_cap_raises_typed_non_termination(self):
        graph = make_graph("path", n=3, seed=0)
        engine, _ = self._wrap(graph, "seed=0+cap=3")
        engine.deliver_round()
        engine.deliver_round()
        engine.deliver_round()
        with pytest.raises(NonTerminationError) as excinfo:
            engine.deliver_round()
        assert excinfo.value.round_cap == 3
        assert excinfo.value.rounds == 3
        # idle_rounds counts against the same cap.
        engine, _ = self._wrap(graph, "seed=0+cap=3")
        with pytest.raises(NonTerminationError):
            engine.idle_rounds(10)

    def test_idle_with_held_messages_is_rejected(self):
        graph = make_graph("path", n=3, seed=0)
        engine, _ = self._wrap(graph, "delay(max=1)")
        engine.send(0, 1, "ping")
        engine.deliver_round()
        with pytest.raises(SimulationError, match="deferred"):
            engine.idle_rounds(1)


#: Eventual-delivery presets: every algorithm terminates and stays
#: oracle-correct under them.
EVENTUAL_DELIVERY = ("lossy", "delayed", "jittery", "heavy-delay")


class TestConditionedRuns:
    def test_cross_engine_byte_identity(self):
        graph = make_graph("random_connected", n=24, seed=3)
        for condition in EVENTUAL_DELIVERY:
            outcomes = []
            for engine in ALL_ENGINES:
                result = run_single(
                    graph, algorithm="elkin", engine=engine, seed=0, condition=condition
                )
                outcomes.append(
                    (
                        result.cost.rounds,
                        result.cost.messages,
                        result.cost.words,
                        result.total_weight,
                        sorted(result.edges),
                        result.details["condition"],
                    )
                )
            assert len(set(map(repr, outcomes))) == 1, condition

    def test_run_seed_feeds_the_fault_hash(self):
        graph = make_graph("random_connected", n=24, seed=3)
        first = run_single(graph, algorithm="elkin", seed=0, condition="lossy")
        second = run_single(graph, algorithm="elkin", seed=1, condition="lossy")
        assert (
            first.details["condition"]["retransmits"]
            != second.details["condition"]["retransmits"]
        )
        # Both still find the unique MST.
        assert first.total_weight == second.total_weight

    def test_condition_telemetry_is_recorded_only_when_active(self):
        graph = make_graph("random_connected", n=20, seed=1)
        clean = run_single(graph, algorithm="elkin", seed=0)
        assert "condition" not in clean.details
        conditioned = run_single(graph, algorithm="elkin", seed=0, condition="delayed")
        telemetry = conditioned.details["condition"]
        assert telemetry["condition"] == "delayed"
        assert telemetry["delayed"] > 0
        assert telemetry["engines_wrapped"] >= 1

    def test_sequential_references_ignore_conditions(self):
        # No engine is ever built, so there is no network to degrade:
        # the oracle stays exact under any condition.
        graph = make_graph("random_connected", n=20, seed=1)
        result = run_algorithm(graph, "kruskal", RunConfig(condition="lossy"))
        assert result.cost.rounds == 0
        assert "condition" not in result.details

    def test_crash_stop_raises_non_termination(self):
        graph = make_graph("random_connected", n=24, seed=3)
        for algorithm in ("elkin", "ghs"):
            with pytest.raises(NonTerminationError) as excinfo:
                run_single(graph, algorithm=algorithm, seed=0, condition="crash-stop")
            error = excinfo.value
            assert error.rounds is not None and error.rounds >= 0
            assert error.condition_telemetry["condition"] == "crash-stop"

    def test_explicit_round_cap_is_recorded_on_the_error(self):
        graph = make_graph("random_connected", n=20, seed=1)
        with pytest.raises(NonTerminationError) as excinfo:
            run_single(
                graph,
                algorithm="ghs",
                seed=0,
                condition="crash(v=0,at=3)+cap=120+stretch=1",
            )
        assert excinfo.value.round_cap == 120
        assert excinfo.value.rounds >= 120

    def test_degradation_bounds_relax_with_the_condition(self):
        graph = make_graph("random_connected", n=24, seed=3)
        condition = parse_condition("delay(max=10)")
        result = run_single(
            graph, algorithm="elkin", seed=0, condition=condition
        )
        # The degraded run exceeds the stock Theorem 3.1 round bound (the
        # theorem assumes a reliable synchronous network); the audit in
        # degradation mode relaxes the bound by condition.time_stretch()
        # and accepts it.
        assert_elkin_bounds(result, condition=condition)
        with pytest.raises(VerificationError):
            assert_elkin_bounds(result)


class TestConditionedCampaigns:
    def _campaign(self):
        return Campaign.from_grid(
            "cond-exec",
            [graph_spec_for("random_connected", 20)],
            algorithms=("elkin",),
            engines=("fast",),
            seeds=(0,),
            conditions=(None, "lossy", "crash-stop"),
        )

    def test_rows_carry_condition_and_status_columns(self, tmp_path):
        campaign = self._campaign()
        report = execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl"))
        by_condition = {row.get("condition"): row for row in report.rows}
        assert set(by_condition) == {None, "lossy", "crash-stop"}

        clean = by_condition[None]
        assert "status" not in clean and "dropped" not in clean

        lossy = by_condition["lossy"]
        assert lossy["status"] == "ok"
        assert lossy["condition_key"] == CONDITION_PRESETS["lossy"].key()
        assert lossy["retransmits"] > 0 and lossy["dropped"] == 0
        assert lossy["weight"] == clean["weight"]

        crashed = by_condition["crash-stop"]
        assert crashed["status"] == "non-terminated"
        assert crashed["round_cap"] is None or crashed["round_cap"] >= 1
        assert crashed["crash_omissions"] > 0

    def test_non_terminated_cells_round_trip_through_the_store(self, tmp_path):
        campaign = self._campaign()
        store = RunStore(tmp_path / "s.jsonl")
        execute_campaign(campaign, store=store)
        crash_spec = next(
            spec for spec in campaign.specs if spec.condition is not None
            and spec.condition.crash is not None
        )
        result = store.get_result(crash_spec.run_key())
        assert result.details["non_terminated"] is True
        assert result.edges == set()
        # Resume treats the recorded non-termination as a finished cell.
        resumed = execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl"))
        assert resumed.executed == 0 and resumed.reused == 3

    def test_non_termination_without_condition_still_propagates(self):
        # The typed-outcome conversion is scoped to conditioned cells: a
        # clean cell raising NonTerminationError is a genuine failure
        # and must abort the campaign instead of becoming a row.
        from repro.algorithms import AlgorithmInfo, _REGISTRY, register_algorithm

        def stuck(graph, config=None):
            raise NonTerminationError("stuck", round_cap=10)

        register_algorithm(
            AlgorithmInfo(name="stuck", runner=stuck, family="distributed-baseline")
        )
        try:
            campaign = Campaign.from_grid(
                "clean-nonterm",
                [graph_spec_for("random_connected", 16)],
                algorithms=("stuck",),
                seeds=(0,),
            )
            with pytest.raises(NonTerminationError):
                execute_campaign(campaign)
        finally:
            _REGISTRY.pop("stuck", None)

    def test_two_identical_faulty_sweeps_are_byte_identical(self, tmp_path):
        campaign = self._campaign()
        first = execute_campaign(campaign, store=RunStore(tmp_path / "a.jsonl"))
        second = execute_campaign(campaign, store=RunStore(tmp_path / "b.jsonl"))
        assert first.rows == second.rows


class TestDegradationReport:
    def _rows(self, tmp_path):
        campaign = Campaign.from_grid(
            "degradation",
            [graph_spec_for("random_connected", 20)],
            algorithms=("elkin",),
            engines=("fast",),
            seeds=(0,),
            conditions=(None, "delayed", "crash-stop"),
        )
        return execute_campaign(campaign, store=RunStore(tmp_path / "s.jsonl")).rows

    def test_conditioned_rows_are_excluded_from_fits_and_audit(self, tmp_path):
        analysis = analyze_rows(self._rows(tmp_path))
        assert analysis.conditioned == 2
        assert analysis.bound_violations == 0
        assert "conditioned rows excluded" in render_markdown(analysis)

    def test_degradation_table_pairs_rows_with_clean_baselines(self, tmp_path):
        analysis = analyze_rows(self._rows(tmp_path))
        by_condition = {entry["condition"]: entry for entry in analysis.degradation}
        delayed = by_condition["delayed"]
        assert delayed["status"] == "ok"
        assert float(delayed["round_factor"]) > 1.0
        crashed = by_condition["crash-stop"]
        assert crashed["status"] == "non-terminated"
        assert crashed["round_factor"] == "-"

    def test_markdown_report_renders_the_degradation_section(self, tmp_path):
        document = render_markdown(analyze_rows(self._rows(tmp_path)))
        assert "## Degradation under network conditions" in document
        assert "bound-violation count: **0**" in document
