"""Golden regression fixtures: canonical run rows pinned against drift.

``golden_rows.jsonl`` holds one row per (algorithm x engine) on three
deterministic workload-zoo instances.  The test recomputes every cell
and fails on *any* drift in the run contract -- instance description
(n, m, D), chosen parameter k, measured rounds and messages, and the
MST weight.  This is the backstop behind every refactor of the
simulator, the kernels and the batched executor: optimizations must
never move a reported number.

Regenerate (only when a drift is intended and understood)::

    PYTHONPATH=src python tests/test_golden_regression.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.algorithms import available_algorithms
from repro.campaign import Campaign, execute_campaign
from repro.campaign.spec import RunSpec
from repro.graphs.generators import GraphSpec

GOLDEN_PATH = Path(__file__).parent / "golden_rows.jsonl"

#: Three deterministic zoo instances spanning the regimes: a planted
#: intermediate-diameter graph, a low-diameter bounded-degree skeleton,
#: and a weight-stress instance.
GOLDEN_GRAPHS = [
    GraphSpec("planted_fragments", {"n": 16, "seed": 3}),
    GraphSpec("hypercube", {"dim": 4, "seed": 5}),
    GraphSpec("duplicate_weight_stress", {"n": 16, "seed": 7}),
]

#: The pinned run contract: identity columns plus every measured number
#: that must never drift.  Presentation-only columns (bound ratios) are
#: deliberately excluded -- recalibrating a bound constant is not a run
#: drift.
PINNED_COLUMNS = (
    "graph",
    "n",
    "m",
    "D",
    "algorithm",
    "bandwidth",
    "engine",
    "seed",
    "k",
    "rounds",
    "messages",
    "weight",
)


def _golden_campaign() -> Campaign:
    specs = [
        RunSpec(graph=graph, algorithm=algorithm, engine=engine)
        for graph in GOLDEN_GRAPHS
        for algorithm in available_algorithms()
        for engine in ("reference", "fast")
    ]
    return Campaign(name="golden", specs=specs)


def _pin(row: dict) -> dict:
    return {column: row.get(column) for column in PINNED_COLUMNS}


def _compute_rows() -> list:
    report = execute_campaign(_golden_campaign())
    return [_pin(row) for row in report.rows]


def _load_golden() -> list:
    with GOLDEN_PATH.open("r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestGoldenRegression:
    def test_fixture_exists_and_covers_the_matrix(self):
        golden = _load_golden()
        campaign = _golden_campaign()
        assert len(golden) == len(campaign)
        assert len(golden) == len(GOLDEN_GRAPHS) * len(available_algorithms()) * 2

    def test_no_drift_in_weight_rounds_messages(self):
        golden = _load_golden()
        current = _compute_rows()
        assert len(golden) == len(current), (
            "golden fixture is stale: the algorithm/engine matrix changed; "
            "regenerate with: python tests/test_golden_regression.py --regenerate"
        )
        for expected, actual in zip(golden, current):
            # Normalize through JSON so int/float round-trips compare equal.
            expected = json.loads(json.dumps(expected))
            actual = json.loads(json.dumps(actual))
            assert actual == expected, (
                f"golden drift on {expected['graph']} / {expected['algorithm']} "
                f"/ {expected['engine']}: expected {expected}, got {actual}"
            )

    def test_engines_agree_within_the_fixture(self):
        golden = _load_golden()
        by_key = {}
        for row in golden:
            key = (row["graph"], row["algorithm"], row["seed"])
            by_key.setdefault(key, []).append(row)
        for key, rows in by_key.items():
            assert len(rows) == 2, key
            a, b = rows
            assert (a["rounds"], a["messages"], a["weight"]) == (
                b["rounds"],
                b["messages"],
                b["weight"],
            ), f"engines disagree on {key}"


try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


@pytest.mark.skipif(not HAVE_NUMPY, reason="the array engine needs numpy")
class TestGoldenRegressionArrayEngine:
    """The numpy kernel against the same pinned rows.

    The fixture itself stays at (reference, fast) so it also loads on a
    numpy-less interpreter; here every golden cell is recomputed under
    ``engine="array"`` and must match the pinned reference-engine row
    byte for byte (modulo the engine column itself).
    """

    def test_array_rows_match_the_pinned_reference_rows(self):
        golden = [row for row in _load_golden() if row["engine"] == "reference"]
        specs = [
            RunSpec(graph=graph, algorithm=algorithm, engine="array")
            for graph in GOLDEN_GRAPHS
            for algorithm in available_algorithms()
        ]
        report = execute_campaign(Campaign(name="golden-array", specs=specs))
        current = [_pin(row) for row in report.rows]
        assert len(golden) == len(current)
        for expected, actual in zip(golden, current):
            expected = json.loads(json.dumps(dict(expected, engine="array")))
            actual = json.loads(json.dumps(actual))
            assert actual == expected, (
                f"array-engine drift on {expected['graph']} / "
                f"{expected['algorithm']}: expected {expected}, got {actual}"
            )


def _regenerate() -> None:
    rows = _compute_rows()
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=False) + "\n")
    print(f"wrote {len(rows)} golden rows to {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
