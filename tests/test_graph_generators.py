"""Tests for the graph generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    barbell_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    edge_list_graph,
    GraphSpec,
    grid_graph,
    hop_diameter,
    lollipop_graph,
    make_graph,
    path_graph,
    preferential_attachment_graph,
    random_connected_graph,
    random_geometric_connected_graph,
    random_regular_connected_graph,
    random_tree,
    star_graph,
    torus_graph,
    weights_are_unique,
    wheel_graph,
)


ALL_GENERATOR_CALLS = [
    lambda: path_graph(17, seed=1),
    lambda: cycle_graph(18, seed=1),
    lambda: star_graph(15, seed=1),
    lambda: complete_graph(9, seed=1),
    lambda: grid_graph(4, 5, seed=1),
    lambda: torus_graph(4, 4, seed=1),
    lambda: random_tree(20, seed=1),
    lambda: random_connected_graph(25, seed=1),
    lambda: random_regular_connected_graph(16, degree=4, seed=1),
    lambda: random_geometric_connected_graph(25, seed=1),
    lambda: lollipop_graph(6, 10, seed=1),
    lambda: barbell_graph(5, 6, seed=1),
    lambda: preferential_attachment_graph(24, seed=1),
    lambda: caterpillar_graph(21, seed=1),
    lambda: wheel_graph(14, seed=1),
]


@pytest.mark.parametrize("build", ALL_GENERATOR_CALLS)
def test_every_family_is_connected_with_unique_weights(build):
    graph = build()
    assert nx.is_connected(graph)
    assert weights_are_unique(graph)
    assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))


class TestHubPathGraph:
    def test_low_diameter_but_path_like_mst(self):
        from repro.graphs import hub_path_graph
        from repro.baselines import kruskal_mst

        graph = hub_path_graph(30)
        assert nx.is_connected(graph)
        assert weights_are_unique(graph)
        assert hop_diameter(graph) == 2
        mst = kruskal_mst(graph)
        tree = nx.Graph(list(mst))
        # The MST contains the full path, so its diameter is Theta(n).
        assert nx.diameter(tree) >= graph.number_of_nodes() - 3

    def test_rejects_tiny_n(self):
        from repro.graphs import hub_path_graph

        with pytest.raises(GraphError):
            hub_path_graph(2)


class TestSpecificShapes:
    def test_path_sizes_and_diameter(self):
        graph = path_graph(12, seed=0)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 11
        assert hop_diameter(graph) == 11

    def test_cycle_diameter(self):
        assert hop_diameter(cycle_graph(10, seed=0)) == 5

    def test_star_diameter(self):
        assert hop_diameter(star_graph(20, seed=0)) == 2

    def test_complete_graph_diameter_and_edges(self):
        graph = complete_graph(8, seed=0)
        assert graph.number_of_edges() == 28
        assert hop_diameter(graph) == 1

    def test_grid_diameter(self):
        assert hop_diameter(grid_graph(3, 7, seed=0)) == 8

    def test_random_tree_is_a_tree(self):
        graph = random_tree(30, seed=2)
        assert graph.number_of_edges() == 29

    def test_lollipop_has_long_tail(self):
        graph = lollipop_graph(5, 20, seed=0)
        assert hop_diameter(graph) >= 20

    def test_random_connected_extra_edges(self):
        graph = random_connected_graph(30, extra_edges=10, seed=4)
        assert graph.number_of_edges() == 29 + 10

    def test_random_connected_edge_probability_one_is_complete(self):
        graph = random_connected_graph(10, edge_probability=1.0, seed=4)
        assert graph.number_of_edges() == 45

    def test_deterministic_weights_option(self):
        graph = path_graph(6, random_weights=False)
        weights = sorted(data["weight"] for _, _, data in graph.edges(data=True))
        assert weights == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_seed_same_graph(self):
        first = random_connected_graph(30, seed=42)
        second = random_connected_graph(30, seed=42)
        assert set(first.edges()) == set(second.edges())


class TestValidationErrors:
    def test_path_requires_positive_n(self):
        with pytest.raises(GraphError):
            path_graph(0)

    def test_cycle_requires_three_vertices(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid_rejects_zero_dimension(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)

    def test_regular_graph_rejects_odd_product(self):
        with pytest.raises(GraphError):
            random_regular_connected_graph(7, degree=3)

    def test_regular_graph_rejects_degree_too_large(self):
        with pytest.raises(GraphError):
            random_regular_connected_graph(5, degree=5)

    def test_lollipop_rejects_tiny_clique(self):
        with pytest.raises(GraphError):
            lollipop_graph(1, 5)

    def test_edge_probability_out_of_range(self):
        with pytest.raises(GraphError):
            random_connected_graph(10, edge_probability=1.5)


class TestNewFamilies:
    def test_preferential_attachment_edge_count(self):
        graph = preferential_attachment_graph(30, attachments=2, seed=5)
        # BA with m = 2: (n - m) arrivals each add m edges.
        assert graph.number_of_edges() == (30 - 2) * 2
        assert hop_diameter(graph) <= 8

    def test_preferential_attachment_rejects_bad_attachments(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(10, attachments=0)
        with pytest.raises(GraphError):
            preferential_attachment_graph(10, attachments=10)

    def test_caterpillar_is_a_tree_with_spine_diameter(self):
        graph = caterpillar_graph(20, spine=10, seed=2)
        assert graph.number_of_nodes() == 20
        assert graph.number_of_edges() == 19  # a tree
        # Legs hang off the spine: diameter ~ spine (+ leg hops).
        assert 9 <= hop_diameter(graph) <= 12

    def test_caterpillar_default_spine(self):
        graph = caterpillar_graph(15, seed=2)
        assert graph.number_of_nodes() == 15

    def test_caterpillar_rejects_bad_spine(self):
        with pytest.raises(GraphError):
            caterpillar_graph(10, spine=11)

    def test_wheel_shape(self):
        graph = wheel_graph(12, seed=3)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 2 * 11
        assert hop_diameter(graph) == 2

    def test_wheel_rejects_tiny(self):
        with pytest.raises(GraphError):
            wheel_graph(3)

    def test_edge_list_builds_verbatim_weights(self):
        graph = edge_list_graph([(0, 1, 2.5), (1, 2, 1.5), (0, 2, 9.0)])
        assert graph.number_of_nodes() == 3
        assert graph[0][1]["weight"] == 2.5

    def test_edge_list_rejects_disconnected(self):
        with pytest.raises(GraphError):
            edge_list_graph([(0, 1, 1.0)], nodes=[0, 1, 2, 3])

    def test_edge_list_keeps_node_labels_verbatim(self):
        graph = edge_list_graph([(1, 2, 1.0), (2, 3, 2.0)])
        assert sorted(graph.nodes()) == [1, 2, 3]

    def test_new_families_registered(self):
        for family in ("preferential_attachment", "caterpillar", "wheel", "edge_list"):
            assert family in __import__("repro.graphs.generators", fromlist=["FAMILIES"]).FAMILIES


class TestGraphSpec:
    def test_make_graph_dispatch(self):
        graph = make_graph("path", n=9, seed=0)
        assert graph.number_of_nodes() == 9

    def test_make_graph_unknown_family(self):
        with pytest.raises(GraphError, match="unknown graph family"):
            make_graph("dodecahedron", n=8)

    def test_spec_build_and_label(self):
        spec = GraphSpec(family="grid", params={"rows": 3, "cols": 4, "seed": 1})
        graph = spec.build()
        assert graph.number_of_nodes() == 12
        assert "grid" in spec.label() and "rows=3" in spec.label()
