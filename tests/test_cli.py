"""Tests for the command-line front-end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.algorithm == "elkin"
        assert args.family == "random_connected"
        assert args.bandwidth == 1

    def test_compare_accepts_algorithm_list(self):
        args = build_parser().parse_args(["compare", "--algorithms", "elkin", "gkp"])
        assert args.algorithms == ["elkin", "gkp"]

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "dijkstra"])


class TestMain:
    def test_run_command_prints_verified_result(self, capsys):
        exit_code = main(["run", "--family", "random_connected", "--n", "30", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "graph:" in captured
        assert "elkin" in captured
        assert "verified" in captured

    def test_run_on_grid_family(self, capsys):
        exit_code = main(["run", "--family", "grid", "--rows", "4", "--cols", "4"])
        assert exit_code == 0
        assert "n=16" in capsys.readouterr().out

    def test_compare_command_lists_all_algorithms(self, capsys):
        exit_code = main(
            ["compare", "--family", "random_connected", "--n", "25", "--seed", "1",
             "--algorithms", "elkin", "ghs"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ghs" in captured and "elkin" in captured

    def test_sweep_bandwidth_command(self, capsys):
        exit_code = main(
            ["sweep-bandwidth", "--family", "random_connected", "--n", "25", "--seed", "1",
             "--bandwidths", "1", "4"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert captured.count("\n") >= 4

    def test_lollipop_family_arguments(self, capsys):
        exit_code = main(
            ["run", "--family", "lollipop", "--clique-size", "5", "--path-length", "8",
             "--algorithm", "gkp"]
        )
        assert exit_code == 0
        assert "gkp" in capsys.readouterr().out

    def test_verbose_flag(self, capsys):
        exit_code = main(["--verbose", "run", "--family", "star", "--n", "12"])
        assert exit_code == 0


class TestSweepCommand:
    def test_sweep_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.jobs == 1
        assert args.preset is None
        assert args.resume is False

    def test_sweep_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--preset", "e99"])

    def test_sweep_durability_choices(self):
        assert build_parser().parse_args(["sweep"]).durability == "batch"
        args = build_parser().parse_args(["sweep", "--durability", "record"])
        assert args.durability == "record"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--durability", "paranoid"])

    def test_sweep_durability_reaches_the_store(self, capsys, tmp_path):
        store = str(tmp_path / "runs.jsonl")
        argv = ["sweep", "--families", "random_connected", "--sizes", "16",
                "--seeds", "0", "--output", store, "--durability", "record"]
        assert main(argv) == 0
        assert (tmp_path / "runs.jsonl").read_text().count('"kind"') >= 2

    def test_sweep_grid_smoke(self, capsys):
        exit_code = main(
            ["sweep", "--families", "random_connected", "--sizes", "20",
             "--algorithms", "elkin", "ghs", "--seeds", "0"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "elkin" in captured and "ghs" in captured
        assert "2 cells (2 executed, 0 reused)" in captured

    def test_sweep_with_store_and_resume(self, capsys, tmp_path):
        store = str(tmp_path / "runs.jsonl")
        argv = ["sweep", "--families", "random_connected", "--sizes", "20",
                "--seeds", "0", "1", "--output", store]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 reused" in first

        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 reused" in second

    def test_sweep_parallel_preset(self, capsys):
        exit_code = main(["sweep", "--preset", "smoke", "--jobs", "2", "--no-verify"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "16 cells (16 executed, 0 reused)" in captured

    def test_sweep_accepts_sequential_baseline(self, capsys):
        """A sequential reference is sweepable and reports zero costs."""
        exit_code = main(
            ["sweep", "--families", "random_connected", "--sizes", "20",
             "--algorithms", "elkin", "kruskal", "--seeds", "0"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        kruskal_rows = [line for line in captured.splitlines() if "kruskal" in line]
        assert len(kruskal_rows) == 1
        columns = kruskal_rows[0].split()
        # rounds and messages columns are both 0 for a local computation.
        assert columns.count("0") >= 2

    def test_run_accepts_sequential_baseline(self, capsys):
        exit_code = main(
            ["run", "--family", "random_connected", "--n", "20", "--seed", "0",
             "--algorithm", "boruvka_seq"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "boruvka_seq" in captured
        assert "verified" in captured


class TestEnginesCommand:
    def test_lists_registered_engines_and_the_default(self, capsys):
        exit_code = main(["engines"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "reference" in captured and "fast" in captured
        assert "available" in captured
        assert "default engine: reference" in captured

    def test_lists_unavailable_engines_with_the_reason(self, capsys):
        from repro.simulator.engine import (
            register_engine,
            register_unavailable_engine,
            registered_factory,
        )

        factory = registered_factory("fast")
        register_unavailable_engine("fast", "simulated outage for the test")
        try:
            assert main(["engines"]) == 0
            captured = capsys.readouterr().out
            assert "unavailable" in captured
            assert "simulated outage" in captured
        finally:
            register_engine("fast", factory)


class TestConditionOption:
    def test_run_and_sweep_parsers_accept_condition(self):
        assert build_parser().parse_args(["run"]).condition is None
        args = build_parser().parse_args(["run", "--condition", "lossy"])
        assert args.condition == "lossy"
        args = build_parser().parse_args(["sweep", "--condition", "delay(max=2)"])
        assert args.condition == "delay(max=2)"

    def test_run_under_a_condition_prints_fault_telemetry(self, capsys):
        exit_code = main(
            ["run", "--family", "random_connected", "--n", "20", "--seed", "3",
             "--engine", "fast", "--condition", "lossy"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "verified" in captured
        assert "condition lossy:" in captured
        assert "retransmits" in captured

    def test_sweep_under_a_condition_adds_the_status_columns(self, capsys):
        exit_code = main(
            ["sweep", "--families", "random_connected", "--sizes", "20",
             "--seeds", "0", "--engine", "fast", "--condition", "lossy"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "condition" in captured and "lossy" in captured
        assert "ok" in captured

    def test_malformed_condition_is_a_configuration_error(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="malformed"):
            main(["run", "--family", "random_connected", "--n", "20",
                  "--condition", "delay(3)"])
