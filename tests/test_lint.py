"""Tests of the :mod:`repro.lint` static analyzer.

The fixture tree under ``tests/lint_fixtures`` mimics the real package
layout (``.../repro/core/...``) so the default path scoping applies:
``bad/`` files carry exactly one seeded violation per marked line,
``good/`` files are their compliant twins, and ``suppressed/``
exercises the suppression machinery end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.lint import (
    all_rules,
    collect_files,
    known_rule_ids,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.rules_contracts import ENGINE_ABSTRACT_METHODS
from repro.simulator.engine import Engine

FIXTURES = Path(__file__).parent / "lint_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"
SUPPRESSED = FIXTURES / "suppressed"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"

ALL_RULE_IDS = {
    "LOC101",
    "LOC102",
    "LOC103",
    "LOC104",
    "DET201",
    "DET202",
    "DET203",
    "DET204",
    "DET205",
    "CON301",
    "CON302",
    "CON303",
    "CON304",
}


def rule_ids(result) -> list:
    return [finding.rule_id for finding in result.unsuppressed]


# ---------------------------------------------------------------------- #
# registry and contract pinning
# ---------------------------------------------------------------------- #


def test_rule_catalog_is_complete():
    assert {rule.id for rule in all_rules()} == ALL_RULE_IDS
    assert set(known_rule_ids()) == ALL_RULE_IDS | {"SUP001", "SUP002", "SUP003"}


def test_engine_abstract_surface_matches_live_abc():
    """The frozen copy in rules_contracts must track the real Engine ABC."""
    assert ENGINE_ABSTRACT_METHODS == frozenset(Engine.__abstractmethods__)


def test_every_rule_fires_on_its_seeded_fixture():
    """Each rule id appears in the bad tree at its ``# seeded`` marker."""
    result = lint_paths([BAD])
    fired = set(rule_ids(result))
    assert fired == ALL_RULE_IDS
    # Every finding points at a line whose source carries the marker
    # naming that exact rule.
    for finding in result.unsuppressed:
        source_line = Path(finding.file).read_text().splitlines()[finding.line - 1]
        if "# seeded" in source_line:
            assert finding.rule_id in source_line, (finding, source_line)


def test_seeded_markers_and_findings_agree_line_by_line():
    """Marked lines and findings are the same set, per file and rule."""
    result = lint_paths([BAD])
    reported = {
        (Path(finding.file).name, finding.line, finding.rule_id)
        for finding in result.unsuppressed
    }
    expected = set()
    for fixture in BAD.rglob("*.py"):
        for lineno, line in enumerate(fixture.read_text().splitlines(), start=1):
            if "# seeded" in line:
                seeded_rule = line.rsplit("# seeded", 1)[1].strip()
                expected.add((fixture.name, lineno, seeded_rule))
    # CON301 anchors on the class statement, which carries the marker
    # as a trailing comment -- included in expected like every other.
    assert reported == expected


def test_compliant_twins_are_silent():
    result = lint_paths([GOOD])
    assert result.ok
    assert result.findings == []
    assert result.files_scanned == 3


def test_locality_rules_only_apply_to_protocol_paths(tmp_path):
    """The same source outside ``repro/core`` must not trip LOC rules."""
    source = (BAD / "repro" / "core" / "loc_violations.py").read_text()
    plain = tmp_path / "plain_module.py"
    plain.write_text(source)
    result = lint_paths([plain])
    assert not any(finding.rule_id.startswith("LOC") for finding in result.findings)


# ---------------------------------------------------------------------- #
# suppressions
# ---------------------------------------------------------------------- #


def test_suppression_round_trip():
    result = lint_paths([SUPPRESSED])
    assert [finding.rule_id for finding in result.suppressed] == ["DET201", "DET201"]
    assert rule_ids(result) == ["SUP001", "SUP002", "SUP003"]
    justified = result.suppressed[0]
    assert justified.suppression_reason == "fixture: reviewed ambient draw"


def test_stale_suppression_diagnostic_skipped_under_select():
    result = lint_paths([SUPPRESSED], select=["DET201"])
    assert "SUP003" not in rule_ids(result)
    assert "SUP001" in rule_ids(result)  # hygiene still checked


def test_standalone_suppression_targets_next_code_line(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "import random\n"
        "\n"
        "\n"
        "def draw():\n"
        "    # repro: allow[DET201] reviewed: fixture draw\n"
        "    return random.random()\n"
    )
    result = lint_paths([module])
    assert result.ok
    assert [finding.rule_id for finding in result.suppressed] == ["DET201"]


def test_docstring_mentions_of_the_syntax_are_not_suppressions(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        '"""Write # repro: allow[DET201] reason to silence a finding."""\n'
        "import random\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return random.random()\n"
    )
    result = lint_paths([module])
    assert rule_ids(result) == ["DET201"]
    assert result.suppressed == []


# ---------------------------------------------------------------------- #
# driver: selection, collection, parse errors
# ---------------------------------------------------------------------- #


def test_select_restricts_to_named_rules():
    result = lint_paths([BAD], select=["DET201"])
    assert rule_ids(result) == ["DET201"]


def test_ignore_drops_named_rules():
    result = lint_paths([BAD], ignore=["DET203"])
    assert "DET203" not in rule_ids(result)
    assert "DET201" in rule_ids(result)


def test_unknown_rule_ids_are_rejected():
    with pytest.raises(ConfigurationError):
        lint_paths([BAD], select=["DET999"])
    with pytest.raises(ConfigurationError):
        lint_paths([BAD], ignore=["BOGUS"])


def test_missing_path_is_rejected():
    with pytest.raises(ConfigurationError):
        lint_paths([FIXTURES / "does_not_exist"])


def test_collect_files_is_sorted_and_deduplicated():
    files = collect_files([BAD, BAD])
    assert files == sorted(set(files), key=lambda p: p.resolve().as_posix())
    assert all(path.suffix == ".py" for path in files)


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    result = lint_paths([broken])
    assert rule_ids(result) == ["LNT000"]
    assert not result.ok


# ---------------------------------------------------------------------- #
# reporters
# ---------------------------------------------------------------------- #


def test_text_report_pins_file_line_col_and_rule():
    result = lint_paths([BAD / "repro" / "common" / "det_violations.py"])
    text = render_text(result)
    assert "det_violations.py:13:12: DET201 [unseeded-random-call]" in text
    assert text.endswith("in 1 file(s)\n")


def test_json_report_round_trips_and_is_stable():
    result = lint_paths([BAD])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["summary"]["unsuppressed"] == len(result.unsuppressed)
    keys = [(f["file"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)
    # Byte-identical across runs: the CI artifact is diff-stable.
    assert render_json(result) == render_json(lint_paths([BAD]))


def test_json_report_carries_suppression_reasons():
    payload = json.loads(render_json(lint_paths([SUPPRESSED])))
    suppressed = [f for f in payload["findings"] if f["suppressed"]]
    assert suppressed and all("reason" in f for f in suppressed)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #


def test_cli_lint_exit_codes(capsys):
    assert main(["lint", str(GOOD)]) == 0
    assert main(["lint", str(BAD)]) == 1
    capsys.readouterr()


def test_cli_lint_json_output(tmp_path, capsys):
    artifact = tmp_path / "report.json"
    code = main(["lint", str(BAD), "--format", "json", "--output", str(artifact)])
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(artifact.read_text())
    assert payload == json.loads(captured.out)
    assert payload["summary"]["unsuppressed"] > 0


def test_cli_lint_select_and_list_rules(capsys):
    assert main(["lint", str(BAD), "--select", "CON301"]) == 1
    out = capsys.readouterr().out
    assert "CON301" in out and "DET201" not in out
    assert main(["lint", "--list-rules"]) == 0
    catalog = capsys.readouterr().out
    for rule_id in sorted(ALL_RULE_IDS | {"SUP001", "SUP002", "SUP003"}):
        assert rule_id in catalog


# ---------------------------------------------------------------------- #
# the dogfood gate
# ---------------------------------------------------------------------- #


def test_source_tree_is_clean():
    """The real tree has zero unsuppressed findings (the CI hard gate)."""
    result = lint_paths([REPO_SRC])
    assert result.ok, render_text(result)


def test_source_tree_suppressions_all_carry_reasons():
    result = lint_paths([REPO_SRC])
    for finding in result.suppressed:
        assert finding.suppression_reason, finding
