"""Tests for the workload zoo (:mod:`repro.workloads`).

Covers: registration of every zoo family through the generator
registry, the structural contract every generator honours (connected,
0-indexed, distinct positive weights, deterministic under a pinned
seed), the planted-MST ground truth, the shape rules that let new
families ride the CLI ``--sizes`` axis, and the ``zoo`` campaign preset
itself (>= 100 deterministic fast-engine cells spanning every family).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro import workloads
from repro.baselines import kruskal_mst
from repro.campaign import preset_campaign
from repro.campaign.spec import graph_spec_for
from repro.exceptions import GraphError
from repro.graphs.generators import (
    available_families,
    FAMILIES,
    make_graph,
    register_family,
    SHAPE_RULES,
)
from repro.graphs.weights import weights_are_unique
from repro.verify.planted_checks import planted_mst_edges

ZOO_FAMILIES = workloads.zoo_family_names()


class TestRegistration:
    def test_every_zoo_family_is_registered(self):
        assert set(ZOO_FAMILIES) <= set(FAMILIES)

    def test_available_families_covers_the_zoo_and_hides_edge_list(self):
        families = available_families()
        assert families == sorted(ZOO_FAMILIES)
        assert "edge_list" not in families
        assert "edge_list" in available_families(include_edge_list=True)

    def test_catalogue_covers_every_family(self):
        assert sorted(workloads.ZOO_INFO) == sorted(ZOO_FAMILIES)
        for info in workloads.ZOO_INFO.values():
            assert info.regime in (
                "low-diameter",
                "high-diameter",
                "intermediate",
                "weight-stress",
            )
            assert info.round_regime

    def test_register_family_validates_inputs(self):
        with pytest.raises(GraphError):
            register_family("", make_graph)
        with pytest.raises(GraphError):
            register_family("bad", "not-callable")  # type: ignore[arg-type]

    def test_register_family_installs_generator_and_shape(self):
        def couple(n, seed=None, random_weights=True):
            return make_graph("path", n=2, seed=seed, random_weights=random_weights)

        register_family("test_couple", couple, shape_from_n=lambda n: {"n": 2})
        try:
            assert make_graph("test_couple", n=2).number_of_nodes() == 2
            assert graph_spec_for("test_couple", 50).params == {"n": 2}
        finally:
            FAMILIES.pop("test_couple", None)
            SHAPE_RULES.pop("test_couple", None)


class TestGeneratorContract:
    @pytest.mark.parametrize("family", ZOO_FAMILIES)
    def test_coverage_instances_are_valid_inputs(self, family):
        graph = workloads.coverage_spec(family, seed=0).build()
        assert nx.is_connected(graph)
        assert sorted(graph.nodes()) == list(range(graph.number_of_nodes()))
        assert weights_are_unique(graph)
        assert all(data["weight"] > 0 for _, _, data in graph.edges(data=True))

    @pytest.mark.parametrize("family", ZOO_FAMILIES)
    def test_pinned_seed_is_deterministic(self, family):
        def edge_profile():
            graph = workloads.coverage_spec(family, seed=7).build()
            return sorted(
                (u, v, data["weight"]) for u, v, data in graph.edges(data=True)
            )

        assert edge_profile() == edge_profile()

    @pytest.mark.parametrize("family,params", workloads._STRESS_SPECS)
    def test_stress_instances_are_valid_inputs(self, family, params):
        graph = make_graph(family, **dict(params, seed=0))
        assert nx.is_connected(graph)
        assert weights_are_unique(graph)

    def test_shape_rules_cover_the_non_n_families(self):
        for family in ("torus_3d", "hypercube", "complete_bipartite", "balanced_tree"):
            spec = graph_spec_for(family, 27)
            graph = spec.build()
            assert graph.number_of_nodes() >= 4

    def test_generator_argument_validation(self):
        with pytest.raises(GraphError):
            workloads.torus_3d_graph(2, 3, 3)
        with pytest.raises(GraphError):
            workloads.hypercube_graph(0)
        with pytest.raises(GraphError):
            workloads.small_world_graph(3)
        with pytest.raises(GraphError):
            workloads.small_world_graph(20, rewire=1.5)
        with pytest.raises(GraphError):
            workloads.expander_graph(10, degree=2)
        with pytest.raises(GraphError):
            workloads.expander_graph(9, degree=3)  # odd n * degree
        with pytest.raises(GraphError):
            workloads.complete_bipartite_graph(0, 4)
        with pytest.raises(GraphError):
            workloads.balanced_tree_graph(branching=1)
        with pytest.raises(GraphError):
            workloads.planted_fragments_graph(2)
        with pytest.raises(GraphError):
            workloads.planted_fragments_graph(12, fragments=30)
        with pytest.raises(GraphError):
            workloads.adversarial_permutation_graph(3)
        with pytest.raises(GraphError):
            workloads.duplicate_weight_stress_graph(12, levels=0)

    def test_hypercube_shape(self):
        graph = workloads.hypercube_graph(4)
        assert graph.number_of_nodes() == 16
        assert all(degree == 4 for _, degree in graph.degree())
        assert nx.diameter(graph) == 4

    def test_expander_is_regular_and_low_diameter(self):
        graph = workloads.expander_graph(32, degree=6, seed=1)
        assert all(degree == 6 for _, degree in graph.degree())
        assert nx.diameter(graph) <= 4


class TestPlantedGroundTruth:
    @pytest.mark.parametrize("family", workloads.PLANTED_FAMILIES)
    @pytest.mark.parametrize("seed", (0, 1, 5))
    def test_planted_tree_is_the_unique_mst(self, family, seed):
        graph = workloads.coverage_spec(family, seed=seed).build()
        planted = planted_mst_edges(graph)
        assert planted is not None
        assert kruskal_mst(graph) == planted

    def test_planted_fragments_records_the_partition(self):
        graph = workloads.planted_fragments_graph(24, fragments=4, seed=0)
        clusters = graph.graph["planted_fragments"]
        assert len(clusters) == 4
        assert sorted(v for members in clusters for v in members) == list(range(24))

    def test_adversarial_backbone_weights_decrease(self):
        graph = workloads.adversarial_permutation_graph(12, seed=0)
        backbone = [graph[i][i + 1]["weight"] for i in range(11)]
        assert backbone == sorted(backbone, reverse=True)
        chords = [
            data["weight"]
            for u, v, data in graph.edges(data=True)
            if abs(u - v) != 1
        ]
        assert chords and min(chords) > max(backbone)


class TestZooPreset:
    def test_zoo_preset_size_and_coverage(self):
        campaign = preset_campaign("zoo")
        assert len(campaign) >= 100
        families = {spec.graph.family for spec in campaign.specs}
        assert families == set(ZOO_FAMILIES)
        algorithms = {spec.algorithm for spec in campaign.specs}
        assert "elkin" in algorithms
        assert {"kruskal", "prim", "prim_dense", "boruvka_seq"} <= algorithms
        assert all(spec.engine == "fast" for spec in campaign.specs)

    def test_zoo_cells_are_deterministic_and_unique(self):
        campaign = preset_campaign("zoo")
        assert all(spec.is_deterministic() for spec in campaign.specs)
        keys = campaign.run_keys()
        assert len(set(keys)) == len(keys)
