"""Tests for the shared type helpers (repro.types)."""

from __future__ import annotations

import pytest

from repro.types import CostReport, EdgeKey, normalize_edge, normalize_edges


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_preserves_already_sorted(self):
        assert normalize_edge(0, 1) == (0, 1)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            normalize_edge(3, 3)

    def test_normalize_edges_deduplicates(self):
        edges = [(1, 2), (2, 1), (3, 4)]
        assert normalize_edges(edges) == {(1, 2), (3, 4)}


class TestEdgeKey:
    def test_orders_by_weight_first(self):
        light = EdgeKey.of(9, 8, 1.0)
        heavy = EdgeKey.of(0, 1, 2.0)
        assert light < heavy

    def test_breaks_ties_lexicographically(self):
        first = EdgeKey.of(0, 5, 1.0)
        second = EdgeKey.of(1, 2, 1.0)
        assert first < second

    def test_edge_property_is_canonical(self):
        key = EdgeKey.of(7, 3, 1.5)
        assert key.edge == (3, 7)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            EdgeKey.of(2, 2, 1.0)


class TestCostReport:
    def test_addition_sums_all_fields(self):
        total = CostReport(rounds=2, messages=5, words=7) + CostReport(rounds=3, messages=1, words=2)
        assert (total.rounds, total.messages, total.words) == (5, 6, 9)

    def test_parallel_merge_takes_max_rounds(self):
        merged = CostReport(rounds=10, messages=5, words=5).merged_parallel(
            CostReport(rounds=4, messages=7, words=7)
        )
        assert merged.rounds == 10
        assert merged.messages == 12
        assert merged.words == 12

    def test_default_is_zero(self):
        report = CostReport()
        assert report.rounds == 0 and report.messages == 0 and report.words == 0
