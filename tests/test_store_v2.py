"""Store v2: group commit, durability matrix, sharding, compact and merge.

The contract under test (DESIGN.md, Section 11): whatever the
durability level and on-disk layout, a campaign that returned has all
of its records on disk, resume semantics are exact, and the final rows
are byte-identical to the original per-record-fsync single-file store.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import Campaign, execute_campaign, graph_spec_for, RunStore
from repro.campaign.store import DURABILITY_LEVELS, MANIFEST_NAME
from repro.exceptions import ConfigurationError


def _campaign(cells: int = 4) -> Campaign:
    graphs = [graph_spec_for("random_connected", 16), graph_spec_for("grid", 16)]
    return Campaign.from_grid(
        "store-v2",
        graphs,
        algorithms=("elkin", "ghs") if cells >= 4 else ("elkin",),
        seeds=(0,),
    )


class TestDurabilityMatrix:
    @pytest.mark.parametrize("durability", DURABILITY_LEVELS)
    def test_sweep_persists_and_reloads_under_every_level(self, tmp_path, durability):
        store = RunStore(tmp_path / "store", durability=durability)
        report = execute_campaign(_campaign(), store=store)
        store.close()
        reloaded = RunStore(tmp_path / "store")
        assert len(reloaded) == len(report.rows)
        for key in store.run_keys():
            assert reloaded.get_row(key) == store.get_row(key)

    def test_batch_mode_fsyncs_once_per_commit_not_per_record(self, tmp_path):
        record = RunStore(tmp_path / "record.jsonl", durability="record")
        batch = RunStore(tmp_path / "batch.jsonl", durability="batch")
        execute_campaign(_campaign(), store=record)
        execute_campaign(_campaign(), store=batch)
        batch.close()
        assert record.stats["fsyncs"] == record.stats["appends"]
        assert batch.stats["fsyncs"] < record.stats["fsyncs"]
        assert batch.stats["fsyncs"] == batch.stats["commits"]

    def test_none_durability_never_fsyncs(self, tmp_path):
        store = RunStore(tmp_path / "store.jsonl", durability="none")
        execute_campaign(_campaign(), store=store)
        store.close()
        assert store.stats["fsyncs"] == 0
        assert len(RunStore(tmp_path / "store.jsonl")) == len(_campaign())

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="durability"):
            RunStore(tmp_path / "store.jsonl", durability="paranoid")

    def test_rows_byte_identical_to_v1_per_record_mode(self, tmp_path):
        """Acceptance: batched v2 rows == per-record-fsync v1-style rows."""
        campaign = _campaign()
        v1 = RunStore(tmp_path / "v1.jsonl", durability="record", batch_size=1)
        v2 = RunStore(tmp_path / "v2-dir", durability="batch")
        execute_campaign(campaign, store=v1)
        execute_campaign(campaign, store=v2)
        v1.close(), v2.close()
        for key in campaign.run_keys():
            assert json.dumps(v1.get_row(key), sort_keys=True) == json.dumps(
                v2.get_row(key), sort_keys=True
            )
            assert v1.get_result(key).to_json_dict() == v2.get_result(key).to_json_dict()
        # ... and the run records on disk parse to the same payloads.
        reload_v1, reload_v2 = RunStore(tmp_path / "v1.jsonl"), RunStore(tmp_path / "v2-dir")
        for key in campaign.run_keys():
            assert reload_v1.get_row(key) == reload_v2.get_row(key)
            assert reload_v1.get_provenance(key)["verified"] is True


class TestGroupCommit:
    def test_appends_are_buffered_until_flush(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path, durability="batch", batch_size=1000)
        store.record_graph("g1", {"n": 4, "m": 3})
        assert not path.exists() or path.read_text() == ""
        store.flush()
        assert path.read_text().count("\n") == 1

    def test_batch_size_triggers_automatic_commit(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path, durability="batch", batch_size=2)
        store.record_graph("g1", {"n": 4, "m": 3})
        assert not path.exists()
        store.record_graph("g2", {"n": 5, "m": 4})
        assert path.read_text().count("\n") == 2
        assert store.stats["commits"] == 1

    def test_context_manager_flushes_on_exit(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with RunStore(path, durability="batch", batch_size=1000) as store:
            store.record_graph("g1", {"n": 4, "m": 3})
        assert path.read_text().count("\n") == 1

    def test_campaign_execution_flushes_before_returning(self, tmp_path):
        store = RunStore(tmp_path / "store.jsonl", durability="batch", batch_size=1000)
        execute_campaign(_campaign(), store=store)
        # Without an explicit close: everything already on disk.
        assert len(RunStore(tmp_path / "store.jsonl")) == len(_campaign())

    def test_interrupted_campaign_still_persists_completed_cells(self, tmp_path):
        """An exception mid-campaign must not discard the buffered tail."""
        from unittest.mock import patch

        from repro.campaign import executor as executor_module

        campaign = _campaign()
        calls = {"n": 0}
        original = executor_module.run_single

        def explode_on_third(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return original(*args, **kwargs)

        store = RunStore(tmp_path / "store.jsonl", durability="batch", batch_size=1000)
        with patch.object(executor_module, "run_single", explode_on_third):
            with pytest.raises(KeyboardInterrupt):
                execute_campaign(campaign, store=store, batch=False)
        # The two completed cells reached disk despite the interrupt...
        reloaded = RunStore(tmp_path / "store.jsonl")
        assert len(reloaded) == 2
        # ... so resume re-runs only the remaining cells.
        resumed = execute_campaign(campaign, store=reloaded)
        assert resumed.reused == 2
        assert resumed.executed == len(campaign) - 2


class TestCrashRecovery:
    def test_torn_final_line_is_dropped_on_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = RunStore(path, durability="record")
        execute_campaign(_campaign(), store=store)
        store.close()
        intact = len(RunStore(path))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "key": "torn", "sp')  # no newline: torn write
        recovered = RunStore(path)
        assert recovered.stats["recovered_lines"] == 1
        assert len(recovered) == intact
        assert not recovered.has_run("torn")

    def test_torn_tail_is_truncated_so_later_appends_stay_clean(self, tmp_path):
        """Recovery must cut the half-record, not just skip it in memory."""
        path = tmp_path / "store.jsonl"
        store = RunStore(path, durability="record")
        store.record_graph("g1", {"n": 4, "m": 3})
        store.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "gr')
        recovered = RunStore(path, durability="record")
        assert recovered.stats["recovered_lines"] == 1
        assert path.read_text().endswith("\n")  # tail physically removed
        recovered.record_graph("g2", {"n": 5, "m": 4})
        recovered.close()
        # A third open parses every line: nothing concatenated onto garbage.
        final = RunStore(path)
        assert final.stats["recovered_lines"] == 0
        assert sorted(final.graph_keys()) == ["g1", "g2"]

    def test_resume_re_runs_only_the_lost_tail(self, tmp_path):
        """Crash mid-batch: the uncommitted tail re-runs, nothing else."""
        path = tmp_path / "store.jsonl"
        campaign = _campaign()
        store = RunStore(path, durability="record")
        execute_campaign(campaign, store=store)
        store.close()
        # Simulate the crash: drop the last committed run record plus a
        # torn half-line, as an interrupted group commit would leave.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + '{"kind": "ru')
        resumed = execute_campaign(campaign, store=RunStore(path))
        assert resumed.executed == 1
        assert resumed.reused == len(campaign) - 1
        # The re-run row matches the one the crash destroyed.
        original = json.loads(lines[-1])
        assert resumed.rows[-1] == original["row"]

    def test_unterminated_but_parseable_tail_is_kept_and_reterminated(self, tmp_path):
        """A tear exactly before the newline leaves a complete record.

        The record must be kept -- and the file re-terminated, or the
        next append would concatenate onto the line and corrupt the
        whole store for every later reader.
        """
        path = tmp_path / "store.jsonl"
        store = RunStore(path, durability="record")
        store.record_graph("g1", {"n": 4, "m": 3})
        store.close()
        path.write_bytes(path.read_bytes().rstrip(b"\n"))  # tear off the newline
        recovered = RunStore(path, durability="record")
        assert recovered.graph_keys() == ["g1"]  # complete record kept
        assert path.read_text().endswith("\n")  # file re-terminated
        recovered.record_graph("g2", {"n": 5, "m": 4})
        recovered.close()
        final = RunStore(path)
        assert sorted(final.graph_keys()) == ["g1", "g2"]
        assert final.stats["recovered_lines"] == 0

    def test_terminated_corruption_still_raises(self, tmp_path):
        """A *complete* bad line is damage, not truncation: hard error."""
        path = tmp_path / "store.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            RunStore(path)

    def test_mid_file_corruption_raises_even_without_final_newline(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('garbage\n{"kind": "graph", "key": "g", "description"')
        with pytest.raises(ConfigurationError, match="corrupt"):
            RunStore(path)


class TestShardedLayout:
    def test_directory_path_selects_the_sharded_layout(self, tmp_path):
        assert RunStore(tmp_path / "store-dir").is_sharded
        assert not RunStore(tmp_path / "store.jsonl").is_sharded

    def test_existing_paths_classified_by_what_they_are(self, tmp_path):
        (tmp_path / "dir").mkdir()
        (tmp_path / "flat").write_text("")
        assert RunStore(tmp_path / "dir").is_sharded
        assert not RunStore(tmp_path / "flat").is_sharded

    def test_shards_roll_over_and_reload(self, tmp_path):
        campaign = _campaign()
        store = RunStore(tmp_path / "store", shard_records=2, batch_size=3)
        report = execute_campaign(campaign, store=store)
        store.close()
        shards = sorted(p.name for p in (tmp_path / "store").glob("shard-*.jsonl"))
        assert len(shards) >= 2
        for shard in shards[:-1]:
            lines = (tmp_path / "store" / shard).read_text().count("\n")
            assert lines == 2
        manifest = json.loads((tmp_path / "store" / MANIFEST_NAME).read_text())
        assert manifest["version"] == 2
        assert sorted(manifest["shards"]) == shards
        reloaded = RunStore(tmp_path / "store")
        assert len(reloaded) == len(campaign)
        assert [reloaded.get_row(key) for key in campaign.run_keys()] == report.rows

    def test_shard_not_in_manifest_is_globbed_back(self, tmp_path):
        """Self-healing: a crash between shard creation and manifest update."""
        store = RunStore(tmp_path / "store", shard_records=2, batch_size=2)
        execute_campaign(_campaign(), store=store)
        store.close()
        manifest_path = tmp_path / "store" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"] = manifest["shards"][:1]
        manifest_path.write_text(json.dumps(manifest))
        assert len(RunStore(tmp_path / "store")) == len(_campaign())

    def test_legacy_single_file_store_reads_transparently(self, tmp_path):
        """A v1-era file (one record per line, no manifest) just works."""
        path = tmp_path / "legacy.jsonl"
        store = RunStore(path, durability="record")
        report = execute_campaign(_campaign(), store=store)
        store.close()
        legacy = RunStore(path)
        assert not legacy.is_sharded
        assert len(legacy) == len(report.rows)
        # ... and it can keep serving resumes and merges.
        resumed = execute_campaign(_campaign(), store=RunStore(path))
        assert resumed.executed == 0


class TestCompact:
    def test_compact_drops_superseded_records(self, tmp_path):
        path = tmp_path / "store.jsonl"
        campaign = _campaign()
        store = RunStore(path)
        execute_campaign(campaign, store=store)
        execute_campaign(campaign, store=store, resume=False)  # duplicates every run
        stats = store.compact()
        assert stats["dropped"] == len(campaign)
        assert stats["after"] == stats["before"] - stats["dropped"]
        reloaded = RunStore(path)
        assert len(reloaded) == len(campaign)
        assert execute_campaign(campaign, store=reloaded).reused == len(campaign)

    def test_compact_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "store")
        execute_campaign(_campaign(), store=store)
        execute_campaign(_campaign(), store=store, resume=False)
        first = store.compact()
        second = store.compact()
        assert second["dropped"] == 0
        assert second["before"] == second["after"] == first["after"]

    def test_compact_sharded_store_consolidates_to_one_shard(self, tmp_path):
        store = RunStore(tmp_path / "store", shard_records=2, batch_size=2)
        execute_campaign(_campaign(), store=store)
        execute_campaign(_campaign(), store=store, resume=False)
        shards_before = len(list((tmp_path / "store").glob("shard-*.jsonl")))
        store.compact()
        assert shards_before > 1
        # One consolidated shard: the whole live set switches with one
        # atomic rename before any stale shard is unlinked.
        assert [p.name for p in (tmp_path / "store").glob("shard-*.jsonl")] == [
            "shard-00000.jsonl"
        ]
        assert len(RunStore(tmp_path / "store")) == len(_campaign())
        assert not list((tmp_path / "store").glob("*.tmp"))

    def test_crash_between_compact_rename_and_unlink_loses_nothing(self, tmp_path):
        """The documented crash window: new shard in place, stale shards left.

        Stale shards only re-assert the newest value of keys they hold
        (within-shard order is append order), so a load over the
        half-finished layout must equal the fully compacted one.
        """
        store = RunStore(tmp_path / "store", shard_records=2, batch_size=2)
        execute_campaign(_campaign(), store=store)
        execute_campaign(_campaign(), store=store, resume=False)
        store.close()
        stale = sorted((tmp_path / "store").glob("shard-*.jsonl"))
        saved = {p.name: p.read_bytes() for p in stale}
        compacted = RunStore(tmp_path / "store", shard_records=2)
        compacted.compact()
        expected = {key: compacted.get_row(key) for key in compacted.run_keys()}
        # Re-materialize the crash state: compacted shard-00000 plus the
        # old stale shards that the interrupted unlink loop left behind.
        for name, data in saved.items():
            if name != "shard-00000.jsonl":
                (tmp_path / "store" / name).write_bytes(data)
        crashed = RunStore(tmp_path / "store")
        assert len(crashed) == len(expected)
        for key, row in expected.items():
            assert crashed.get_row(key) == row

    def test_store_keeps_appending_after_compact(self, tmp_path):
        store = RunStore(tmp_path / "store", shard_records=2, batch_size=2)
        half = Campaign("half", _campaign().specs[:2])
        execute_campaign(half, store=store)
        store.compact()
        report = execute_campaign(_campaign(), store=store)
        assert report.reused == 2
        store.close()
        assert len(RunStore(tmp_path / "store")) == len(_campaign())

    def test_in_memory_compact_is_a_no_op(self):
        assert RunStore(None).compact() == {"before": 0, "after": 0, "dropped": 0}


class TestMerge:
    def test_merge_combines_parallel_stores(self, tmp_path):
        campaign = _campaign()
        left, right = Campaign("l", campaign.specs[:2]), Campaign("r", campaign.specs[2:])
        a, b = RunStore(tmp_path / "a.jsonl"), RunStore(tmp_path / "b")
        execute_campaign(left, store=a)
        execute_campaign(right, store=b)
        a.close(), b.close()
        merged = RunStore(tmp_path / "merged")
        merged.merge_from(tmp_path / "a.jsonl")
        merged.merge_from(tmp_path / "b")
        merged.close()
        # The merged store resumes the full campaign with zero work.
        report = execute_campaign(campaign, store=RunStore(tmp_path / "merged"))
        assert report.executed == 0
        assert report.reused == len(campaign)

    def test_merge_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "src.jsonl")
        execute_campaign(_campaign(), store=store)
        store.close()
        destination = RunStore(tmp_path / "dest")
        first = destination.merge_from(tmp_path / "src.jsonl")
        second = destination.merge_from(tmp_path / "src.jsonl")
        assert first["runs"] == len(_campaign())
        assert second == {"runs": 0, "graphs": 0, "skipped": first["runs"] + first["graphs"]}

    def test_merge_accepts_store_instances(self, tmp_path):
        source = RunStore(tmp_path / "src.jsonl")
        execute_campaign(_campaign(), store=source)
        destination = RunStore(None)
        stats = destination.merge_from(source)
        assert stats["runs"] == len(_campaign())
        assert destination.run_keys() == source.run_keys()

    def test_merge_into_itself_rejected(self, tmp_path):
        store = RunStore(tmp_path / "store.jsonl")
        store.record_graph("g", {"n": 1, "m": 0})
        store.close()
        with pytest.raises(ConfigurationError, match="itself"):
            store.merge_from(tmp_path / "store.jsonl")

    def test_merge_missing_source_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run store"):
            RunStore(None).merge_from(tmp_path / "nope.jsonl")


class TestStoreContractBugfixes:
    """Failing-before regressions for the PR 9 store-contract sweep."""

    def _seed(self, path):
        store = RunStore(path)
        store.record_graph("g", {"n": 1, "m": 0})
        store.close()

    def test_self_merge_rejected_through_a_symlink_spelling(self, tmp_path):
        """Bugfix: the self-merge guard compared unresolved paths, so a
        symlink (or any alternate spelling) of the store's own file
        slipped past it and duplicated every record."""
        path = tmp_path / "store.jsonl"
        self._seed(path)
        alias = tmp_path / "alias.jsonl"
        alias.symlink_to(path)
        with RunStore(path) as store:
            with pytest.raises(ConfigurationError, match="into itself"):
                store.merge_from(alias)

    def test_self_merge_rejected_through_a_relative_spelling(self, tmp_path, monkeypatch):
        path = tmp_path / "store.jsonl"
        self._seed(path)
        monkeypatch.chdir(tmp_path)
        with RunStore(path) as store:
            with pytest.raises(ConfigurationError, match="into itself"):
                store.merge_from("store.jsonl")

    def test_uppercase_jsonl_suffix_is_a_single_file_store(self, tmp_path):
        """Bugfix: the layout sniff compared suffixes case-sensitively,
        so ``runs.JSONL`` silently became a sharded directory."""
        path = tmp_path / "runs.JSONL"
        with RunStore(path) as store:
            store.record_graph("g", {"n": 1, "m": 0})
        assert path.is_file()
        with RunStore(path) as reloaded:
            assert not reloaded.is_sharded
            assert reloaded.graph_keys() == ["g"]

    def test_mutating_returned_structures_cannot_corrupt_the_store(self, tmp_path):
        """Bugfix: reads returned shallow copies, so mutating a nested
        value wrote through to the store's live record and a later
        compact persisted the corruption."""
        path = tmp_path / "store.jsonl"
        record = {
            "kind": "run",
            "key": "k1",
            "spec": {},
            "row": {"graph": "g", "nested": {"xs": [1]}},
            "result": {},
            "provenance": {"env": {"host": "a"}},
        }
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        store = RunStore(path)
        store.get_row("k1")["nested"]["xs"].append(99)
        next(iter(store.iter_rows()))["nested"]["xs"].append(99)
        store.get_provenance("k1")["env"]["host"] = "b"
        store.compact()
        store.close()
        with RunStore(path) as reloaded:
            assert reloaded.get_row("k1") == {"graph": "g", "nested": {"xs": [1]}}
            assert reloaded.get_provenance("k1") == {"env": {"host": "a"}}

    def test_read_only_open_leaves_file_bytes_untouched(self, tmp_path):
        """Bugfix: merely *opening* a store truncated torn tails and
        re-terminated files -- report runs mutated their input."""
        path = tmp_path / "store.jsonl"
        self._seed(path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "gr')  # torn write
        before = path.read_bytes()
        reader = RunStore(path, read_only=True)
        assert reader.stats["recovered_lines"] == 1  # repaired in memory...
        assert reader.graph_keys() == ["g"]
        assert path.read_bytes() == before  # ...but not on disk
        reader.close()
        assert path.read_bytes() == before

    def test_read_only_keeps_unterminated_parseable_tail_untouched(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._seed(path)
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        before = path.read_bytes()
        with RunStore(path, read_only=True) as reader:
            assert reader.graph_keys() == ["g"]
        assert path.read_bytes() == before

    def test_read_only_rejects_every_write(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._seed(path)
        with RunStore(path, read_only=True) as reader:
            with pytest.raises(ConfigurationError, match="read_only"):
                reader.record_graph("h", {"n": 2, "m": 1})
            with pytest.raises(ConfigurationError, match="read_only"):
                reader.compact()
            with pytest.raises(ConfigurationError, match="read_only"):
                reader.merge_from(tmp_path / "other.jsonl")

    def test_read_only_requires_an_existing_store(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run store"):
            RunStore(tmp_path / "missing.jsonl", read_only=True)
        with pytest.raises(ConfigurationError, match="read_only"):
            RunStore(None, read_only=True)
