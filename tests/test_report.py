"""The campaign report pipeline and the three analysis-layer bugfixes.

``golden_experiments.md`` is the pinned rendering of the report over
``golden_rows.jsonl`` -- the report-pipeline counterpart of the golden
run-row fixture.  Regenerate (only when an output change is intended)::

    PYTHONPATH=src python tests/test_report.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.report import (
    analyze_rows,
    family_of,
    render_markdown,
    write_report,
)
from repro.analysis.tables import format_table
from repro.exceptions import ConfigurationError, ReproError, VerificationError

GOLDEN_ROWS = Path(__file__).parent / "golden_rows.jsonl"
GOLDEN_REPORT = Path(__file__).parent / "golden_experiments.md"


def _golden_rows() -> list:
    with GOLDEN_ROWS.open("r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestFormatTableUnionRegression:
    """Bugfix: columns present only in later rows must not be dropped."""

    def test_union_of_all_rows_keys(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3, "b": 4, "c": 5}])
        assert "c" in text.splitlines()[0]
        assert text.splitlines()[-1].split() == ["3", "4", "5"]

    def test_first_seen_order_is_preserved(self):
        text = format_table([{"b": 1}, {"a": 2, "c": 3}, {"d": 4}])
        assert text.splitlines()[0].split() == ["b", "a", "c", "d"]

    def test_missing_cells_render_as_dash(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "-" in text.splitlines()[2]

    def test_explicit_columns_still_win(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert text.splitlines()[0].split() == ["b"]


class TestPrsForcedKRegression:
    """Bugfix: the sqrt(n) base forest must not be clamped by n // 10."""

    def test_small_n_uses_ceil_sqrt_n(self):
        # n = 30: ceil(sqrt(30)) = 6, but the old n // 10 clamp forced 3.
        from repro.baselines.prs import prs_style_mst
        from repro.graphs import random_connected_graph

        result = prs_style_mst(random_connected_graph(30, seed=2))
        assert result.details["forced_k"] == 6
        assert result.details["ceil_sqrt_n"] == 6

    def test_forced_k_matches_docstring_for_sample_sizes(self):
        import math

        from repro.baselines.prs import prs_style_mst
        from repro.graphs import random_connected_graph

        for n in (12, 50, 64):
            result = prs_style_mst(random_connected_graph(n, seed=1))
            assert result.details["forced_k"] == math.ceil(math.sqrt(n))


class TestElkinTimeBoundFallbackRegression:
    """Bugfix: a missing bfs_depth must not silently tighten the bound to 0."""

    @pytest.fixture()
    def stripped_result(self, small_random_graph):
        from repro.core.elkin_mst import compute_mst

        result = compute_mst(small_random_graph)
        result.details.pop("bfs_depth", None)
        return result

    def test_missing_depth_and_diameter_raises_clearly(self, stripped_result):
        from repro.verify.complexity_checks import elkin_time_bound

        with pytest.raises(VerificationError, match="bfs_depth"):
            elkin_time_bound(stripped_result)

    def test_instance_diameter_fallback(self, small_random_graph, stripped_result):
        from repro.analysis.bounds import elkin_time_bound_formula
        from repro.graphs.properties import hop_diameter
        from repro.verify.complexity_checks import assert_elkin_bounds, elkin_time_bound

        diameter = hop_diameter(small_random_graph)
        bound = elkin_time_bound(stripped_result, diameter=diameter)
        assert bound == elkin_time_bound_formula(
            stripped_result.n, diameter, stripped_result.bandwidth, constant=24.0
        )
        assert_elkin_bounds(stripped_result, diameter=diameter)

    def test_recorded_depth_still_preferred(self, small_random_graph):
        from repro.core.elkin_mst import compute_mst
        from repro.verify.complexity_checks import elkin_time_bound

        result = compute_mst(small_random_graph)
        # An absurd fallback diameter must not override the recorded depth.
        assert elkin_time_bound(result, diameter=10**6) == elkin_time_bound(result)


class TestAnalyzeRows:
    def test_family_grouping(self):
        analysis = analyze_rows(_golden_rows())
        assert set(analysis.families) == {
            "planted_fragments",
            "hypercube",
            "duplicate_weight_stress",
        }
        assert sum(len(rows) for rows in analysis.families.values()) == len(analysis.rows)

    def test_family_of_handles_bare_labels(self):
        assert family_of({"graph": "mygraph"}) == "mygraph"
        assert family_of({}) == "unknown"

    def test_bound_audit_is_clean_on_golden_rows(self):
        analysis = analyze_rows(_golden_rows())
        assert analysis.bound_checked == 6  # 3 graphs x 2 engines
        assert analysis.bound_violations == 0
        assert analysis.bound_skipped == 0

    def test_bound_audit_flags_inflated_rows(self):
        rows = _golden_rows()
        inflated = [dict(row) for row in rows]
        for row in inflated:
            if row["algorithm"] == "elkin":
                row["rounds"] = 10**9
        analysis = analyze_rows(inflated)
        assert analysis.bound_violations == analysis.bound_checked
        assert all(v.metric == "rounds" for v in analysis.violations)

    def test_round_bound_skipped_without_diameter_never_tightened_to_zero(self):
        """Report-level mirror of the elkin_time_bound fallback contract."""
        rows = [dict(row) for row in _golden_rows() if row["algorithm"] == "elkin"]
        for row in rows:
            row.pop("D", None)
        analysis = analyze_rows(rows)
        # The message bound needs only n and m, so the rows still count
        # as checked; only the round check is marked unauditable.
        assert analysis.bound_checked == len(rows)
        assert analysis.bound_skipped == len(rows)
        assert analysis.bound_violations == 0
        assert "round-bound unauditable" in render_markdown(analysis)

    def test_message_bound_still_audited_without_diameter(self):
        """A diameter-less row must not dodge the Theorem 3.1 message audit."""
        rows = [dict(row) for row in _golden_rows() if row["algorithm"] == "elkin"]
        for row in rows:
            row.pop("D", None)
            row["messages"] = 10**12
        analysis = analyze_rows(rows)
        assert analysis.bound_violations == len(rows)
        assert all(v.metric == "messages" for v in analysis.violations)

    def test_recorded_bound_columns_trusted_when_present(self):
        rows = [dict(row) for row in _golden_rows() if row["algorithm"] == "elkin"]
        for row in rows:
            row.pop("D", None)
            row["round_bound"] = 1  # recorded bound, deliberately violated
        analysis = analyze_rows(rows)
        assert analysis.bound_checked == len(rows)
        assert analysis.bound_violations == len(rows)

    def test_fits_cover_distributed_algorithms_only(self):
        analysis = analyze_rows(_golden_rows())
        fitted = {fit.algorithm for fit in analysis.fits}
        assert "elkin" in fitted and "ghs" in fitted
        assert "kruskal" not in fitted and "prim" not in fitted

    def test_messages_fit_exists_and_n_fit_reports_no_spread(self):
        # The golden instances share n = 16: rounds-vs-n has no spread,
        # messages-vs-m does (m = 31, 32, 47).
        analysis = analyze_rows(_golden_rows())
        by_key = {(fit.algorithm, fit.metric): fit for fit in analysis.fits}
        assert by_key[("elkin", "messages")].fit is not None
        assert by_key[("elkin", "rounds")].fit is None
        assert "insufficient spread" in by_key[("elkin", "rounds")].note

    def test_crossover_pairs_elkin_with_prs(self):
        analysis = analyze_rows(_golden_rows())
        assert len(analysis.crossover) == 6  # 3 graphs x 2 engines
        for row in analysis.crossover:
            assert row["prs/elkin"] > 0

    def test_crossover_pairs_rows_per_seed(self):
        """Multi-seed sweeps must pair rows that actually ran together."""
        template = next(row for row in _golden_rows() if row["algorithm"] == "elkin")
        rows = []
        for seed in (0, 1):
            for algorithm, messages in (("elkin", 100 + seed), ("prs", 300 + seed)):
                row = dict(template)
                # Same presentation label for both seeds: only the seed
                # column distinguishes the cells.
                row.update(graph="relabeled", algorithm=algorithm, seed=seed,
                           messages=messages)
                rows.append(row)
        analysis = analyze_rows(rows)
        assert len(analysis.crossover) == 2  # one pairing per seed
        ratios = sorted(row["prs/elkin"] for row in analysis.crossover)
        assert ratios == sorted([round(300 / 100, 3), round(301 / 101, 3)])

    def test_empty_rows_rejected(self):
        with pytest.raises(ReproError, match="empty"):
            analyze_rows([])


class TestGoldenExperimentsFixture:
    def test_fixture_exists(self):
        assert GOLDEN_REPORT.exists(), (
            "golden report fixture missing; regenerate with: "
            "PYTHONPATH=src python tests/test_report.py --regenerate"
        )

    def test_rendering_matches_the_fixture(self):
        document = render_markdown(analyze_rows(_golden_rows()))
        assert document == GOLDEN_REPORT.read_text(encoding="utf-8"), (
            "report rendering drifted from tests/golden_experiments.md; if "
            "intended, regenerate with: "
            "PYTHONPATH=src python tests/test_report.py --regenerate"
        )

    def test_fixture_contains_the_acceptance_sections(self):
        text = GOLDEN_REPORT.read_text(encoding="utf-8")
        assert "bound-violation count: **0**" in text
        assert "## Scaling fits" in text
        assert "## Per-family results" in text
        assert "exponent" in text


class TestWriteReport:
    def test_write_report_from_store(self, tmp_path):
        from repro.campaign import Campaign, RunStore, execute_campaign, graph_spec_for

        campaign = Campaign.from_grid(
            "report", [graph_spec_for("random_connected", 16)], seeds=(0,)
        )
        store = RunStore(tmp_path / "store")
        execute_campaign(campaign, store=store)
        output = tmp_path / "EXPERIMENTS.md"
        document = write_report(store, output=str(output))
        assert output.read_text(encoding="utf-8") == document
        assert "bound-violation count: **0**" in document

    def test_runner_report_convenience(self, tmp_path):
        from repro.api import Runner, Scenario
        from repro.graphs import GraphSpec

        runner = Runner(store=str(tmp_path / "store.jsonl"))
        runner.run(Scenario(graph=GraphSpec("random_connected", {"n": 16, "seed": 0})))
        document = runner.report(output=str(tmp_path / "EXPERIMENTS.md"))
        assert (tmp_path / "EXPERIMENTS.md").exists()
        assert "rows: 1" in document


class TestReportCLI:
    @pytest.fixture()
    def populated_store(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "store.jsonl")
        assert (
            main(
                ["sweep", "--families", "random_connected", "--sizes", "16",
                 "--algorithms", "elkin", "ghs", "--seeds", "0", "--output", path]
            )
            == 0
        )
        return path

    def test_report_prints_to_stdout(self, populated_store, capsys):
        from repro.cli import main

        capsys.readouterr()
        assert main(["report", "--store", populated_store]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# EXPERIMENTS")
        assert "bound-violation count: **0**" in out

    def test_report_writes_output_file(self, populated_store, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--store", populated_store, "--output", str(output)]) == 0
        assert "wrote campaign report" in capsys.readouterr().out
        assert output.read_text(encoding="utf-8").startswith("# EXPERIMENTS")

    def test_report_missing_store_rejected(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="no run store"):
            main(["report", "--store", str(tmp_path / "nope.jsonl")])

    def test_store_compact_subcommand(self, populated_store, capsys):
        from repro.cli import main

        assert main(["store", "compact", "--store", populated_store]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_store_merge_subcommand(self, populated_store, tmp_path, capsys):
        from repro.cli import main

        dest = str(tmp_path / "merged")
        assert main(["store", "merge", "--into", dest, populated_store]) == 0
        out = capsys.readouterr().out
        assert "merged" in out and "2 runs" in out
        # Merged store serves the report too.
        assert main(["report", "--store", dest]) == 0


class TestReportOverShardedStore:
    def test_report_over_sharded_v2_directory_store(self, tmp_path):
        """The report pipeline must read the sharded directory layout
        exactly as it reads a single file."""
        from repro.analysis.report import analyze_store
        from repro.campaign import RunStore

        rows = _golden_rows()
        store = RunStore(tmp_path / "shards", shard_records=8)
        for index, row in enumerate(rows):
            store.append_record_line(
                json.dumps(
                    {
                        "kind": "run",
                        "key": f"k{index:04d}",
                        "spec": {},
                        "row": row,
                        "result": {},
                        "provenance": {},
                    }
                )
            )
        store.close()
        with RunStore(tmp_path / "shards", read_only=True) as reloaded:
            assert reloaded.is_sharded and len(reloaded.shard_paths()) > 1
            document = render_markdown(analyze_store(reloaded))
        assert document == render_markdown(analyze_rows(rows))


class TestNonTerminatedRowsMissingMetrics:
    """``status="non-terminated"`` rows may lack the metric columns a
    clean row always carries; the analysis must not crash on them."""

    def _crashed_row(self, **extra):
        row = {
            "graph": "random_connected(16)",
            "algorithm": "elkin",
            "condition": "crash-stop",
            "status": "non-terminated",
        }
        row.update(extra)
        return row

    def test_analyze_rows_tolerates_missing_metric_columns(self):
        rows = _golden_rows() + [self._crashed_row()]
        analysis = analyze_rows(rows)
        assert analysis.conditioned == 1
        entry = analysis.degradation[-1]
        assert entry["status"] == "non-terminated"
        assert entry["rounds"] is None and entry["messages"] is None
        assert entry["round_factor"] == "-" and entry["message_factor"] == "-"
        render_markdown(analysis)  # must not raise

    def test_conditioned_row_without_n_or_m_is_excluded_from_fits(self):
        rows = _golden_rows()
        baseline = analyze_rows(rows)
        with_crash = analyze_rows(rows + [self._crashed_row()])
        assert with_crash.fits == baseline.fits
        assert with_crash.violations == baseline.violations

    def test_prs_row_without_messages_does_not_break_crossover(self):
        rows = _golden_rows() + [
            {"graph": "grid(9)", "algorithm": "elkin", "n": 9, "m": 12,
             "rounds": 10, "messages": 50},
            {"graph": "grid(9)", "algorithm": "prs", "n": 9, "m": 12,
             "rounds": 12, "status": "ok"},
        ]
        analysis = analyze_rows(rows)
        render_markdown(analysis)  # must not raise


def _regenerate() -> None:
    document = render_markdown(analyze_rows(_golden_rows()))
    GOLDEN_REPORT.write_text(document, encoding="utf-8")
    print(f"wrote golden report fixture to {GOLDEN_REPORT}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
