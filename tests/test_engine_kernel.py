"""Kernel edge cases, parametrized over every simulation engine.

These pin down the corners of the :class:`~repro.simulator.engine.Engine`
contract that the algorithm-level equivalence suite does not exercise:
multi-word messages exactly at / over the bandwidth cap, ``idle_rounds``
with pending messages, ``remaining_capacity`` after partial use, sends
over non-edges, and the engine registry itself.
"""

from __future__ import annotations

import pytest

from repro.exceptions import BandwidthExceededError, ConfigurationError, SimulationError
from repro.graphs import path_graph, random_connected_graph
from repro.simulator.engine import available_engines, create_engine, DEFAULT_ENGINE, Engine
from repro.simulator.fast_network import FastNetwork
from repro.simulator.network import SyncNetwork

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

ENGINES = ["reference", "fast"] + (["array"] if HAVE_NUMPY else [])


def make(engine, graph, bandwidth=1):
    return create_engine(graph, bandwidth=bandwidth, engine=engine)


class TestRegistry:
    def test_both_builtin_engines_are_registered(self):
        assert {"reference", "fast"} <= set(available_engines())

    def test_default_engine_is_reference(self):
        assert DEFAULT_ENGINE == "reference"

    def test_create_engine_returns_the_right_kernel(self, small_random_graph):
        assert isinstance(make("reference", small_random_graph), SyncNetwork)
        assert isinstance(make("fast", small_random_graph), FastNetwork)

    def test_unknown_engine_raises_with_available_names(self, small_random_graph):
        with pytest.raises(ConfigurationError, match="fast"):
            create_engine(small_random_graph, engine="warp")

    def test_engines_subclass_the_contract(self):
        assert issubclass(SyncNetwork, Engine)
        assert issubclass(FastNetwork, Engine)


@pytest.mark.parametrize("engine", ENGINES)
class TestKernelContract:
    def test_basic_queries_match_reference(self, engine):
        graph = random_connected_graph(24, seed=8)
        network = make(engine, graph)
        assert network.n == 24
        assert network.m == graph.number_of_edges()
        assert network.round == 0
        assert list(network.vertices()) == sorted(graph.nodes())
        vertex = next(iter(network.vertices()))
        state = network.node(vertex)
        assert set(state.neighbors) == set(graph.neighbors(vertex))
        for neighbor in state.neighbors:
            assert network.edge_weight(vertex, neighbor) == graph[vertex][neighbor]["weight"]

    def test_unknown_vertex_raises(self, engine):
        network = make(engine, path_graph(4, seed=0))
        with pytest.raises(SimulationError):
            network.node(10_000)

    def test_send_over_non_edge_raises(self, engine):
        network = make(engine, path_graph(4, seed=0))
        with pytest.raises(SimulationError):
            network.send(0, 3, "ping")
        with pytest.raises(SimulationError):
            network.send(10_000, 0, "ping")

    def test_edge_weight_over_non_edge_raises(self, engine):
        network = make(engine, path_graph(4, seed=0))
        with pytest.raises(SimulationError):
            network.edge_weight(0, 2)

    def test_rejects_invalid_bandwidth(self, engine):
        with pytest.raises(SimulationError):
            make(engine, path_graph(3, seed=0), bandwidth=0)

    def test_rejects_zero_word_message(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=4)
        with pytest.raises(ValueError):
            network.send(0, 1, "empty", words=0)

    def test_multi_word_message_exactly_at_cap(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=3)
        network.send(0, 1, "bulk", payload=(1, 2, 3), words=3)
        assert network.remaining_capacity(0, 1) == 0
        inboxes = network.deliver_round()
        assert [m.words for m in inboxes[1]] == [3]
        assert network.metrics.words == 3

    def test_multi_word_message_over_cap_raises(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=3)
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "bulk", words=4)
        # a failed send must not consume capacity or queue anything
        assert network.remaining_capacity(0, 1) == 3
        assert network.pending_count() == 0

    def test_cumulative_words_over_cap_raise(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=3)
        network.send(0, 1, "a", words=2)
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "b", words=2)
        network.send(0, 1, "c", words=1)  # exactly fills the cap
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "d", words=1)

    def test_remaining_capacity_after_partial_use(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=4)
        assert network.remaining_capacity(0, 1) == 4
        network.send(0, 1, "a", words=3)
        assert network.remaining_capacity(0, 1) == 1
        # the reverse direction and other edges are unaffected
        assert network.remaining_capacity(1, 0) == 4
        assert network.remaining_capacity(1, 2) == 4
        network.deliver_round()
        assert network.remaining_capacity(0, 1) == 4

    def test_bandwidth_is_per_directed_edge(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=2)
        network.send(0, 1, "a")
        network.send(0, 1, "b")
        with pytest.raises(BandwidthExceededError):
            network.send(0, 1, "c")
        network.send(1, 0, "d")
        network.send(1, 2, "e")

    def test_idle_rounds_with_pending_messages_raise(self, engine):
        network = make(engine, path_graph(3, seed=0))
        network.send(0, 1, "a")
        with pytest.raises(SimulationError):
            network.idle_rounds(1)
        # zero idle rounds are rejected just the same while pending
        with pytest.raises(SimulationError):
            network.idle_rounds(0)
        # after delivery the clock can advance idly again
        network.deliver_round()
        network.idle_rounds(3)
        assert network.round == 4

    def test_idle_rounds_reject_negative(self, engine):
        network = make(engine, path_graph(3, seed=0))
        with pytest.raises(SimulationError):
            network.idle_rounds(-1)

    def test_bandwidth_resets_after_idle_rounds(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=1)
        network.send(0, 1, "a")
        network.deliver_round()
        network.idle_rounds(2)
        assert network.remaining_capacity(0, 1) == 1
        network.send(0, 1, "b")
        assert network.pending_count() == 1

    def test_delivery_order_and_message_interface(self, engine):
        network = make(engine, path_graph(4, seed=0), bandwidth=2)
        network.send(2, 1, "x", payload=("first",))
        network.send(0, 1, "y", payload=("second",))
        network.send(2, 3, "z")
        inboxes = network.deliver_round()
        # receivers appear in first-message order; inboxes keep send order
        assert list(inboxes) == [1, 3]
        assert [(m.sender, m.kind, m.payload[0]) for m in inboxes[1]] == [
            (2, "x", "first"),
            (0, "y", "second"),
        ]
        message = inboxes[1][0]
        assert message.receiver == 1
        assert message.words == 1
        assert message.sent_in_round == 0
        assert "x" in message.describe()

    def test_words_counted_at_delivery(self, engine):
        network = make(engine, path_graph(3, seed=0), bandwidth=4)
        network.send(0, 1, "a", words=3)
        assert network.metrics.words == 0
        network.deliver_round()
        assert network.metrics.words == 3
        assert network.metrics.messages_by_kind["a"] == 1

    def test_checkpoint_and_cost_since(self, engine):
        network = make(engine, path_graph(4, seed=0))
        snapshot = network.checkpoint()
        network.send(0, 1, "a")
        network.deliver_round()
        delta = network.cost_since(snapshot)
        assert delta.rounds == 1 and delta.messages == 1
        assert network.total_cost().messages == 1

    def test_sorted_edges_are_sorted_by_weight(self, engine):
        network = make(engine, random_connected_graph(20, seed=5))
        weights = [weight for weight, _, _ in network.sorted_edges()]
        assert weights == sorted(weights)
