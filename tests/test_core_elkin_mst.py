"""Tests for the complete algorithm (Theorems 3.1 and 3.2) and its building blocks."""

from __future__ import annotations

import pytest

from repro.config import RunConfig
from repro.core.boruvka_merge import merge_fragment_graph
from repro.core.elkin_mst import compute_mst
from repro.core.mwoe import candidate_edge, minimum_candidate
from repro.core.parameters import choose_base_forest_parameter, controlled_ghs_phase_count
from repro.exceptions import ConfigurationError, FragmentError
from repro.graphs import (
    complete_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
)
from repro.verify.complexity_checks import assert_elkin_bounds
from repro.verify.mst_checks import verify_mst_result


GRAPH_CASES = [
    ("random-sparse", lambda: random_connected_graph(70, seed=31)),
    ("random-dense", lambda: random_connected_graph(40, edge_probability=0.3, seed=32)),
    ("path", lambda: path_graph(45, seed=33)),
    ("grid", lambda: grid_graph(7, 7, seed=34)),
    ("star", lambda: star_graph(35, seed=35)),
    ("complete", lambda: complete_graph(15, seed=36)),
    ("tree", lambda: random_tree(50, seed=37)),
    ("lollipop", lambda: lollipop_graph(8, 25, seed=38)),
]


class TestCorrectness:
    @pytest.mark.parametrize("name,builder", GRAPH_CASES)
    def test_computes_the_unique_mst(self, name, builder):
        graph = builder()
        result = compute_mst(graph)
        verify_mst_result(graph, result)
        assert result.algorithm == "elkin"
        assert result.edge_count == graph.number_of_nodes() - 1

    @pytest.mark.parametrize("bandwidth", [1, 2, 4, 8])
    def test_correct_under_all_bandwidths(self, small_random_graph, bandwidth):
        result = compute_mst(small_random_graph, RunConfig(bandwidth=bandwidth))
        verify_mst_result(small_random_graph, result)
        assert result.bandwidth == bandwidth

    def test_single_vertex_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        result = compute_mst(graph)
        assert result.edges == set()
        assert result.rounds == 0

    def test_two_vertex_graph(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1, weight=3.5)
        result = compute_mst(graph)
        assert result.edges == {(0, 1)}
        assert result.total_weight == pytest.approx(3.5)

    def test_explicit_root_choice(self, small_grid_graph):
        result = compute_mst(small_grid_graph, root=10)
        verify_mst_result(small_grid_graph, result)
        assert result.details["bfs_root"] == 10

    def test_forced_base_forest_parameter(self, small_random_graph):
        result = compute_mst(small_random_graph, RunConfig(base_forest_k=3))
        verify_mst_result(small_random_graph, result)
        assert result.details["k"] == 3

    def test_deterministic_across_runs(self, small_random_graph):
        first = compute_mst(small_random_graph)
        second = compute_mst(small_random_graph)
        assert first.edges == second.edges
        assert first.rounds == second.rounds
        assert first.messages == second.messages

    def test_rejects_duplicate_weights(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(1, 2, weight=1.0)
        from repro.exceptions import WeightError

        with pytest.raises(WeightError):
            compute_mst(graph)


class TestComplexityAndTelemetry:
    @pytest.mark.parametrize("name,builder", GRAPH_CASES)
    def test_theorem_bounds_hold(self, name, builder):
        graph = builder()
        result = compute_mst(graph)
        assert_elkin_bounds(result)

    def test_strict_bounds_config_runs_the_check(self, small_random_graph):
        result = compute_mst(small_random_graph, RunConfig(strict_bounds=True))
        assert result.edge_count == small_random_graph.number_of_nodes() - 1

    def test_fragment_count_halves_every_boruvka_phase(self, medium_random_graph):
        result = compute_mst(medium_random_graph)
        for phase in result.phases:
            assert phase.fragments_after <= (phase.fragments_before + 1) // 2

    def test_boruvka_phase_count_is_logarithmic(self, medium_random_graph):
        result = compute_mst(medium_random_graph)
        base_fragments = result.details["base_fragment_count"]
        assert result.details["boruvka_phase_count"] <= max(1, base_fragments).bit_length()

    def test_stage_costs_sum_to_total(self, small_random_graph):
        result = compute_mst(small_random_graph)
        stage_rounds = sum(cost["rounds"] for cost in result.details["stage_costs"].values())
        stage_messages = sum(cost["messages"] for cost in result.details["stage_costs"].values())
        assert stage_rounds == result.rounds
        assert stage_messages == result.messages

    def test_telemetry_can_be_disabled(self, small_random_graph):
        result = compute_mst(small_random_graph, RunConfig(collect_telemetry=False))
        assert result.phases == []

    def test_base_forest_statistics_recorded(self, small_path_graph):
        result = compute_mst(small_path_graph)
        assert result.details["base_fragment_count"] >= 1
        assert result.details["base_max_diameter"] >= 0
        assert result.details["k"] >= 1

    def test_bandwidth_reduces_rounds_on_low_diameter_graphs(self):
        graph = random_connected_graph(120, seed=41)
        slow = compute_mst(graph, RunConfig(bandwidth=1))
        fast = compute_mst(graph, RunConfig(bandwidth=8))
        assert fast.rounds <= slow.rounds
        assert fast.edges == slow.edges


class TestParameterChoice:
    def test_low_diameter_regime_uses_sqrt(self):
        assert choose_base_forest_parameter(100, diameter_estimate=5) == 10

    def test_high_diameter_regime_uses_diameter(self):
        assert choose_base_forest_parameter(100, diameter_estimate=60) == 60

    def test_bandwidth_shrinks_the_sqrt_term(self):
        assert choose_base_forest_parameter(100, diameter_estimate=2, bandwidth=4) == 5

    def test_lower_bound_of_one(self):
        assert choose_base_forest_parameter(1, diameter_estimate=0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            choose_base_forest_parameter(0, 1)
        with pytest.raises(ConfigurationError):
            choose_base_forest_parameter(10, -1)
        with pytest.raises(ConfigurationError):
            choose_base_forest_parameter(10, 1, bandwidth=0)

    def test_phase_count(self):
        assert controlled_ghs_phase_count(1) == 0
        assert controlled_ghs_phase_count(2) == 1
        assert controlled_ghs_phase_count(8) == 3
        assert controlled_ghs_phase_count(9) == 4
        with pytest.raises(ConfigurationError):
            controlled_ghs_phase_count(0)


class TestMWOEHelpers:
    def test_minimum_candidate_handles_none(self):
        a = (1.0, 0, 1, 5)
        assert minimum_candidate(None, a) == a
        assert minimum_candidate(a, None) == a
        assert minimum_candidate(None, None) is None

    def test_minimum_candidate_orders_by_weight(self):
        light = (1.0, 9, 8, 5)
        heavy = (2.0, 0, 1, 5)
        assert minimum_candidate(light, heavy) == light

    def test_candidate_edge_is_canonical(self):
        assert candidate_edge((1.0, 7, 3, 5)) == (3, 7)


class TestFragmentGraphMerge:
    def test_simple_merge(self):
        mwoe = {1: (1.0, 10, 20, 2), 2: (1.0, 20, 10, 1), 3: (2.0, 30, 11, 1)}
        merge = merge_fragment_graph(mwoe, {1, 2, 3})
        assert merge.fragment_count == 1
        assert merge.mst_edges_added == {(10, 20), (11, 30)}
        assert set(merge.new_fragment_of.values()) == {1}

    def test_partial_merge_keeps_untouched_fragments(self):
        mwoe = {1: (1.0, 10, 20, 2)}
        merge = merge_fragment_graph(mwoe, {1, 2, 3})
        assert merge.new_fragment_of[3] == 3
        assert merge.fragment_count == 2

    def test_rejects_unknown_fragments(self):
        with pytest.raises(FragmentError):
            merge_fragment_graph({9: (1.0, 0, 1, 2)}, {1, 2})
        with pytest.raises(FragmentError):
            merge_fragment_graph({1: (1.0, 0, 1, 9)}, {1, 2})

    def test_rejects_self_loop(self):
        with pytest.raises(FragmentError):
            merge_fragment_graph({1: (1.0, 0, 1, 1)}, {1, 2})
