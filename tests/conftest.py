"""Shared fixtures for the test suite.

Graphs used here are deliberately small (tens of vertices): every
distributed run simulates each round explicitly, and the suite aims for
breadth (many behaviours and invariants) rather than large instances --
the benchmarks cover the scaling story.
"""

from __future__ import annotations

import pytest

from repro.graphs import (
    complete_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.simulator.network import SyncNetwork


@pytest.fixture
def small_random_graph():
    """A 40-vertex sparse random connected graph (low diameter)."""
    return random_connected_graph(40, seed=11)


@pytest.fixture
def medium_random_graph():
    """An 80-vertex random connected graph used by integration tests."""
    return random_connected_graph(80, seed=5)


@pytest.fixture
def small_path_graph():
    """A 30-vertex path (the extreme high-diameter case)."""
    return path_graph(30, seed=3)


@pytest.fixture
def small_grid_graph():
    """A 6x6 grid (intermediate diameter)."""
    return grid_graph(6, 6, seed=9)


@pytest.fixture
def small_star_graph():
    """A 25-vertex star (diameter 2)."""
    return star_graph(25, seed=4)


@pytest.fixture
def small_complete_graph():
    """A 12-vertex complete graph (diameter 1, dense)."""
    return complete_graph(12, seed=6)


@pytest.fixture
def network(small_random_graph):
    """A CONGEST network (b = 1) over the small random graph."""
    return SyncNetwork(small_random_graph)


@pytest.fixture
def path_network(small_path_graph):
    """A CONGEST network over the small path graph."""
    return SyncNetwork(small_path_graph)
