"""Tests for BFS, flooding, broadcast, convergecast, neighbour exchange and direct sends."""

from __future__ import annotations

import operator

import networkx as nx
import pytest

from repro.exceptions import ProtocolError
from repro.graphs import grid_graph, path_graph, random_connected_graph, star_graph
from repro.simulator.network import SyncNetwork
from repro.simulator.primitives.bfs import build_bfs_tree
from repro.simulator.primitives.broadcast import forest_broadcast
from repro.simulator.primitives.convergecast import forest_convergecast
from repro.simulator.primitives.direct import send_over_edges
from repro.simulator.primitives.flooding import flood_value
from repro.simulator.primitives.neighbor_exchange import neighbor_exchange
from repro.simulator.primitives.trees import RootedForest


class TestBFS:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: path_graph(20, seed=1),
            lambda: grid_graph(5, 5, seed=1),
            lambda: star_graph(15, seed=1),
            lambda: random_connected_graph(40, seed=1),
        ],
    )
    def test_distances_match_networkx(self, graph_builder):
        graph = graph_builder()
        network = SyncNetwork(graph)
        tree = build_bfs_tree(network, root=0)
        expected = nx.single_source_shortest_path_length(graph, 0)
        assert tree.distance == expected
        assert tree.depth == max(expected.values())
        # Parent pointers are consistent with the distances.
        for vertex, parent in tree.forest.parent.items():
            if parent is not None:
                assert tree.distance[vertex] == tree.distance[parent] + 1
                assert graph.has_edge(vertex, parent)

    def test_cost_bounds(self):
        graph = random_connected_graph(50, seed=3)
        network = SyncNetwork(graph)
        tree = build_bfs_tree(network)
        assert network.round <= tree.depth + 2
        assert network.metrics.messages <= 2 * graph.number_of_edges()

    def test_default_root_is_minimum_identity(self):
        network = SyncNetwork(path_graph(5, seed=0))
        assert build_bfs_tree(network).root == 0

    def test_unknown_root_raises(self):
        network = SyncNetwork(path_graph(5, seed=0))
        with pytest.raises(ProtocolError):
            build_bfs_tree(network, root=99)


class TestFlooding:
    def test_every_vertex_learns_the_value(self):
        network = SyncNetwork(grid_graph(4, 4, seed=2))
        learned = flood_value(network, source=0, value="token")
        assert set(learned) == set(network.vertices())
        assert all(value == "token" for value in learned.values())

    def test_cost_is_linear_in_edges(self):
        graph = random_connected_graph(30, seed=2)
        network = SyncNetwork(graph)
        flood_value(network, source=0, value=1)
        assert network.metrics.messages <= 2 * graph.number_of_edges()

    def test_unknown_source_raises(self):
        network = SyncNetwork(path_graph(4, seed=0))
        with pytest.raises(ProtocolError):
            flood_value(network, source=77, value=1)


class TestForestBroadcast:
    def test_values_reach_every_tree_vertex(self):
        network = SyncNetwork(path_graph(10, seed=1))
        # Two trees: 0..4 rooted at 0, 5..9 rooted at 9.
        parent = {0: None, 1: 0, 2: 1, 3: 2, 4: 3, 9: None, 8: 9, 7: 8, 6: 7, 5: 6}
        forest = RootedForest(parent=parent)
        values = forest_broadcast(network, forest, {0: "left", 9: "right"})
        assert all(values[v] == "left" for v in range(5))
        assert all(values[v] == "right" for v in range(5, 10))
        assert network.metrics.messages == 8
        assert network.round <= forest.height + 1

    def test_missing_root_value_raises(self):
        network = SyncNetwork(path_graph(3, seed=1))
        forest = RootedForest(parent={0: None, 1: 0, 2: 1})
        with pytest.raises(ProtocolError):
            forest_broadcast(network, forest, {})

    def test_tree_edge_must_be_graph_edge(self):
        network = SyncNetwork(path_graph(4, seed=1))
        forest = RootedForest(parent={0: None, 2: 0})
        with pytest.raises(ProtocolError):
            forest_broadcast(network, forest, {0: 1})


class TestForestConvergecast:
    def test_sum_aggregation_per_tree(self):
        network = SyncNetwork(path_graph(8, seed=1))
        parent = {0: None, 1: 0, 2: 1, 3: 2, 7: None, 6: 7, 5: 6, 4: 5}
        forest = RootedForest(parent=parent)
        result = forest_convergecast(
            network, forest, {v: 1 for v in range(8)}, operator.add
        )
        assert result.root_values == {0: 4, 7: 4}
        # per-vertex values are subtree sizes.
        assert result.per_vertex[2] == 2
        assert result.child_values[0] == {1: 3}
        assert network.metrics.messages == 6

    def test_min_aggregation(self):
        network = SyncNetwork(star_graph(6, seed=1))
        parent = {0: None, 1: 0, 2: 0, 3: 0, 4: 0, 5: 0}
        forest = RootedForest(parent=parent)
        values = {0: 9.0, 1: 5.0, 2: 3.0, 3: 8.0, 4: 1.0, 5: 7.0}
        result = forest_convergecast(network, forest, values, min)
        assert result.root_values[0] == 1.0

    def test_missing_value_raises(self):
        network = SyncNetwork(path_graph(3, seed=1))
        forest = RootedForest(parent={0: None, 1: 0, 2: 1})
        with pytest.raises(ProtocolError):
            forest_convergecast(network, forest, {0: 1, 1: 1}, operator.add)

    def test_singleton_forest_costs_nothing(self):
        network = SyncNetwork(path_graph(3, seed=1))
        forest = RootedForest(parent={0: None, 1: None, 2: None})
        result = forest_convergecast(network, forest, {0: 1, 1: 2, 2: 3}, operator.add)
        assert result.root_values == {0: 1, 1: 2, 2: 3}
        assert network.metrics.messages == 0


class TestNeighborExchange:
    def test_every_neighbor_pair_exchanges_values(self):
        graph = random_connected_graph(20, seed=5)
        network = SyncNetwork(graph)
        values = {v: v * 10 for v in network.vertices()}
        received = neighbor_exchange(network, values)
        for u, v in graph.edges():
            assert received[u][v] == v * 10
            assert received[v][u] == u * 10
        assert network.metrics.messages == 2 * graph.number_of_edges()
        assert network.round == 1

    def test_missing_value_raises(self, network):
        with pytest.raises(ProtocolError):
            neighbor_exchange(network, {0: 1})


class TestSendOverEdges:
    def test_batch_delivery_in_one_round(self):
        network = SyncNetwork(path_graph(5, seed=1))
        received = send_over_edges(network, [(0, 1, "a"), (2, 1, "b"), (3, 4, "c")])
        assert sorted(received[1]) == [(0, "a"), (2, "b")]
        assert received[4] == [(3, "c")]
        assert network.round == 1
        assert network.metrics.messages == 3

    def test_empty_batch_costs_nothing(self, network):
        assert send_over_edges(network, []) == {}
        assert network.round == 0

    def test_non_edge_raises(self):
        network = SyncNetwork(path_graph(4, seed=1))
        with pytest.raises(ProtocolError):
            send_over_edges(network, [(0, 3, "x")])

    def test_bandwidth_violation_raises(self):
        network = SyncNetwork(path_graph(3, seed=1), bandwidth=1)
        with pytest.raises(ProtocolError):
            send_over_edges(network, [(0, 1, "a"), (0, 1, "b")])
