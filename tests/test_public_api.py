"""Public-API snapshot: surface changes must be deliberate.

``tests/public_api_manifest.json`` is the checked-in record of what
``repro`` and ``repro.api`` export.  If this test fails you either
removed something users import (a breaking change -- update the README's
Migration section) or added a new export (fine -- regenerate the
manifest and include it in the same commit)::

    PYTHONPATH=src python - <<'EOF'
    import json, repro, repro.api
    manifest = {
        "repro": sorted(repro.__all__),
        "repro.api": sorted(repro.api.__all__),
    }
    with open("tests/public_api_manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\\n")
    EOF
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
import repro.api

MANIFEST_PATH = Path(__file__).parent / "public_api_manifest.json"


def _manifest() -> dict:
    return json.loads(MANIFEST_PATH.read_text(encoding="utf-8"))


def test_repro_all_matches_manifest():
    assert sorted(repro.__all__) == _manifest()["repro"]


def test_repro_api_all_matches_manifest():
    assert sorted(repro.api.__all__) == _manifest()["repro.api"]


def test_every_export_resolves():
    """``__all__`` must not advertise names that do not exist."""
    for module in (repro, repro.api):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name} is advertised but missing"


def test_no_duplicate_exports():
    for module in (repro, repro.api):
        assert len(module.__all__) == len(set(module.__all__))
