"""Tests for MST fragments and forests."""

from __future__ import annotations

import pytest

from repro.core.fragments import Fragment, MSTForest
from repro.exceptions import FragmentError


class TestFragment:
    def test_singleton(self):
        fragment = Fragment.singleton(7)
        assert fragment.fragment_id == 7
        assert fragment.vertices == (7,)
        assert fragment.size == 1
        assert fragment.diameter() == 0
        assert fragment.tree_edges() == set()

    def test_from_edges_builds_parent_pointers(self):
        fragment = Fragment.from_edges(0, [(0, 1), (1, 2), (1, 3)])
        assert fragment.size == 4
        assert fragment.parent[2] == 1
        assert fragment.parent[0] is None
        assert fragment.depth == 2
        assert fragment.diameter() == 2
        assert fragment.tree_edges() == {(0, 1), (1, 2), (1, 3)}

    def test_from_edges_rejects_disconnected(self):
        with pytest.raises(FragmentError):
            Fragment.from_edges(0, [(0, 1), (2, 3)])

    def test_from_edges_rejects_cycles(self):
        with pytest.raises(FragmentError):
            Fragment.from_edges(0, [(0, 1), (1, 2), (2, 0)])

    def test_diameter_of_path_fragment(self):
        fragment = Fragment.from_edges(0, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert fragment.diameter() == 4

    def test_root_must_be_member(self):
        with pytest.raises(FragmentError):
            Fragment(root=5, parent={0: None, 1: 0})

    def test_root_must_not_have_parent(self):
        with pytest.raises(FragmentError):
            Fragment(root=0, parent={0: 1, 1: None})


class TestMSTForest:
    def test_singletons(self):
        forest = MSTForest.singletons(range(5))
        assert forest.count == 5
        assert forest.fragment_of(3) == 3
        assert forest.max_diameter() == 0
        assert forest.tree_edges() == set()

    def test_vertex_disjointness_enforced(self):
        overlapping = {
            0: Fragment.from_edges(0, [(0, 1)]),
            1: Fragment.singleton(1),
        }
        with pytest.raises(FragmentError):
            MSTForest(fragments=overlapping)

    def test_fragment_key_must_match_identity(self):
        with pytest.raises(FragmentError):
            MSTForest(fragments={5: Fragment.singleton(3)})

    def test_fragment_of_unknown_vertex(self):
        forest = MSTForest.singletons([0, 1])
        with pytest.raises(FragmentError):
            forest.fragment_of(9)

    def test_merge_groups(self):
        forest = MSTForest.singletons(range(4))
        merged = forest.merge_groups([([0, 1], [(0, 1)], 1), ([2, 3], [(2, 3)], 3)])
        assert merged.count == 2
        assert merged.fragment_of(0) == 1
        assert merged.fragment_of(2) == 3
        assert merged.tree_edges() == {(0, 1), (2, 3)}
        # The original forest is untouched.
        assert forest.count == 4

    def test_merge_groups_carries_untouched_fragments(self):
        forest = MSTForest.singletons(range(4))
        merged = forest.merge_groups([([0, 1], [(0, 1)], 0)])
        assert merged.count == 3
        assert merged.fragment_of(2) == 2

    def test_merge_groups_rejects_duplicate_membership(self):
        forest = MSTForest.singletons(range(3))
        with pytest.raises(FragmentError):
            forest.merge_groups([([0, 1], [(0, 1)], 0), ([1, 2], [(1, 2)], 2)])

    def test_merge_groups_rejects_foreign_root(self):
        forest = MSTForest.singletons(range(3))
        with pytest.raises(FragmentError):
            forest.merge_groups([([0, 1], [(0, 1)], 2)])

    def test_merge_groups_rejects_non_tree_edge_count(self):
        forest = MSTForest.singletons(range(3))
        with pytest.raises(FragmentError):
            forest.merge_groups([([0, 1, 2], [(0, 1)], 0)])

    def test_combined_forest_and_roots(self):
        forest = MSTForest.singletons(range(4)).merge_groups([([0, 1, 2], [(0, 1), (1, 2)], 1)])
        combined = forest.combined_forest()
        assert set(combined.roots) == {1, 3}
        assert forest.roots()[1] == 1
        assert forest.root_of(1) == 1

    def test_alpha_beta_predicate(self):
        forest = MSTForest.singletons(range(10))
        assert forest.is_alpha_beta_forest(alpha=10, beta=0)
        assert not forest.is_alpha_beta_forest(alpha=5, beta=10)

    def test_coarsens(self):
        fine = MSTForest.singletons(range(4))
        coarse = fine.merge_groups([([0, 1], [(0, 1)], 0), ([2, 3], [(2, 3)], 2)])
        assert coarse.coarsens(fine)
        assert not fine.coarsens(coarse)

    def test_assert_covers(self):
        forest = MSTForest.singletons(range(4))
        forest.assert_covers(range(4))
        with pytest.raises(FragmentError):
            forest.assert_covers(range(5))
