"""Tests for the verification layer and the analysis utilities."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.bounds import (
    controlled_ghs_message_bound,
    controlled_ghs_time_bound,
    elkin_message_bound_formula,
    elkin_time_bound_formula,
    ghs_time_bound,
    gkp_message_bound,
    log2_ceil,
    log_star,
    pipeline_phase_time_bound,
)
from repro.analysis.experiments import (
    available_algorithms,
    compare_algorithms,
    run_single,
    sweep_bandwidth,
    sweep_graphs,
)
from repro.analysis.fitting import fit_power_law, ratio_series
from repro.analysis.tables import format_table
from repro.core.elkin_mst import compute_mst
from repro.core.fragments import MSTForest
from repro.exceptions import ConfigurationError, ReproError, VerificationError
from repro.graphs import GraphSpec, random_connected_graph
from repro.verify.complexity_checks import (
    assert_elkin_bounds,
    elkin_message_bound,
    elkin_time_bound,
)
from repro.verify.forest_checks import assert_alpha_beta_forest, assert_forest_coarsens
from repro.verify.mst_checks import (
    assert_same_mst,
    assert_spanning_tree,
    reference_mst,
    verify_mst_result,
)


class TestMSTChecks:
    def test_reference_mst_matches_kruskal(self, small_random_graph):
        edges = reference_mst(small_random_graph)
        assert len(edges) == small_random_graph.number_of_nodes() - 1

    def test_assert_spanning_tree_detects_wrong_edge_count(self, small_random_graph):
        edges = list(reference_mst(small_random_graph))[:-1]
        with pytest.raises(VerificationError, match="needs"):
            assert_spanning_tree(small_random_graph, edges)

    def test_assert_spanning_tree_detects_foreign_edges(self, small_path_graph):
        edges = set(reference_mst(small_path_graph))
        edges.discard((0, 1))
        edges.add((0, 29))  # not a graph edge on a path
        with pytest.raises(VerificationError, match="not an edge"):
            assert_spanning_tree(small_path_graph, edges)

    def test_assert_same_mst_detects_swapped_edge(self, small_random_graph):
        correct = reference_mst(small_random_graph)
        non_tree = [
            edge
            for edge in (tuple(sorted(e)) for e in small_random_graph.edges())
            if edge not in correct
        ]
        wrong = set(correct)
        wrong.discard(next(iter(correct)))
        wrong.add(non_tree[0])
        with pytest.raises(VerificationError, match="MST mismatch"):
            assert_same_mst(small_random_graph, wrong)

    def test_verify_mst_result_detects_wrong_weight(self, small_random_graph):
        result = compute_mst(small_random_graph)
        broken = dataclasses.replace(result, total_weight=result.total_weight + 10.0)
        with pytest.raises(VerificationError, match="weight"):
            verify_mst_result(small_random_graph, broken)

    def test_verify_mst_result_accepts_correct_run(self, small_random_graph):
        verify_mst_result(small_random_graph, compute_mst(small_random_graph))


class TestForestChecks:
    def test_alpha_beta_rejects_too_many_fragments(self, small_random_graph):
        forest = MSTForest.singletons(small_random_graph.nodes())
        with pytest.raises(VerificationError, match="fragments"):
            assert_alpha_beta_forest(small_random_graph, forest, k=40)

    def test_alpha_beta_accepts_singletons_for_k_one(self, small_random_graph):
        forest = MSTForest.singletons(small_random_graph.nodes())
        assert_alpha_beta_forest(small_random_graph, forest, k=1)

    def test_rejects_non_mst_fragment_edges(self, small_random_graph):
        correct = reference_mst(small_random_graph)
        non_tree = next(
            edge
            for edge in (tuple(sorted(e)) for e in small_random_graph.edges())
            if edge not in correct
        )
        from repro.core.fragments import Fragment

        fragments = {
            vertex: Fragment.singleton(vertex)
            for vertex in small_random_graph.nodes()
            if vertex not in non_tree
        }
        merged = Fragment.from_edges(non_tree[0], [non_tree])
        fragments[merged.fragment_id] = merged
        forest = MSTForest(fragments=fragments)
        with pytest.raises(VerificationError, match="non-MST"):
            assert_alpha_beta_forest(small_random_graph, forest, k=2)

    def test_coarsening_check(self):
        fine = MSTForest.singletons(range(4))
        coarse = fine.merge_groups([([0, 1], [(0, 1)], 0)])
        assert_forest_coarsens(coarse, fine)
        with pytest.raises(VerificationError):
            assert_forest_coarsens(fine, coarse)


class TestComplexityChecks:
    def test_bounds_accept_real_runs(self, small_random_graph, small_path_graph):
        for graph in (small_random_graph, small_path_graph):
            assert_elkin_bounds(compute_mst(graph))

    def test_bounds_reject_inflated_costs(self, small_random_graph):
        result = compute_mst(small_random_graph)
        from repro.types import CostReport

        inflated = dataclasses.replace(
            result, cost=CostReport(rounds=result.rounds * 1000, messages=result.messages)
        )
        with pytest.raises(VerificationError, match="round count"):
            assert_elkin_bounds(inflated)
        inflated = dataclasses.replace(
            result, cost=CostReport(rounds=result.rounds, messages=result.messages * 1000)
        )
        with pytest.raises(VerificationError, match="message count"):
            assert_elkin_bounds(inflated)

    def test_bound_helpers_return_positive_values(self, small_random_graph):
        result = compute_mst(small_random_graph)
        assert elkin_time_bound(result) > 0
        assert elkin_message_bound(result) > 0


class TestBoundFormulas:
    def test_log_helpers(self):
        assert log2_ceil(1) == 1
        assert log2_ceil(8) == 3
        assert log2_ceil(9) == 4
        assert log_star(2) == 1
        # Convention: iterations of log2 until the value drops to <= 2.
        assert log_star(16) == 2
        assert log_star(65536) == 3

    def test_bounds_are_monotone_in_n(self):
        assert elkin_time_bound_formula(400, 10) > elkin_time_bound_formula(100, 10)
        assert elkin_message_bound_formula(400, 1200) > elkin_message_bound_formula(100, 300)
        assert controlled_ghs_time_bound(100, 16) > controlled_ghs_time_bound(100, 4)
        assert controlled_ghs_message_bound(100, 500, 16) > controlled_ghs_message_bound(100, 500, 4)
        assert gkp_message_bound(400, 1200) > gkp_message_bound(100, 300)
        assert ghs_time_bound(400) > ghs_time_bound(100)
        assert pipeline_phase_time_bound(400, 20, 20) > 0

    def test_bandwidth_reduces_the_time_bound(self):
        assert elkin_time_bound_formula(400, 5, bandwidth=16) < elkin_time_bound_formula(400, 5)


class TestFitting:
    def test_fit_recovers_known_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=0.01)
        assert fit.scale == pytest.approx(3.0, rel=0.05)
        assert fit.predict(100) == pytest.approx(3 * 100**1.5, rel=0.05)

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ReproError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ReproError):
            fit_power_law([1], [1])
        with pytest.raises(ReproError):
            fit_power_law([1, -2], [1, 2])

    def test_ratio_series(self):
        assert ratio_series([2, 9], [1, 3]) == [2.0, 3.0]
        with pytest.raises(ReproError):
            ratio_series([1], [1, 2])
        with pytest.raises(ReproError):
            ratio_series([1], [0])


class TestTables:
    def test_format_table_alignment_and_missing_values(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_float_rendering(self):
        text = format_table([{"value": 12345.678}, {"value": 0.5}])
        assert "1.23e+04" in text
        assert "0.5" in text


class TestExperimentRunners:
    def test_available_algorithms(self):
        assert set(available_algorithms(distributed_only=True)) == {
            "elkin", "ghs", "gkp", "prs",
        }
        # The sequential references are registered too (via the adapter).
        assert {"kruskal", "prim", "boruvka_seq"} <= set(available_algorithms())

    def test_run_single_unknown_algorithm(self, small_random_graph):
        with pytest.raises(ConfigurationError):
            run_single(small_random_graph, algorithm="bogus")

    def test_sweep_graphs_produces_bound_ratios(self):
        specs = [GraphSpec("random_connected", {"n": 30, "seed": 1})]
        rows = sweep_graphs(specs, algorithm="elkin")
        assert len(rows) == 1
        assert rows[0]["round_ratio"] <= 1.0
        assert rows[0]["message_ratio"] <= 1.0

    def test_compare_algorithms_rows(self, small_random_graph):
        rows = compare_algorithms(small_random_graph, algorithms=("elkin", "ghs"), label="t")
        assert [row["algorithm"] for row in rows] == ["elkin", "ghs"]
        assert rows[0]["weight"] == rows[1]["weight"]

    def test_sweep_bandwidth_rows(self):
        graph = random_connected_graph(40, seed=2)
        rows = sweep_bandwidth(graph, bandwidths=(1, 4), label="bw")
        assert [row["bandwidth"] for row in rows] == [1, 4]
        assert rows[1]["rounds"] <= rows[0]["rounds"]
