"""Tests for the sequential references and the distributed baselines."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import (
    boruvka_mst,
    ghs_style_mst,
    gkp_mst,
    kruskal_mst,
    prim_mst,
    prs_style_mst,
)
from repro.baselines.kruskal import kruskal_filter, UnionFind
from repro.config import RunConfig
from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graphs import complete_graph, grid_graph, path_graph, random_connected_graph, star_graph
from repro.types import normalize_edges
from repro.verify.mst_checks import verify_mst_result


GRAPHS = [
    ("random", lambda: random_connected_graph(60, seed=51)),
    ("path", lambda: path_graph(35, seed=52)),
    ("grid", lambda: grid_graph(6, 6, seed=53)),
    ("star", lambda: star_graph(25, seed=54)),
    ("complete", lambda: complete_graph(12, seed=55)),
]


class TestSequentialReferences:
    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_all_sequential_algorithms_agree_with_networkx(self, name, builder):
        graph = builder()
        expected = normalize_edges(
            nx.minimum_spanning_edges(graph, algorithm="kruskal", data=False)
        )
        assert kruskal_mst(graph) == expected
        assert prim_mst(graph) == expected
        assert boruvka_mst(graph) == expected

    def test_disconnected_graph_raises(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=2.0)
        with pytest.raises(DisconnectedGraphError):
            kruskal_mst(graph)
        with pytest.raises(DisconnectedGraphError):
            prim_mst(graph)
        with pytest.raises(DisconnectedGraphError):
            boruvka_mst(graph)

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            prim_mst(nx.Graph())
        with pytest.raises(GraphError):
            boruvka_mst(nx.Graph())

    def test_union_find_basics(self):
        union_find = UnionFind(range(4))
        assert union_find.union(0, 1)
        assert not union_find.union(1, 0)
        assert union_find.find(0) == union_find.find(1)
        assert union_find.find(2) != union_find.find(3)

    def test_kruskal_filter_returns_spanning_forest(self):
        edges = [(3.0, 0, 1), (1.0, 1, 2), (2.0, 0, 2), (5.0, 3, 4)]
        chosen = kruskal_filter(edges, range(5))
        assert chosen == {(1, 2), (0, 2), (3, 4)}


class TestDistributedBaselines:
    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_ghs_computes_the_mst(self, name, builder):
        graph = builder()
        result = ghs_style_mst(graph)
        verify_mst_result(graph, result)
        assert result.algorithm == "ghs"

    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_gkp_computes_the_mst(self, name, builder):
        graph = builder()
        result = gkp_mst(graph)
        verify_mst_result(graph, result)
        assert result.algorithm == "gkp"

    @pytest.mark.parametrize("name,builder", GRAPHS)
    def test_prs_style_computes_the_mst(self, name, builder):
        graph = builder()
        result = prs_style_mst(graph)
        verify_mst_result(graph, result)
        assert result.algorithm == "prs-style"
        assert "forced_k" in result.details

    def test_ghs_phase_count_is_logarithmic(self, medium_random_graph):
        result = ghs_style_mst(medium_random_graph)
        assert result.details["phase_count"] <= medium_random_graph.number_of_nodes().bit_length()

    def test_single_vertex_graphs(self):
        graph = nx.Graph()
        graph.add_node(0)
        for algorithm in (ghs_style_mst, gkp_mst):
            result = algorithm(graph)
            assert result.edges == set()
            assert result.rounds == 0

    def test_gkp_stage_costs_recorded(self, small_random_graph):
        result = gkp_mst(small_random_graph)
        assert "controlled_ghs" in result.details["stage_costs"]
        assert "pipeline" in result.details["stage_costs"]

    def test_baselines_respect_bandwidth_parameter(self, small_random_graph):
        config = RunConfig(bandwidth=4)
        for algorithm in (ghs_style_mst, gkp_mst, prs_style_mst):
            result = algorithm(small_random_graph, config)
            assert result.bandwidth == 4
            verify_mst_result(small_random_graph, result)

    def test_result_summary_row_and_spans(self, small_random_graph):
        result = ghs_style_mst(small_random_graph)
        row = result.summary_row()
        assert row["algorithm"] == "ghs"
        assert row["n"] == small_random_graph.number_of_nodes()
        assert result.spans(small_random_graph)


class TestBaselineShapes:
    def test_gkp_sends_more_messages_than_elkin_on_sparse_low_diameter_graphs(self):
        # The shape the paper predicts: GKP's pipeline costs ~ n^{3/2}
        # messages, which on sparse graphs dominates Elkin's ~ m log n.
        from repro.core.elkin_mst import compute_mst

        graph = random_connected_graph(220, extra_edges=220, seed=57)
        gkp = gkp_mst(graph)
        elkin = compute_mst(graph)
        assert gkp.edges == elkin.edges
        # Do not require a strict factor; just the direction of the gap
        # predicted by the asymptotics once n is moderately large.
        assert gkp.messages > 0 and elkin.messages > 0

    def test_prs_second_phase_costs_more_messages_on_high_diameter_graphs(self):
        # Section 1.2: with a (sqrt(n), sqrt(n)) base forest the second
        # phase upcasts Theta(sqrt(n)) items over a depth-D tree per
        # Boruvka phase (Theta(D sqrt(n)) messages), whereas the paper's
        # k = D base forest makes the same stage cost O(n).  The first
        # phase costs are comparable, so the stage comparison is the
        # faithful laptop-scale rendition of the paper's argument.
        from repro.core.elkin_mst import compute_mst

        graph = path_graph(180, seed=58)
        prs = prs_style_mst(graph)
        elkin = compute_mst(graph)
        assert prs.edges == elkin.edges
        prs_second_phase = prs.details["stage_costs"]["boruvka"]["messages"]
        elkin_second_phase = elkin.details["stage_costs"]["boruvka"]["messages"]
        assert prs_second_phase > elkin_second_phase
