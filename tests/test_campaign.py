"""Tests for the campaign orchestration layer.

Covers the declarative layer (grid expansion, spec serialization and
content hashing), the execution layer (serial-versus-parallel row
equality), the persistence layer (JSONL round-trip, resume semantics,
the graph-description cache) and the satellite guarantees: result
round-tripping and config threading through ``run_single``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import run_single
from repro.campaign import (
    available_presets,
    Campaign,
    execute_campaign,
    preset_campaign,
    RunSpec,
    RunStore,
)
from repro.campaign.spec import graph_spec_for, inline_graph_spec
from repro.core.results import MSTRunResult
from repro.exceptions import ConfigurationError
from repro.graphs import GraphSpec, random_connected_graph


def _tiny_grid(cells_16: bool = True) -> Campaign:
    """A small deterministic grid; 16 cells when ``cells_16``."""
    graphs = [
        graph_spec_for("random_connected", 20),
        graph_spec_for("grid", 16),
    ]
    return Campaign.from_grid(
        "tiny",
        graphs,
        algorithms=("elkin", "ghs") if cells_16 else ("elkin",),
        bandwidths=(1, 2) if cells_16 else (1,),
        seeds=(0, 1) if cells_16 else (0,),
    )


class TestRunSpec:
    def test_json_round_trip(self):
        spec = RunSpec(
            graph=GraphSpec("random_connected", {"n": 30}),
            algorithm="ghs",
            bandwidth=4,
            engine="fast",
            seed=7,
            base_forest_k=3,
            label="roundtrip",
        )
        clone = RunSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
        assert clone == spec
        assert clone.run_key() == spec.run_key()

    def test_seed_axis_overrides_graph_seed(self):
        spec = RunSpec(graph=GraphSpec("path", {"n": 10, "seed": 0}), seed=5)
        assert spec.effective_graph_spec().params["seed"] == 5
        # ... and distinct seeds give distinct cells.
        other = RunSpec(graph=GraphSpec("path", {"n": 10, "seed": 0}), seed=6)
        assert other.run_key() != spec.run_key()

    def test_seed_axis_rejected_for_edge_list_graphs(self):
        graph = random_connected_graph(10, seed=1)
        with pytest.raises(ConfigurationError, match="seed axis"):
            RunSpec(graph=inline_graph_spec(graph), seed=3)

    def test_determinism_classification(self):
        assert RunSpec(graph=GraphSpec("path", {"n": 10, "seed": 0})).is_deterministic()
        assert RunSpec(graph=GraphSpec("path", {"n": 10}), seed=2).is_deterministic()
        assert RunSpec(
            graph=inline_graph_spec(random_connected_graph(8, seed=1))
        ).is_deterministic()
        # No pinned seed anywhere: weights (and structure) are random.
        assert not RunSpec(graph=GraphSpec("path", {"n": 10})).is_deterministic()

    def test_label_is_not_part_of_the_identity(self):
        base = RunSpec(graph=GraphSpec("path", {"n": 10}))
        relabeled = RunSpec(graph=GraphSpec("path", {"n": 10}), label="pretty")
        assert base.run_key() == relabeled.run_key()

    def test_graph_key_ignores_algorithm(self):
        a = RunSpec(graph=GraphSpec("path", {"n": 10}), algorithm="elkin")
        b = RunSpec(graph=GraphSpec("path", {"n": 10}), algorithm="ghs")
        assert a.graph_key() == b.graph_key()
        assert a.run_key() != b.run_key()

    def test_inline_spec_keeps_non_zero_indexed_labels(self):
        """Regression: 1-indexed graphs must not grow a spurious node 0."""
        import networkx as nx

        from repro.analysis.experiments import compare_algorithms

        graph = nx.Graph()
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(2, 3, weight=2.0)
        rebuilt = inline_graph_spec(graph).build()
        assert sorted(rebuilt.nodes()) == [1, 2, 3]
        rows = compare_algorithms(graph, algorithms=("elkin",), label="shifted")
        assert rows[0]["n"] == 3

    def test_inline_spec_round_trips_the_graph(self):
        graph = random_connected_graph(18, seed=3)
        spec = inline_graph_spec(graph)
        rebuilt = spec.build()
        assert rebuilt.number_of_nodes() == graph.number_of_nodes()
        normalize = lambda edges: {tuple(sorted(edge)) for edge in edges}
        assert normalize(rebuilt.edges()) == normalize(graph.edges())
        for u, v, data in graph.edges(data=True):
            assert rebuilt[u][v]["weight"] == data["weight"]


class TestCampaignGrid:
    def test_cross_product_size_and_determinism(self):
        campaign = _tiny_grid()
        assert len(campaign) == 2 * 2 * 2 * 2
        again = _tiny_grid()
        assert campaign.run_keys() == again.run_keys()
        # All cells are distinct.
        assert len(set(campaign.run_keys())) == len(campaign)

    def test_expansion_order_is_graph_major(self):
        campaign = _tiny_grid()
        families = [spec.graph.family for spec in campaign.specs]
        assert families == ["random_connected"] * 8 + ["grid"] * 8

    def test_labels_must_match_graphs(self):
        with pytest.raises(ConfigurationError):
            Campaign.from_grid(
                "bad", [graph_spec_for("path", 8)], labels=["a", "b"]
            )

    def test_with_engine_retargets_every_cell(self):
        campaign = _tiny_grid().with_engine("fast")
        assert all(spec.engine == "fast" for spec in campaign.specs)

    def test_distinct_graph_keys_per_seed(self):
        campaign = _tiny_grid()
        # 2 graphs x 2 seeds = 4 distinct instances.
        assert len({spec.graph_key() for spec in campaign.specs}) == 4

    def test_graph_spec_for_unknown_family(self):
        with pytest.raises(ConfigurationError):
            graph_spec_for("dodecahedron", 8)

    def test_graph_spec_for_shapes_non_n_families(self):
        assert graph_spec_for("grid", 16).params == {"rows": 4, "cols": 4}
        lollipop = graph_spec_for("lollipop", 40)
        assert lollipop.params["clique_size"] >= 3


class TestPresets:
    def test_all_presets_materialize(self):
        for name in available_presets():
            campaign = preset_campaign(name)
            assert len(campaign) > 0
            assert len(set(campaign.run_keys())) == len(campaign)

    def test_smoke_preset_is_a_16_cell_grid(self):
        assert len(preset_campaign("smoke")) == 16

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            preset_campaign("e99")

    def test_engine_retarget(self):
        campaign = preset_campaign("smoke", engine="fast")
        assert all(spec.engine == "fast" for spec in campaign.specs)


class TestExecutorEquivalence:
    def test_parallel_rows_identical_to_serial(self):
        """Acceptance: --jobs 4 over a >= 16-cell grid == serial, row for row."""
        campaign = _tiny_grid()
        assert len(campaign) >= 16
        serial = execute_campaign(campaign, jobs=1)
        parallel = execute_campaign(campaign, jobs=4)
        assert serial.rows == parallel.rows
        assert serial.executed == parallel.executed == len(campaign)

    def test_rows_are_in_campaign_order(self):
        campaign = _tiny_grid()
        report = execute_campaign(campaign, jobs=2)
        expected = [
            (spec.display_label(), spec.algorithm, spec.bandwidth, spec.seed)
            for spec in campaign.specs
        ]
        observed = [
            (row["graph"], row["algorithm"], row["bandwidth"], row["seed"])
            for row in report.rows
        ]
        assert observed == expected

    def test_rows_record_provenance_columns(self):
        campaign = _tiny_grid(cells_16=False)
        report = execute_campaign(campaign, jobs=1)
        for row in report.rows:
            assert row["engine"] == "reference"
            assert row["seed"] == 0

    def test_elkin_rows_carry_bound_ratios(self):
        campaign = Campaign.from_grid(
            "bounds", [graph_spec_for("random_connected", 24)], seeds=(0,)
        )
        (row,) = execute_campaign(campaign).rows
        assert row["round_ratio"] <= 1.0
        assert row["message_ratio"] <= 1.0

    def test_invalid_jobs(self):
        with pytest.raises(ConfigurationError):
            execute_campaign(_tiny_grid(cells_16=False), jobs=0)


class TestRunStore:
    def test_resume_executes_zero_new_simulations(self, tmp_path):
        """Acceptance: re-running the same campaign with resume is a no-op."""
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid()
        first = execute_campaign(campaign, store=RunStore(path), jobs=4)
        assert first.executed == len(campaign) and first.reused == 0

        resumed = execute_campaign(campaign, store=RunStore(path), jobs=4)
        assert resumed.executed == 0
        assert resumed.reused == len(campaign)
        assert resumed.described == 0  # graph descriptions cached too
        assert resumed.rows == first.rows
        # The file did not grow: nothing was appended on resume.
        lines_after = path.read_text().count("\n")
        assert lines_after == len(campaign) + first.described

    def test_resume_reverifies_cells_stored_without_verification(self, tmp_path):
        """A --no-verify store must not satisfy a verifying resume."""
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid(cells_16=False)
        execute_campaign(campaign, store=RunStore(path), verify=False)
        verified = execute_campaign(campaign, store=RunStore(path), verify=True)
        assert verified.executed == len(campaign) and verified.reused == 0
        # ... and once verified, a verifying resume reuses everything.
        again = execute_campaign(campaign, store=RunStore(path), verify=True)
        assert again.executed == 0

    def test_stored_rows_are_isolated_from_caller_mutation(self, tmp_path):
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid(cells_16=False)
        report = execute_campaign(campaign, store=RunStore(path))
        report.rows[0]["presentation-only"] = 1.0
        key = campaign.specs[0].run_key()
        assert "presentation-only" not in report.store.get_row(key)

    def test_resume_false_reexecutes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid(cells_16=False)
        execute_campaign(campaign, store=RunStore(path))
        fresh = execute_campaign(campaign, store=RunStore(path), resume=False)
        assert fresh.executed == len(campaign)

    def test_partial_resume(self, tmp_path):
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid()
        half = Campaign("half", campaign.specs[:8])
        execute_campaign(half, store=RunStore(path))
        report = execute_campaign(campaign, store=RunStore(path))
        assert report.reused == 8
        assert report.executed == len(campaign) - 8

    def test_store_round_trip_of_rows_results_and_provenance(self, tmp_path):
        path = tmp_path / "store.jsonl"
        campaign = _tiny_grid(cells_16=False)
        report = execute_campaign(campaign, store=RunStore(path))

        reloaded = RunStore(path)
        assert len(reloaded) == len(campaign)
        for spec, row in zip(campaign.specs, report.rows):
            key = spec.run_key()
            assert reloaded.has_run(key)
            assert reloaded.get_row(key) == row
            assert reloaded.get_spec(key) == spec
            result = reloaded.get_result(key)
            assert result.algorithm == spec.algorithm
            assert result.rounds == row["rounds"]
            assert result.messages == row["messages"]
            provenance = reloaded.get_provenance(key)
            # jobs=1 executions batch by default and stamp that fact.
            assert provenance["executor"] == "batched"
            assert provenance["verified"] is True
            assert provenance["package_version"]

    def test_graph_description_cache_shared_across_campaigns(self, tmp_path):
        path = tmp_path / "store.jsonl"
        graphs = [graph_spec_for("random_connected", 20)]
        first = Campaign.from_grid("a", graphs, algorithms=("elkin",), seeds=(0,))
        second = Campaign.from_grid("b", graphs, algorithms=("ghs",), seeds=(0,))
        one = execute_campaign(first, store=RunStore(path))
        two = execute_campaign(second, store=RunStore(path))
        assert one.described == 1
        assert two.described == 0  # hop-diameter reused from the store

    def test_nondeterministic_cells_never_share_descriptions(self, tmp_path):
        """Seedless random specs describe the exact graph they simulate."""
        path = tmp_path / "store.jsonl"
        campaign = Campaign.from_grid(
            "seedless", [GraphSpec("random_connected", {"n": 20})], seeds=(None,)
        )
        report = execute_campaign(campaign, store=RunStore(path))
        assert report.described == 0
        assert RunStore(path).graph_keys() == []  # nothing cached
        (row,) = report.rows
        assert row["m"] > 0 and "D" in row  # described in-worker all the same
        key = campaign.specs[0].run_key()
        assert report.store.get_provenance(key)["deterministic"] is False

    def test_description_cache_upgrades_to_include_diameter(self, tmp_path):
        """Regression: a D-less cached description must not poison later sweeps."""
        path = tmp_path / "store.jsonl"
        graphs = [graph_spec_for("random_connected", 20)]
        first = Campaign.from_grid("a", graphs, algorithms=("elkin",), seeds=(0,))
        execute_campaign(first, store=RunStore(path), compute_diameter=False)
        second = Campaign.from_grid("b", graphs, algorithms=("ghs",), seeds=(0,))
        report = execute_campaign(second, store=RunStore(path), compute_diameter=True)
        assert report.described == 1  # recomputed with the hop-diameter
        assert "D" in report.rows[0]

    def test_corrupt_store_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            RunStore(path)

    def test_in_memory_store_writes_nothing(self, tmp_path):
        campaign = _tiny_grid(cells_16=False)
        execute_campaign(campaign, store=RunStore(None))
        assert list(tmp_path.iterdir()) == []


class TestResultRoundTrip:
    def test_result_json_round_trip(self, small_random_graph):
        result = run_single(small_random_graph, seed=11)
        clone = MSTRunResult.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert clone.algorithm == result.algorithm
        assert clone.edges == result.edges
        assert clone.total_weight == result.total_weight
        assert clone.cost.rounds == result.cost.rounds
        assert clone.cost.messages == result.cost.messages
        assert clone.cost.words == result.cost.words
        assert clone.n == result.n and clone.m == result.m
        assert clone.bandwidth == result.bandwidth
        assert len(clone.phases) == len(result.phases)
        for ours, theirs in zip(clone.phases, result.phases):
            assert ours.phase == theirs.phase
            assert ours.rounds == theirs.rounds
            assert ours.messages == theirs.messages
        assert clone.details["k"] == result.details["k"]
        assert clone.details["seed"] == 11


class TestRunSingleThreading:
    """Satellite: seed / collect_telemetry / strict_bounds reach RunConfig."""

    def test_seed_recorded_in_details(self, small_random_graph):
        result = run_single(small_random_graph, seed=42)
        assert result.details["seed"] == 42

    def test_telemetry_can_be_disabled(self, small_random_graph):
        assert run_single(small_random_graph).phases
        assert run_single(small_random_graph, collect_telemetry=False).phases == []

    def test_strict_bounds_passes_on_a_conforming_run(self, small_random_graph):
        result = run_single(small_random_graph, strict_bounds=True)
        assert result.spans(small_random_graph)

    def test_unknown_algorithm_still_rejected(self, small_random_graph):
        with pytest.raises(ConfigurationError):
            run_single(small_random_graph, algorithm="bogus")
