"""Tests for the protocol driver and the RootedForest structure."""

from __future__ import annotations

import pytest

from repro.exceptions import ConvergenceError, ProtocolError
from repro.graphs import path_graph
from repro.simulator.network import SyncNetwork
from repro.simulator.primitives.trees import RootedForest
from repro.simulator.protocol import NodeProtocol, run_protocol, run_protocols_sequentially


class _RelayProtocol(NodeProtocol):
    """Vertex 0 sends a token along a path; every vertex finishes on receipt."""

    name = "relay"

    def __init__(self, network):
        super().__init__(network.vertices())
        self.received_at = {}

    def on_start(self, vertex, node, api):
        if vertex == 0:
            api.send(0, 1, "token", payload=(0,))
            self.received_at[0] = 0
            api.finish(0)

    def on_round(self, vertex, node, api, inbox):
        for message in inbox:
            self.received_at[vertex] = message.payload[0] + 1
            successor = vertex + 1
            if successor in node.edge_weights:
                api.send(vertex, successor, "token", payload=(self.received_at[vertex],))
        if vertex in self.received_at:
            api.finish(vertex)

    def result(self, network):
        return dict(self.received_at)


class _NeverFinishesProtocol(NodeProtocol):
    name = "stuck"

    def on_start(self, vertex, node, api):
        pass

    def on_round(self, vertex, node, api, inbox):
        pass

    def result(self, network):
        return None


class TestProtocolDriver:
    def test_relay_reaches_every_vertex_and_counts_rounds(self):
        network = SyncNetwork(path_graph(6, seed=0))
        protocol = _RelayProtocol(network)
        hops = run_protocol(network, protocol)
        assert hops == {vertex: vertex for vertex in range(6)}
        # One round per hop along the path.
        assert network.round == 5
        assert network.metrics.messages == 5

    def test_scratch_space_is_cleared_after_the_run(self):
        network = SyncNetwork(path_graph(4, seed=0))
        run_protocol(network, _RelayProtocol(network))
        assert all(not network.node(v).memory for v in network.vertices())

    def test_non_terminating_protocol_raises_convergence_error(self):
        network = SyncNetwork(path_graph(3, seed=0))
        with pytest.raises(ConvergenceError):
            run_protocol(network, _NeverFinishesProtocol(network.vertices()), max_rounds=10)

    def test_protocol_requires_participants(self):
        with pytest.raises(ProtocolError):
            _NeverFinishesProtocol([])

    def test_sequential_composition_accumulates_costs(self):
        network = SyncNetwork(path_graph(5, seed=0))
        run_protocols_sequentially(network, [_RelayProtocol(network), _RelayProtocol(network)])
        assert network.round == 8
        assert network.metrics.messages == 8


class TestRootedForest:
    def test_basic_structure(self):
        forest = RootedForest(parent={0: None, 1: 0, 2: 0, 3: 1, 4: None, 5: 4})
        assert forest.roots == (0, 4)
        assert forest.children[0] == (1, 2)
        assert forest.depth[3] == 2
        assert forest.height == 2
        assert forest.size == 6
        assert forest.is_root(4) and not forest.is_root(5)
        assert forest.is_leaf(3) and not forest.is_leaf(0)

    def test_root_of_and_path_to_root(self):
        forest = RootedForest(parent={0: None, 1: 0, 2: 1, 3: 2})
        assert forest.root_of(3) == 0
        assert forest.path_to_root(3) == [3, 2, 1, 0]

    def test_tree_vertices_in_bfs_order(self):
        forest = RootedForest(parent={0: None, 1: 0, 2: 0, 3: 1})
        assert forest.tree_vertices(0) == [0, 1, 2, 3]
        with pytest.raises(ProtocolError):
            forest.tree_vertices(1)

    def test_orders(self):
        forest = RootedForest(parent={0: None, 1: 0, 2: 1})
        assert forest.top_down_order() == [0, 1, 2]
        assert forest.bottom_up_order() == [2, 1, 0]

    def test_edges_are_child_parent_pairs(self):
        forest = RootedForest(parent={0: None, 1: 0})
        assert forest.edges() == [(1, 0)]

    def test_rejects_cycles(self):
        with pytest.raises(ProtocolError):
            RootedForest(parent={0: 1, 1: 0})

    def test_rejects_self_parent(self):
        with pytest.raises(ProtocolError):
            RootedForest(parent={0: 0})

    def test_rejects_unknown_parent(self):
        with pytest.raises(ProtocolError):
            RootedForest(parent={0: None, 1: 7})

    def test_rejects_empty_forest(self):
        with pytest.raises(ProtocolError):
            RootedForest(parent={})

    def test_single_tree_helper(self):
        with pytest.raises(ProtocolError):
            RootedForest.single_tree({0: None, 1: None})
        tree = RootedForest.single_tree({0: None, 1: 0})
        assert tree.roots == (0,)

    def test_from_parent_pairs(self):
        forest = RootedForest.from_parent_pairs([(0, None), (1, 0)])
        assert forest.size == 2
