"""Error-path coverage for :mod:`repro.exceptions` across the layers.

Asserts two properties of every name-lookup failure (algorithm, engine,
preset, graph family): the raised type sits in the ``ReproError``
hierarchy, and the message *lists the available options*, so a sweep
typo is a one-glance fix.  Also covers the exception taxonomy itself and
the actionable messages of scenario validation.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro import GraphSpec, RunConfig
from repro.algorithms import algorithm_info, available_algorithms, run_algorithm
from repro.api import Scenario
from repro.campaign.presets import available_presets, preset_campaign
from repro.campaign.spec import graph_spec_for
from repro.exceptions import (
    ConfigurationError,
    DisconnectedGraphError,
    GraphError,
    ReproError,
)
from repro.graphs.generators import make_graph, random_connected_graph
from repro.simulator.engine import available_engines, create_engine


class TestUnknownNamesListOptions:
    def test_unknown_algorithm_lists_all_registered(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_algorithm(random_connected_graph(6, seed=0), "bellman-ford", RunConfig())
        message = str(excinfo.value)
        for name in available_algorithms():
            assert name in message

    def test_algorithm_info_raises_the_same_message(self):
        with pytest.raises(ConfigurationError, match="available:"):
            algorithm_info("bogus")

    def test_unknown_engine_lists_all_registered(self):
        with pytest.raises(ConfigurationError) as excinfo:
            create_engine(random_connected_graph(6, seed=0), engine="hyperdrive")
        message = str(excinfo.value)
        for name in available_engines():
            assert name in message

    def test_unknown_preset_lists_all_presets(self):
        with pytest.raises(ConfigurationError) as excinfo:
            preset_campaign("e99-imaginary")
        message = str(excinfo.value)
        for name in available_presets():
            assert name in message

    def test_unknown_family_lists_known_families(self):
        with pytest.raises(GraphError, match="random_connected"):
            make_graph("mystery", n=10)
        with pytest.raises(ConfigurationError, match="known families"):
            graph_spec_for("mystery", 10)


class TestErrorHierarchy:
    def test_every_lookup_error_is_a_repro_error(self):
        for raiser in (
            lambda: run_algorithm(random_connected_graph(5, seed=0), "nope", RunConfig()),
            lambda: create_engine(random_connected_graph(5, seed=0), engine="nope"),
            lambda: preset_campaign("nope"),
            lambda: make_graph("nope", n=5),
        ):
            with pytest.raises(ReproError):
                raiser()

    def test_configuration_error_is_catchable_as_base(self):
        try:
            RunConfig(bandwidth=0)
        except ReproError as error:
            assert isinstance(error, ConfigurationError)
        else:  # pragma: no cover - the construction must raise
            pytest.fail("RunConfig(bandwidth=0) did not raise")


class TestScenarioValidationMessages:
    def test_disconnected_graph_message_is_actionable(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=2.0)
        graph.add_edge(4, 5, weight=3.0)
        with pytest.raises(DisconnectedGraphError) as excinfo:
            Scenario(graph=graph)
        message = str(excinfo.value)
        assert "3 components" in message
        assert "connected" in message

    def test_bandwidth_message_names_the_model(self):
        config = RunConfig()
        config.bandwidth = -2
        with pytest.raises(ConfigurationError, match="CONGEST"):
            Scenario(graph=GraphSpec("path", {"n": 4, "seed": 0}), config=config)

    def test_config_type_error_names_the_offender(self):
        from repro.config import normalize_config

        with pytest.raises(ConfigurationError, match="int"):
            normalize_config(4)  # a classic: bandwidth passed positionally
