"""Columnar (sqlite) run-store backend and incremental materialization.

The equivalence matrix here is the gate ROADMAP item 5 demands: the
JSONL file, sharded-directory and columnar backends must produce
identical rows, identical ``CampaignAnalysis`` output and an identical
rendered EXPERIMENTS.md from the same campaign, and ``store convert``
round trips must be byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.fitting import fit_power_law
from repro.analysis.incremental import MaterializedAnalytics, PowerLawStats, verify_summary
from repro.analysis.report import analyze_rows, analyze_store, render_markdown
from repro.campaign import (
    Campaign,
    ColumnarStore,
    convert_store,
    execute_campaign,
    graph_spec_for,
    open_store,
    RunStore,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import detect_backend
from repro.cli import main
from repro.exceptions import ConfigurationError, ReproError

GOLDEN_ROWS = Path(__file__).parent / "golden_rows.jsonl"


def _golden_rows() -> list:
    with GOLDEN_ROWS.open("r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _campaign(sizes=(8, 12, 16), algorithms=("elkin", "prs")) -> Campaign:
    return Campaign.from_grid(
        "columnar-suite",
        graphs=[graph_spec_for("random_connected", n, seed=1) for n in sizes],
        algorithms=algorithms,
        seeds=(0,),
    )


def _spec(index: int) -> RunSpec:
    return RunSpec(
        graph=graph_spec_for("random_connected", 16, seed=index),
        algorithm="elkin",
        collect_telemetry=False,
    )


def _store_with_golden_rows(store) -> None:
    """Record every golden row (one synthetic spec per row) and close."""
    for index, row in enumerate(_golden_rows()):
        store.record_run(_spec(index), row, {"row": index}, {"executor": "test"})
    store.close()


def _rows_sha256(store_path: Path) -> str:
    with open_store(store_path, read_only=True) as store:
        payload = json.dumps(list(store.iter_rows()), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestBackendSelection:
    def test_fresh_suffixes_select_columnar(self, tmp_path):
        for name in ("a.sqlite", "b.sqlite3", "c.db", "d.SQLITE"):
            assert detect_backend(tmp_path / name) == "columnar"
        for name in ("a.jsonl", "b.ndjson", "c.json", "plain-dir"):
            assert detect_backend(tmp_path / name) == "jsonl"

    def test_existing_files_classified_by_magic_not_suffix(self, tmp_path):
        disguised = tmp_path / "runs.jsonl"
        with ColumnarStore(disguised) as store:
            store.record_graph("g", {"n": 4, "m": 3})
        assert detect_backend(disguised) == "columnar"
        plain = tmp_path / "runs.sqlite"
        plain.write_text('{"kind": "graph", "key": "g", "description": {}}\n')
        assert detect_backend(plain) == "jsonl"
        assert isinstance(open_store(disguised, read_only=True), ColumnarStore)

    def test_directories_stay_jsonl(self, tmp_path):
        target = tmp_path / "shards"
        target.mkdir()
        assert detect_backend(target) == "jsonl"
        with pytest.raises(ConfigurationError, match="directory"):
            ColumnarStore(target)

    def test_open_store_rejects_unknown_backend_and_memory_columnar(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            open_store(tmp_path / "x.sqlite", backend="parquet")
        with pytest.raises(ConfigurationError, match="on-disk path"):
            open_store(None, backend="columnar")

    def test_columnar_open_on_jsonl_file_fails_loudly(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"kind": "graph", "key": "g", "description": {}}\n')
        with pytest.raises(ConfigurationError, match="not a columnar run store"):
            ColumnarStore(path)


class TestColumnarContract:
    @pytest.mark.parametrize("durability", ("record", "batch", "none"))
    def test_sweep_persists_and_reloads_under_every_level(self, tmp_path, durability):
        path = tmp_path / "runs.sqlite"
        store = ColumnarStore(path, durability=durability)
        report = execute_campaign(_campaign(), store=store)
        store.close()
        reloaded = ColumnarStore(path)
        assert list(reloaded.iter_rows()) == report.rows
        assert len(reloaded) == len(report.rows)
        reloaded.close()

    def test_record_durability_commits_every_append(self, tmp_path):
        store = ColumnarStore(tmp_path / "runs.sqlite", durability="record")
        for index in range(3):
            store.record_run(_spec(index), {"graph": "g"}, {}, {})
        assert store.stats["commits"] == 3
        assert store.stats["fsyncs"] == 3
        store.close()

    def test_batch_appends_buffer_until_flush(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        store = ColumnarStore(path, durability="batch", batch_size=64)
        for index in range(5):
            store.record_run(_spec(index), {"graph": "g", "i": index}, {}, {})
        assert store.stats["commits"] == 0
        # Uncommitted appends are invisible to a second connection but
        # answer point reads on this one (resume needs that).
        with ColumnarStore(path, read_only=True) as other:
            assert len(other) == 0
        assert store.get_row(_spec(2).run_key())["i"] == 2
        store.flush()
        assert store.stats["commits"] == 1
        with ColumnarStore(path, read_only=True) as other:
            assert len(other) == 5
        store.close()

    def test_batch_size_triggers_automatic_commit(self, tmp_path):
        store = ColumnarStore(tmp_path / "runs.sqlite", batch_size=2)
        for index in range(4):
            store.record_run(_spec(index), {"graph": "g"}, {}, {})
        assert store.stats["commits"] == 2
        store.close()

    def test_point_lookups_roundtrip(self, tmp_path):
        store = ColumnarStore(tmp_path / "runs.sqlite")
        campaign = _campaign(sizes=(8,), algorithms=("elkin",))
        execute_campaign(campaign, store=store)
        key = campaign.specs[0].run_key()
        assert store.has_run(key) and key in store
        assert store.get_spec(key) == campaign.specs[0]
        assert store.get_row(key)["algorithm"] == "elkin"
        assert store.get_provenance(key)["verified"] is True
        assert store.get_result(key).algorithm == "elkin"
        assert store.run_keys() == [key]
        store.close()

    def test_resume_skips_existing_cells(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        campaign = _campaign()
        with ColumnarStore(path) as store:
            execute_campaign(campaign, store=store)
            first = store._physical_records
        with ColumnarStore(path) as store:
            report = execute_campaign(campaign, store=store, resume=True)
            assert sorted(report.reused_indexes) == list(range(len(campaign.specs)))
            assert store._physical_records == first

    def test_last_record_wins_and_first_seen_order(self, tmp_path):
        jsonl = RunStore(tmp_path / "runs.jsonl")
        columnar = ColumnarStore(tmp_path / "runs.sqlite")
        for store in (jsonl, columnar):
            store.record_run(_spec(0), {"graph": "a", "v": 1}, {}, {})
            store.record_run(_spec(1), {"graph": "b", "v": 2}, {}, {})
            store.record_run(_spec(0), {"graph": "a", "v": 3}, {}, {})
            store.close()
        with RunStore(tmp_path / "runs.jsonl") as jsonl:
            with ColumnarStore(tmp_path / "runs.sqlite") as columnar:
                assert list(columnar.iter_rows()) == list(jsonl.iter_rows())
                assert [row["v"] for row in columnar.iter_rows()] == [3, 2]

    def test_returned_rows_are_detached_copies(self, tmp_path):
        store = ColumnarStore(tmp_path / "runs.sqlite")
        store.record_run(_spec(0), {"graph": "g", "nested": {"xs": [1]}}, {}, {"p": 1})
        key = _spec(0).run_key()
        store.get_row(key)["nested"]["xs"].append(99)
        next(iter(store.iter_rows()))["nested"]["xs"].append(99)
        store.get_provenance(key)["p"] = 2
        assert store.get_row(key) == {"graph": "g", "nested": {"xs": [1]}}
        assert store.get_provenance(key) == {"p": 1}
        store.close()

    def test_compact_drops_superseded_and_is_idempotent(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        store = ColumnarStore(path)
        for value in range(3):
            store.record_run(_spec(0), {"graph": "g", "v": value}, {}, {})
        store.record_graph("gk", {"n": 4, "m": 3})
        stats = store.compact()
        assert stats == {"before": 4, "after": 2, "dropped": 2}
        assert store.compact()["dropped"] == 0
        assert store.get_row(_spec(0).run_key())["v"] == 2
        # The store keeps appending after a compact.
        store.record_run(_spec(1), {"graph": "h"}, {}, {})
        store.close()
        with ColumnarStore(path) as reloaded:
            assert len(reloaded) == 2
            assert reloaded.graph_description("gk") == {"n": 4, "m": 3}

    def test_read_only_requires_existing_path_and_rejects_writes(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no run store"):
            ColumnarStore(tmp_path / "missing.sqlite", read_only=True)
        path = tmp_path / "runs.sqlite"
        with ColumnarStore(path) as store:
            store.record_run(_spec(0), {"graph": "g"}, {}, {})
        with ColumnarStore(path, read_only=True) as store:
            assert len(store) == 1
            with pytest.raises(ConfigurationError, match="read_only"):
                store.record_run(_spec(1), {"graph": "h"}, {}, {})
            with pytest.raises(ConfigurationError, match="read_only"):
                store.compact()
            with pytest.raises(ConfigurationError, match="read_only"):
                store.merge_from(tmp_path / "other.sqlite")


class TestCrossBackendMerge:
    def _populate(self, store, start, count):
        for index in range(start, start + count):
            store.record_run(_spec(index), {"graph": f"g{index}"}, {}, {})
        store.record_graph(f"graph-{start}", {"n": start, "m": start})
        store.close()

    @pytest.mark.parametrize(
        "dest_name,src_name",
        [
            ("dest.sqlite", "src.jsonl"),
            ("dest.jsonl", "src.sqlite"),
            ("dest.sqlite", "src.sqlite"),
        ],
    )
    def test_merge_any_backend_pairing_is_idempotent(self, tmp_path, dest_name, src_name):
        dest_path, src_path = tmp_path / dest_name, tmp_path / src_name
        self._populate(open_store(dest_path), 0, 2)
        self._populate(open_store(src_path), 1, 2)
        with open_store(dest_path) as dest:
            stats = dest.merge_from(src_path)
            assert stats == {"runs": 1, "graphs": 1, "skipped": 1}
            assert dest.merge_from(src_path)["runs"] == 0
            assert len(dest) == 3
            assert {row["graph"] for row in dest.iter_rows()} == {"g0", "g1", "g2"}

    def test_self_merge_rejected_across_path_spellings(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        self._populate(ColumnarStore(path), 0, 1)
        link = tmp_path / "alias.sqlite"
        link.symlink_to(path)
        with ColumnarStore(path) as store:
            with pytest.raises(ConfigurationError, match="into itself"):
                store.merge_from(link)
            with pytest.raises(ConfigurationError, match="into itself"):
                store.merge_from(store)


class TestEquivalenceMatrix:
    """JSONL file / sharded dir / columnar: one campaign, identical output."""

    @pytest.fixture(scope="class")
    def matrix(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("matrix")
        campaign = _campaign()
        paths = {
            "jsonl": tmp / "runs.jsonl",
            "sharded": tmp / "runs-dir",
            "columnar": tmp / "runs.sqlite",
        }
        for backend, path in paths.items():
            kwargs = {"shard_records": 4} if backend == "sharded" else {}
            store = open_store(path, **kwargs)
            execute_campaign(campaign, store=store)
            store.close()
        return paths

    def test_rows_identical_across_backends(self, matrix):
        rows = {
            name: list(open_store(path, read_only=True).iter_rows())
            for name, path in matrix.items()
        }
        assert rows["jsonl"] == rows["sharded"] == rows["columnar"]

    def test_campaign_analysis_identical_across_backends(self, matrix):
        analyses = {
            name: analyze_store(open_store(path, read_only=True))
            for name, path in matrix.items()
        }
        assert analyses["jsonl"] == analyses["sharded"] == analyses["columnar"]

    def test_rendered_markdown_identical_across_backends(self, matrix):
        documents = {
            name: render_markdown(analyze_store(open_store(path, read_only=True)))
            for name, path in matrix.items()
        }
        assert documents["jsonl"] == documents["sharded"] == documents["columnar"]
        assert "bound-violation count: **0**" in documents["columnar"]

    def test_sharded_store_really_sharded(self, matrix):
        store = open_store(matrix["sharded"], read_only=True)
        assert store.is_sharded and len(store.shard_paths()) > 1


class TestConvert:
    def test_golden_rows_round_trip_is_byte_identical(self, tmp_path):
        source = tmp_path / "golden.jsonl"
        _store_with_golden_rows(RunStore(source))
        convert_store(source, tmp_path / "golden.sqlite")
        convert_store(tmp_path / "golden.sqlite", tmp_path / "back.jsonl")
        assert (tmp_path / "back.jsonl").read_bytes() == source.read_bytes()

    def test_convert_preserves_superseded_history(self, tmp_path):
        source = tmp_path / "src.jsonl"
        with RunStore(source) as store:
            store.record_run(_spec(0), {"graph": "g", "v": 1}, {}, {})
            store.record_run(_spec(0), {"graph": "g", "v": 2}, {}, {})
        stats = convert_store(source, tmp_path / "dst.sqlite")
        assert stats == {"records": 2, "backend": "columnar"}
        with ColumnarStore(tmp_path / "dst.sqlite") as dest:
            assert dest._physical_records == 2
            assert dest.get_row(_spec(0).run_key())["v"] == 2

    def test_convert_refuses_existing_destination_and_missing_source(self, tmp_path):
        source = tmp_path / "src.jsonl"
        _store_with_golden_rows(RunStore(source))
        existing = tmp_path / "dst.sqlite"
        existing.write_text("")
        with pytest.raises(ConfigurationError, match="existing path"):
            convert_store(source, existing)
        with pytest.raises(ConfigurationError, match="no run store"):
            convert_store(tmp_path / "nope.jsonl", tmp_path / "new.sqlite")

    def test_converted_store_analysis_and_hashes_match(self, tmp_path):
        source = tmp_path / "src.jsonl"
        _store_with_golden_rows(RunStore(source))
        convert_store(source, tmp_path / "dst.sqlite")
        assert _rows_sha256(source) == _rows_sha256(tmp_path / "dst.sqlite")
        with open_store(tmp_path / "dst.sqlite", read_only=True) as store:
            assert render_markdown(analyze_store(store)) == render_markdown(
                analyze_rows(_golden_rows())
            )


class TestIncrementalAnalytics:
    def test_sufficient_statistics_match_lstsq_fit(self):
        xs = [16.0, 32.0, 64.0, 128.0, 256.0]
        ys = [42.0, 118.0, 355.0, 980.0, 2605.0]
        stats = PowerLawStats()
        for x, y in zip(xs, ys):
            stats.add(x, y)
        closed, direct = stats.fit(), fit_power_law(xs, ys)
        assert closed.exponent == pytest.approx(direct.exponent, rel=1e-9)
        assert closed.scale == pytest.approx(direct.scale, rel=1e-9)
        assert closed.residual == pytest.approx(direct.residual, abs=1e-12)

    def test_no_fit_without_spread(self):
        stats = PowerLawStats()
        stats.add(16.0, 42.0)
        stats.add(16.0, 48.0)
        assert stats.fit() is None

    def test_materialized_matches_full_analysis_on_golden_rows(self):
        rows = _golden_rows()
        analytics = MaterializedAnalytics.from_rows(rows)
        analysis = analyze_rows(rows)
        verify_summary(analytics.summary(), analysis)  # exact counters
        incremental_fits = analytics.fits()
        assert len(incremental_fits) == len(analysis.fits)
        for ours, theirs in zip(incremental_fits, analysis.fits):
            assert (ours.algorithm, ours.metric, ours.x_name, ours.points) == (
                theirs.algorithm,
                theirs.metric,
                theirs.x_name,
                theirs.points,
            )
            assert ours.note == theirs.note and ours.reference == theirs.reference
            if theirs.fit is None:
                assert ours.fit is None
            else:
                assert ours.fit.exponent == pytest.approx(theirs.fit.exponent, rel=1e-9)
                assert ours.fit.scale == pytest.approx(theirs.fit.scale, rel=1e-9)
                assert ours.fit.residual == pytest.approx(theirs.fit.residual, abs=1e-9)

    def test_json_round_trip_preserves_summary(self):
        analytics = MaterializedAnalytics.from_rows(_golden_rows())
        clone = MaterializedAnalytics.from_json_dict(
            json.loads(json.dumps(analytics.to_json_dict()))
        )
        assert clone.summary() == analytics.summary()

    def test_verify_summary_raises_on_drift(self):
        rows = _golden_rows()
        analysis = analyze_rows(rows)
        summary = MaterializedAnalytics.from_rows(rows).summary()
        summary["bound_checked"] += 1
        with pytest.raises(ReproError, match="drifted"):
            verify_summary(summary, analysis)


class TestMaterializedReport:
    def test_materialized_and_full_rescan_are_byte_identical(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with ColumnarStore(path) as store:
            execute_campaign(_campaign(), store=store)
        with ColumnarStore(path, read_only=True) as store:
            fast = render_markdown(analyze_store(store))
            slow = render_markdown(analyze_store(store, full_rescan=True))
        assert fast == slow

    def test_summary_matches_scan_and_survives_reopen(self, tmp_path, monkeypatch):
        path = tmp_path / "runs.sqlite"
        with ColumnarStore(path) as store:
            execute_campaign(_campaign(), store=store)
            expected = store.materialized_summary()
        # Reopened store answers from the persisted meta state: rebuild
        # is forbidden below, so any miss would explode.
        monkeypatch.setattr(
            MaterializedAnalytics,
            "from_rows",
            classmethod(lambda *a, **k: (_ for _ in ()).throw(AssertionError("rebuilt"))),
        )
        with ColumnarStore(path, read_only=True) as store:
            summary = store.materialized_summary()
            assert summary == expected
            assert summary["bound_violations"] == 0
            verify_summary(summary, analyze_rows(store.iter_rows()))

    def test_superseding_append_rebuilds_analytics(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        campaign = _campaign(sizes=(8, 12), algorithms=("elkin",))
        with ColumnarStore(path) as store:
            execute_campaign(campaign, store=store)
            execute_campaign(campaign, store=store, resume=False)  # supersedes
            assert store._physical_records > len(store)
            verify_summary(
                store.materialized_summary(), analyze_rows(store.iter_rows())
            )

    def test_analyze_store_detects_drifted_analytics(self, tmp_path, monkeypatch):
        path = tmp_path / "runs.sqlite"
        with ColumnarStore(path) as store:
            execute_campaign(_campaign(sizes=(8,), algorithms=("elkin",)), store=store)
        store = ColumnarStore(path, read_only=True)
        broken = store.materialized_summary()
        broken["rows"] += 7
        monkeypatch.setattr(store, "materialized_summary", lambda: broken)
        with pytest.raises(ReproError, match="drifted"):
            analyze_store(store)
        store.close()


class TestColumnarScheduler:
    def test_parallel_columnar_rows_match_serial_jsonl(self, tmp_path):
        campaign = _campaign(sizes=(8, 10, 12, 14), algorithms=("elkin", "ghs"))
        with open_store(tmp_path / "par.sqlite") as parallel_store:
            parallel_report = execute_campaign(campaign, store=parallel_store, jobs=2)
        with open_store(tmp_path / "ser.jsonl") as serial_store:
            serial_report = execute_campaign(campaign, store=serial_store)
        assert parallel_report.rows == serial_report.rows
        with open_store(tmp_path / "par.sqlite", read_only=True) as store:
            assert len(store) == len(campaign.specs)
            assert store.materialized_summary()["bound_violations"] == 0


class TestColumnarCLI:
    SWEEP = [
        "sweep",
        "--families",
        "random_connected",
        "--sizes",
        "16",
        "--algorithms",
        "elkin",
        "--seeds",
        "0",
        "1",
    ]

    def test_sweep_report_convert_pipeline(self, tmp_path, capsys):
        store_path = tmp_path / "runs.sqlite"
        argv = self.SWEEP + ["--output", str(store_path), "--store-backend", "columnar"]
        assert main(argv) == 0
        capsys.readouterr()
        assert detect_backend(store_path) == "columnar"

        assert main(["report", "--store", str(store_path)]) == 0
        fast = capsys.readouterr().out
        assert "bound-violation count: **0**" in fast
        assert main(["report", "--store", str(store_path), "--full-rescan"]) == 0
        assert capsys.readouterr().out == fast

        converted = tmp_path / "runs.jsonl"
        assert main(
            ["store", "convert", str(store_path), "--into", str(converted)]
        ) == 0
        assert "columnar" not in capsys.readouterr().out.split("(")[-1]
        assert main(["report", "--store", str(converted)]) == 0
        assert capsys.readouterr().out == fast

    def test_sweep_auto_backend_picks_columnar_by_suffix(self, tmp_path, capsys):
        store_path = tmp_path / "auto.sqlite"
        assert main(self.SWEEP + ["--output", str(store_path)]) == 0
        capsys.readouterr()
        assert detect_backend(store_path) == "columnar"
        with open_store(store_path, read_only=True) as store:
            assert store.backend_name == "columnar" and len(store) == 2

    def test_store_compact_handles_columnar(self, tmp_path, capsys):
        store_path = tmp_path / "runs.sqlite"
        argv = self.SWEEP + ["--output", str(store_path), "--store-backend", "columnar"]
        assert main(argv) == 0
        assert main(argv) == 0  # no --resume: every cell superseded
        capsys.readouterr()
        assert main(["store", "compact", "--store", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "superseded dropped" in out and "0 superseded" not in out
