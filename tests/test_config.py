"""Tests for repro.config."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, RunConfig
from repro.exceptions import ConfigurationError


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.bandwidth == 1
        assert config.base_forest_k is None
        assert config.collect_telemetry is True
        assert config.strict_bounds is False

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            RunConfig(bandwidth=0)
        with pytest.raises(ConfigurationError):
            RunConfig(bandwidth=-3)

    def test_rejects_non_positive_k_override(self):
        with pytest.raises(ConfigurationError):
            RunConfig(base_forest_k=0)

    def test_accepts_explicit_k(self):
        assert RunConfig(base_forest_k=17).base_forest_k == 17

    def test_default_config_singleton_is_valid(self):
        assert DEFAULT_CONFIG.bandwidth == 1

    def test_extra_dict_is_per_instance(self):
        first, second = RunConfig(), RunConfig()
        first.extra["key"] = "value"
        assert "key" not in second.extra
