"""Unit coverage of the numpy structure-of-arrays kernel.

The algorithm-level guarantees live in ``test_engine_equivalence.py``
and ``test_golden_regression.py``; this file pins down the machinery
underneath: registry gating when numpy is missing, the content-hashed
CSR layout LRU, the message-column growth and generation stamping, the
lazily materialized inboxes, the vectorized broadcast's partial-commit
error semantics, and the arena-lane integration with
:class:`repro.simulator.fast_network.BatchedEngine`.

Everything except the registry-gating tests requires numpy; the gating
tests run on a numpy-less interpreter too (that is their point).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import Campaign, execute_campaign, RunStore
from repro.campaign.spec import graph_spec_for
from repro.config import RunConfig
from repro.core.elkin_mst import compute_mst
from repro.exceptions import BandwidthExceededError, ConfigurationError, SimulationError
from repro.graphs import path_graph, random_connected_graph, star_graph
from repro.graphs.generators import make_graph
from repro.simulator import array_network as anmod
from repro.simulator.array_network import (
    ArrayNetwork,
    clear_layout_cache,
    csr_layout,
    layout_cache_info,
)
from repro.simulator.engine import (
    available_engines,
    create_engine,
    Engine,
    engine_provider,
    register_engine,
)
from repro.simulator.fast_network import BatchedEngine

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")


def _inbox_signature(inboxes):
    """Engine-independent projection of one round's deliveries."""
    return [
        (
            receiver,
            [
                (m.sender, m.receiver, m.kind, tuple(m.payload), m.words, m.sent_in_round)
                for m in inboxes[receiver]
            ],
        )
        for receiver in inboxes
    ]


def _hub(graph):
    """The maximum-degree vertex (the centre of a star)."""
    return max(graph.nodes(), key=lambda v: (graph.degree(v), -v))


# ---------------------------------------------------------------------- #
# registry gating (runs with and without numpy)
# ---------------------------------------------------------------------- #


class TestRegistryGating:
    def test_advertised_exactly_when_numpy_is_importable(self):
        assert ("array" in available_engines()) == HAVE_NUMPY

    def test_missing_numpy_yields_actionable_errors(self, small_random_graph):
        if HAVE_NUMPY:
            saved = anmod.np
            anmod.np = None
            anmod._register()
        try:
            assert "array" not in available_engines()
            with pytest.raises(ConfigurationError, match="numpy"):
                create_engine(small_random_graph, engine="array")
            with pytest.raises(ConfigurationError, match=r"\[fast\]"):
                ArrayNetwork(small_random_graph)
            with pytest.raises(ConfigurationError, match=r"\[fast\]"):
                csr_layout(small_random_graph)
        finally:
            if HAVE_NUMPY:
                anmod.np = saved
                anmod._register()
        if HAVE_NUMPY:
            assert "array" in available_engines()

    @needs_numpy
    def test_create_engine_returns_the_array_kernel(self, small_random_graph):
        engine = create_engine(small_random_graph, engine="array")
        assert isinstance(engine, ArrayNetwork)
        assert issubclass(ArrayNetwork, Engine)

    def test_unknown_engine_error_is_distinct_from_unavailable(self, small_random_graph):
        with pytest.raises(ConfigurationError, match="unknown"):
            create_engine(small_random_graph, engine="warp")


# ---------------------------------------------------------------------- #
# CSR layout LRU
# ---------------------------------------------------------------------- #


@needs_numpy
class TestLayoutCache:
    def test_equal_content_graphs_share_one_layout(self):
        clear_layout_cache()
        first = random_connected_graph(24, extra_edges=12, seed=9)
        second = random_connected_graph(24, extra_edges=12, seed=9)
        assert first is not second
        a = ArrayNetwork(first)
        before = layout_cache_info()
        b = ArrayNetwork(second)
        after = layout_cache_info()
        assert a._layout is b._layout
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_different_content_misses(self):
        clear_layout_cache()
        ArrayNetwork(path_graph(10, seed=0))
        ArrayNetwork(path_graph(11, seed=0))
        info = layout_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0

    def test_eviction_past_maxsize(self):
        clear_layout_cache()
        maxsize = layout_cache_info()["maxsize"]
        oldest = path_graph(4, seed=0)
        csr_layout(oldest)
        for n in range(5, 5 + maxsize):  # push maxsize more layouts
            csr_layout(path_graph(n, seed=0))
        info = layout_cache_info()
        assert info["size"] == maxsize
        # The least recently used entry (the first graph) was evicted:
        # asking for it again is a miss, not a hit.
        misses = info["misses"]
        csr_layout(oldest)
        assert layout_cache_info()["misses"] == misses + 1

    def test_standalone_engine_and_arena_lane_share_the_cache(self):
        clear_layout_cache()
        graph = make_graph("random_connected", n=18, seed=4)
        standalone = ArrayNetwork(graph)
        arena = BatchedEngine([graph])
        lane = arena.array_lane(graph)
        assert standalone._layout is lane._layout
        assert layout_cache_info()["misses"] == 1


# ---------------------------------------------------------------------- #
# kernel internals
# ---------------------------------------------------------------------- #


@needs_numpy
class TestKernelInternals:
    def test_message_columns_grow_geometrically(self):
        network = ArrayNetwork(path_graph(3, seed=0), bandwidth=64)
        start_cap = network._cap
        count = 2 * start_cap + 5
        for i in range(count):
            network.send(0, 1, "burst", payload=(i,))
        # Point sends are staged in Python lists; the columns only grow
        # when the staged run is flushed (here: at delivery, since the
        # round exceeds the eager limit).
        assert network.pending_count() == count
        assert network._cap == start_cap
        inboxes = network.deliver_round()
        assert network._cap >= count
        assert [m.payload[0] for m in inboxes[1]] == list(range(count))
        assert network.metrics.messages == count

    def test_pure_point_send_round_never_materializes_columns(self):
        network = ArrayNetwork(path_graph(4, seed=0), bandwidth=4)
        network.send(0, 1, "ping", payload=("a",))
        network.send(2, 1, "ping", payload=("b",))
        network.send(3, 2, "pong")
        assert network.pending_count() == 3
        assert network._fill == 0  # staged, not written to the columns
        inboxes = network.deliver_round()
        assert [m.payload for m in inboxes[1]] == [("a",), ("b",)]
        assert list(inboxes) == [1, 2]  # first-message receiver order
        assert network.metrics.words == 3
        assert network.pending_count() == 0

    def test_broadcast_flushes_staged_point_sends_in_order(self):
        graph = star_graph(8, seed=1)
        network = ArrayNetwork(graph, bandwidth=2)
        network.send(1, 0, "early")
        network.send_to_neighbors(0, "blast")  # flushes the staged send first
        network.send(2, 0, "late")
        inboxes = network.deliver_round()
        kinds = [m.kind for m in inboxes[0]]
        assert kinds == ["early", "late"]
        assert all(m.kind == "blast" for v, inbox in inboxes.items() if v != 0 for m in inbox)
        # Global send order: the hub's broadcast lands between the two
        # point sends at every receiver that sees both.
        assert network.metrics.messages == 2 + network.node(0).degree()

    def test_idle_rounds_reject_staged_point_sends(self):
        network = ArrayNetwork(path_graph(3, seed=0))
        network.send(0, 1, "pending")
        with pytest.raises(SimulationError, match="pending"):
            network.idle_rounds(1)

    def test_generation_stamping_resets_bandwidth_without_clearing(self):
        network = ArrayNetwork(path_graph(3, seed=0), bandwidth=2)
        network.send(0, 1, "a", words=2)
        assert network.remaining_capacity(0, 1) == 0
        network.deliver_round()
        # No counter was zeroed -- the generation base moved past it.
        assert network.remaining_capacity(0, 1) == 2
        network.idle_rounds(3)
        assert network.remaining_capacity(0, 1) == 2
        network.send(0, 1, "b", words=2)
        assert network.remaining_capacity(0, 1) == 0

    def test_small_rounds_deliver_eager_plain_dicts(self):
        network = ArrayNetwork(path_graph(4, seed=0))
        network.send(1, 2, "x")
        inboxes = network.deliver_round()
        assert type(inboxes) is dict

    def test_large_rounds_deliver_lazy_inboxes(self):
        graph = star_graph(anmod._EAGER_DELIVERY_LIMIT + 9, seed=0)
        network = ArrayNetwork(graph)
        hub = _hub(graph)
        count = network.send_to_neighbors(hub, "wave")
        assert count == graph.degree(hub) > anmod._EAGER_DELIVERY_LIMIT
        inboxes = network.deliver_round()
        assert isinstance(inboxes, anmod._LazyInboxes)
        # len / membership / key order never materialize a message...
        leaves = sorted(graph.neighbors(hub))
        assert list(inboxes) == leaves
        view = inboxes[leaves[0]]
        assert len(view) == 1 and view
        assert view._list is None
        # ... and first per-message access materializes the exact
        # FastMessage rows the fast kernel would have delivered.
        message = view[0]
        assert view._list is not None
        assert (message.sender, message.receiver, message.kind) == (
            hub,
            leaves[0],
            "wave",
        )
        assert message.sent_in_round == 0
        assert view == [message]
        assert inboxes[leaves[-1]][0].receiver == leaves[-1]

    def test_lazy_delivery_matches_fast_kernel_exactly(self):
        graph = random_connected_graph(40, extra_edges=80, seed=13)
        signatures = []
        for engine in ("fast", "array"):
            network = create_engine(graph, bandwidth=2, engine=engine)
            for vertex in network.vertices():
                network.send_to_neighbors(vertex, "flood", payload=(vertex,))
            signatures.append(_inbox_signature(network.deliver_round()))
            assert network.metrics.messages == 2 * graph.number_of_edges()
        assert signatures[0] == signatures[1]

    def test_metrics_charged_as_reductions_match(self):
        graph = star_graph(40, seed=2)
        counts = {}
        for engine in ("reference", "fast", "array"):
            network = create_engine(graph, bandwidth=4, engine=engine)
            hub = _hub(graph)
            network.send_to_neighbors(hub, "a", words=3)
            network.send_to_neighbors(hub, "b", words=1)
            network.deliver_round()
            counts[engine] = (
                network.metrics.messages,
                network.metrics.words,
                dict(network.metrics.messages_by_kind),
            )
        assert counts["reference"] == counts["fast"] == counts["array"]


# ---------------------------------------------------------------------- #
# the vectorized broadcast
# ---------------------------------------------------------------------- #


@needs_numpy
class TestBroadcast:
    @pytest.mark.parametrize("exclude_origin", [False, True])
    def test_broadcast_equivalent_across_engines(self, exclude_origin):
        graph = random_connected_graph(30, extra_edges=45, seed=21)
        results = {}
        for engine in ("reference", "fast", "array"):
            network = create_engine(graph, bandwidth=2, engine=engine)
            rounds = []
            for vertex in sorted(network.vertices()):
                exclude = None
                if exclude_origin:
                    exclude = min(network.node(vertex).neighbors)
                network.send_to_neighbors(
                    vertex, "gossip", payload=(vertex,), exclude=exclude
                )
            rounds.append(_inbox_signature(network.deliver_round()))
            results[engine] = (rounds, network.metrics.messages, network.metrics.words)
        assert results["reference"] == results["fast"] == results["array"]

    def test_exclude_leaves_that_edge_uncharged(self):
        graph = star_graph(12, seed=1)
        hub = _hub(graph)
        network = ArrayNetwork(graph, bandwidth=1)
        leaves = sorted(graph.neighbors(hub))
        skipped = leaves[3]
        count = network.send_to_neighbors(hub, "wave", exclude=skipped)
        assert count == len(leaves) - 1
        assert network.remaining_capacity(hub, skipped) == 1
        for leaf in leaves:
            if leaf != skipped:
                assert network.remaining_capacity(hub, leaf) == 0
        network.send(hub, skipped, "direct")  # still within bandwidth

    def test_partial_commit_and_error_identical_to_fast_kernel(self):
        graph = star_graph(10, seed=3)
        hub = _hub(graph)
        leaves = sorted(graph.neighbors(hub))
        blocked = leaves[4]
        outcomes = {}
        for engine in ("fast", "array"):
            network = create_engine(graph, bandwidth=1, engine=engine)
            network.send(hub, blocked, "pre")
            with pytest.raises(BandwidthExceededError) as excinfo:
                network.send_to_neighbors(hub, "bcast")
            network_inboxes = network.deliver_round()
            outcomes[engine] = (
                str(excinfo.value),
                network.metrics.messages,
                _inbox_signature(network_inboxes),
            )
        # Same error text, and the same prefix (every neighbour sorted
        # before the saturated edge) was committed before the raise.
        assert outcomes["fast"] == outcomes["array"]
        assert outcomes["array"][1] == 1 + leaves.index(blocked)

    def test_oversized_broadcast_raises_without_committing(self):
        graph = star_graph(10, seed=3)
        hub = _hub(graph)
        network = ArrayNetwork(graph, bandwidth=2)
        with pytest.raises(BandwidthExceededError):
            network.send_to_neighbors(hub, "huge", words=3)
        assert network.pending_count() == 0
        assert network.remaining_capacity(hub, sorted(graph.neighbors(hub))[0]) == 2

    def test_broadcast_from_unknown_vertex_raises(self):
        network = ArrayNetwork(path_graph(4, seed=0))
        with pytest.raises(SimulationError, match="unknown vertex"):
            network.send_to_neighbors(10_000, "ghost")

    def test_zero_word_broadcast_rejected(self):
        graph = star_graph(10, seed=3)
        network = ArrayNetwork(graph, bandwidth=2)
        with pytest.raises(ValueError):
            network.send_to_neighbors(_hub(graph), "empty", words=0)
        assert network.pending_count() == 0


# ---------------------------------------------------------------------- #
# arena lanes
# ---------------------------------------------------------------------- #


@needs_numpy
class TestArrayArenaLanes:
    def test_lane_views_alias_the_arena_arrays(self):
        graphs = [make_graph("random_connected", n=14, seed=s) for s in range(3)]
        arena = BatchedEngine(graphs)
        lanes = [arena.array_lane(graph) for graph in graphs]
        counters = arena._array_counters[1]
        columns = arena._array_columns
        for lane in lanes:
            assert lane._band.base is counters
            assert lane._col_sender.base is columns[0]
            assert lane._col_receiver.base is columns[1]
            assert lane._col_words.base is columns[2]

    def test_lane_reports_identical_results_to_standalone(self):
        graph = make_graph("random_connected", n=20, seed=3)
        arena = BatchedEngine([graph])
        baseline = compute_mst(graph, RunConfig(engine="array"))
        for _ in range(3):  # re-vends must be state-clean
            vended = []

            def provider(candidate, bandwidth, name):
                if name == "array" and candidate is graph and not vended:
                    vended.append(True)
                    return arena.array_lane(candidate, bandwidth)
                return None

            with engine_provider(provider):
                result = compute_mst(graph, RunConfig(engine="array"))
            assert result.to_json_dict() == baseline.to_json_dict()

    def test_lane_bandwidth_enforcement_across_vends(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.array_lane(graph, bandwidth=1)
        lane.send(0, 1, "a")
        with pytest.raises(BandwidthExceededError):
            lane.send(0, 1, "b")
        # A fresh vend resets the counters by generation stamping.
        lane = arena.array_lane(graph, bandwidth=1)
        lane.send(0, 1, "a")

    def test_lane_reset_clears_messages_and_scratch(self):
        graph = make_graph("path", n=4, seed=0)
        arena = BatchedEngine([graph])
        lane = arena.array_lane(graph)
        lane.send(0, 1, "stale")
        lane.node(0).scratch("proto")["key"] = "value"
        lane = arena.array_lane(graph)
        assert lane.pending_count() == 0
        assert lane.node(0).memory == {}
        assert lane.metrics.rounds == 0

    def test_fast_and_array_lanes_coexist_on_one_arena(self):
        graph = make_graph("random_connected", n=16, seed=1)
        arena = BatchedEngine([graph])
        fast_lane = arena.lane(graph)
        array_lane = arena.array_lane(graph)
        fast_lane.send(0, min(fast_lane.node(0).neighbors), "f")
        assert array_lane.pending_count() == 0

    def test_unpacked_graph_is_rejected(self):
        arena = BatchedEngine([])
        with pytest.raises(SimulationError, match="not part of this batch"):
            arena.array_lane(make_graph("path", n=3, seed=0))


# ---------------------------------------------------------------------- #
# batched campaigns on the array engine
# ---------------------------------------------------------------------- #


def _array_grid() -> Campaign:
    graphs = [
        graph_spec_for("random_connected", 20),
        graph_spec_for("planted_fragments", 16),
    ]
    return Campaign.from_grid(
        "array-eq",
        graphs,
        algorithms=("elkin", "ghs"),
        bandwidths=(1, 2),
        engines=("array",),
        seeds=(0, 1),
    )


@needs_numpy
class TestBatchedArrayCampaign:
    def test_rows_and_store_records_byte_identical(self, tmp_path):
        campaign = _array_grid()
        serial_store = RunStore(tmp_path / "serial.jsonl")
        batched_store = RunStore(tmp_path / "batched.jsonl")
        serial = execute_campaign(campaign, store=serial_store, batch=False)
        batched = execute_campaign(campaign, store=batched_store, batch=True)
        assert serial.rows == batched.rows
        assert serial_store.run_keys() == batched_store.run_keys()
        for spec in campaign.specs:
            key = spec.run_key()
            assert json.dumps(serial_store.get_row(key), sort_keys=True) == json.dumps(
                batched_store.get_row(key), sort_keys=True
            )
            assert (
                serial_store.get_result(key).to_json_dict()
                == batched_store.get_result(key).to_json_dict()
            )

    def test_batched_stands_down_when_array_engine_is_replaced(self):
        # A re-registered "array" kernel must be honoured: the batch
        # runner detects the substitution and constructs engines
        # normally instead of vending stock arena lanes.
        created = []

        class CountingArray(ArrayNetwork):
            __slots__ = ()

            def __init__(self, graph, bandwidth=1, validate=True):
                created.append(id(graph))
                super().__init__(graph, bandwidth=bandwidth, validate=validate)

        register_engine("array", CountingArray)
        try:
            campaign = Campaign.from_grid(
                "swapped-array",
                [graph_spec_for("random_connected", 16)],
                algorithms=("elkin",),
                engines=("array",),
                seeds=(0,),
            )
            report = execute_campaign(campaign, batch=True)
            assert created, "replacement engine was never constructed"
            assert report.executed == 1
        finally:
            register_engine("array", ArrayNetwork)
