"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists
so that ``pip install -e .`` works on environments without the ``wheel``
package (pip then falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
