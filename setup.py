"""Package metadata.

``pip install -e .`` installs the ``repro`` package from ``src/`` with
its single runtime dependency; ``pip install -e .[fast]`` adds numpy,
which unlocks the ``array`` simulation kernel; ``pip install -e
.[dev]`` adds the test and benchmark toolchain (the tier-1 suite and
``benchmarks/`` need nothing else).
"""

from setuptools import find_packages, setup

setup(
    name="repro-elkin-mst",
    version="1.6.0",
    description=(
        "Reproduction of Elkin's deterministic distributed MST algorithm "
        "(PODC 2017) on a synchronous CONGEST(b log n) simulator"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "networkx>=2.6",
    ],
    extras_require={
        "fast": [
            "numpy>=1.22",
        ],
        "dev": [
            "pytest>=7",
            "hypothesis>=6",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-mst=repro.cli:main",
        ],
    },
)
