#!/usr/bin/env python3
"""CONGEST(b log n): how bandwidth changes the running time (Theorem 3.2).

The paper generalises the algorithm to the CONGEST(b log n) model, where
every edge carries ``b`` words per round, and proves a round bound of
``O((D + sqrt(n/b)) log n)`` with unchanged message complexity.  This
example declares the bandwidth sweep as a campaign grid over one graph
spec, runs it on a worker pool, and prints the measured rounds next to
the bound's ``sqrt(n/b)`` shape.

Run with::

    python examples/bandwidth_scaling.py [n]
"""

from __future__ import annotations

import math
import sys

from repro.analysis.tables import format_table
from repro.campaign import Campaign, execute_campaign
from repro.graphs import GraphSpec


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    campaign = Campaign.from_grid(
        "bandwidth-scaling",
        graphs=[GraphSpec("random_connected", {"n": n, "seed": 13})],
        bandwidths=(1, 2, 4, 8, 16),
        labels=["bandwidth-sweep"],
    )
    report = execute_campaign(campaign, jobs=2)
    rows = report.rows

    diameter = int(rows[0]["D"])
    print(f"graph: n={rows[0]['n']} m={rows[0]['m']} D={diameter}")
    baseline_rounds = rows[0]["rounds"]
    for row in rows:
        b = int(row["bandwidth"])
        row["speedup vs b=1"] = round(baseline_rounds / row["rounds"], 2)
        row["sqrt(n/b) shape"] = round(
            (diameter + math.sqrt(n / b)) / (diameter + math.sqrt(n)), 2
        )
    columns = [
        "graph", "n", "m", "D", "bandwidth", "k", "rounds", "messages",
        "speedup vs b=1", "sqrt(n/b) shape",
    ]
    print(format_table(rows, columns))
    print()
    print("The 'sqrt(n/b) shape' column is the bound's predicted relative round")
    print("count; measured speedups follow it until the D term and the additive")
    print("per-phase overheads dominate.  Message counts stay near-constant, as")
    print("Theorem 3.2 predicts.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
