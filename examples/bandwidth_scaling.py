#!/usr/bin/env python3
"""CONGEST(b log n): how bandwidth changes the running time (Theorem 3.2).

The paper generalises the algorithm to the CONGEST(b log n) model, where
every edge carries ``b`` words per round, and proves a round bound of
``O((D + sqrt(n/b)) log n)`` with unchanged message complexity.  This
example sweeps ``b`` on a low-diameter graph and prints the measured
rounds next to the bound's ``sqrt(n/b)`` shape.

Run with::

    python examples/bandwidth_scaling.py [n]
"""

from __future__ import annotations

import math
import sys

from repro.analysis.experiments import sweep_bandwidth
from repro.analysis.tables import format_table
from repro.graphs import graph_summary, random_connected_graph


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    graph = random_connected_graph(n, seed=13)
    summary = graph_summary(graph)
    print(f"graph: n={summary.n} m={summary.m} D={summary.hop_diameter}")

    rows = sweep_bandwidth(graph, bandwidths=(1, 2, 4, 8, 16), label="bandwidth-sweep")
    baseline_rounds = rows[0]["rounds"]
    for row in rows:
        b = int(row["bandwidth"])
        row["speedup vs b=1"] = round(baseline_rounds / row["rounds"], 2)
        row["sqrt(n/b) shape"] = round(
            (summary.hop_diameter + math.sqrt(summary.n / b))
            / (summary.hop_diameter + math.sqrt(summary.n)),
            2,
        )
    print(format_table(rows))
    print()
    print("The 'sqrt(n/b) shape' column is the bound's predicted relative round")
    print("count; measured speedups follow it until the D term and the additive")
    print("per-phase overheads dominate.  Message counts stay near-constant, as")
    print("Theorem 3.2 predicts.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
