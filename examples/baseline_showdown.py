#!/usr/bin/env python3
"""Head-to-head: the paper's algorithm versus GHS, GKP and a PRS-style phase.

Reproduces, at laptop scale, the comparisons that motivate the paper:

* against the GHS-style baseline on the "hub + path" family, where the
  MST has diameter Theta(n) although the hop-diameter is 2 -- GHS pays
  Theta(n) rounds per Boruvka phase, the paper's algorithm does not;
* against Garay-Kutten-Peleg on sparse low-diameter graphs, where the
  Pipeline-MST phase costs Theta(n^{3/2}) messages;
* against a PRS16-style second phase (sqrt(n) base forest) on a
  high-diameter graph, where the per-phase upcast costs
  Theta(D sqrt(n)) messages versus the paper's O(n).

Run with::

    python examples/baseline_showdown.py
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.baselines import ghs_style_mst, gkp_mst, prs_style_mst
from repro.core.elkin_mst import compute_mst
from repro.graphs import graph_summary, hub_path_graph, path_graph, random_connected_graph
from repro.verify.mst_checks import verify_mst_result


def _row(label, graph, name, result):
    verify_mst_result(graph, result)
    return {
        "scenario": label,
        "algorithm": name,
        "rounds": result.rounds,
        "messages": result.messages,
    }


def main() -> int:
    rows = []

    # Scenario 1: time comparison against GHS on a hub+path graph.
    hub = hub_path_graph(260)
    rows.append(_row("hub+path n=260 (D=2)", hub, "elkin", compute_mst(hub)))
    rows.append(_row("hub+path n=260 (D=2)", hub, "ghs", ghs_style_mst(hub)))

    # Scenario 2: message comparison against GKP on a sparse random graph.
    sparse = random_connected_graph(260, extra_edges=260, seed=21)
    rows.append(_row("sparse random n=260", sparse, "elkin", compute_mst(sparse)))
    rows.append(_row("sparse random n=260", sparse, "gkp", gkp_mst(sparse)))

    # Scenario 3: second-phase messages against a PRS-style sqrt(n) base
    # forest on a high-diameter path.
    long_path = path_graph(240, seed=22)
    elkin = compute_mst(long_path)
    prs = prs_style_mst(long_path)
    rows.append(_row("path n=240 (D=239)", long_path, "elkin", elkin))
    rows.append(_row("path n=240 (D=239)", long_path, "prs-style", prs))

    print("All runs verified against the sequential oracles.")
    print(format_table(rows))
    print()
    elkin_stage = elkin.details["stage_costs"]["boruvka"]["messages"]
    prs_stage = prs.details["stage_costs"]["boruvka"]["messages"]
    print(
        "Second-phase (Boruvka over the BFS tree) messages on the path instance: "
        f"elkin (k = D) = {elkin_stage}, PRS-style (k = sqrt(n)) = {prs_stage}."
    )
    print("This is the Theta(D sqrt(n)) vs O(n) gap discussed in Section 1.2.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
