#!/usr/bin/env python3
"""Head-to-head: the paper's algorithm versus GHS, GKP and a PRS-style phase.

Reproduces, at laptop scale, the comparisons that motivate the paper:

* against the GHS-style baseline on the "hub + path" family, where the
  MST has diameter Theta(n) although the hop-diameter is 2 -- GHS pays
  Theta(n) rounds per Boruvka phase, the paper's algorithm does not;
* against Garay-Kutten-Peleg on sparse low-diameter graphs, where the
  Pipeline-MST phase costs Theta(n^{3/2}) messages;
* against a PRS16-style second phase (sqrt(n) base forest) on a
  high-diameter graph, where the per-phase upcast costs
  Theta(D sqrt(n)) messages versus the paper's O(n).

The three scenarios are expressed as one campaign (hand-picked
:class:`~repro.campaign.RunSpec` cells rather than a full cross-product,
since each scenario pairs the paper's algorithm with a different
baseline) and executed on a two-worker pool; every run is verified
against the sequential oracles inside its worker.

Run with::

    python examples/baseline_showdown.py
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.campaign import Campaign, execute_campaign, RunSpec
from repro.graphs import GraphSpec


def main() -> int:
    scenarios = [
        ("hub+path n=260 (D=2)", GraphSpec("hub_path", {"n": 260}), ("elkin", "ghs")),
        (
            "sparse random n=260",
            GraphSpec("random_connected", {"n": 260, "extra_edges": 260, "seed": 21}),
            ("elkin", "gkp"),
        ),
        ("path n=240 (D=239)", GraphSpec("path", {"n": 240, "seed": 22}), ("elkin", "prs")),
    ]
    specs = [
        RunSpec(graph=graph, algorithm=algorithm, label=label)
        for label, graph, algorithms in scenarios
        for algorithm in algorithms
    ]
    campaign = Campaign("baseline-showdown", specs)
    report = execute_campaign(campaign, jobs=2)

    print("All runs verified against the sequential oracles.")
    columns = ["graph", "n", "m", "D", "algorithm", "rounds", "messages"]
    print(format_table(report.rows, columns))
    print()

    # The store kept the full results, so the per-stage message split of
    # the path scenario is still available for the Section 1.2 argument.
    elkin_path = report.store.get_result(specs[4].run_key())
    prs_path = report.store.get_result(specs[5].run_key())
    elkin_stage = elkin_path.details["stage_costs"]["boruvka"]["messages"]
    prs_stage = prs_path.details["stage_costs"]["boruvka"]["messages"]
    print(
        "Second-phase (Boruvka over the BFS tree) messages on the path instance: "
        f"elkin (k = D) = {elkin_stage}, PRS-style (k = sqrt(n)) = {prs_stage}."
    )
    print("This is the Theta(D sqrt(n)) vs O(n) gap discussed in Section 1.2.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
