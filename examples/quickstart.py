#!/usr/bin/env python3
"""Quickstart: compute an MST with the paper's algorithm and inspect the run.

Generates a sparse random connected graph, runs the deterministic
distributed MST algorithm of Elkin (PODC 2017) on the CONGEST simulator,
verifies the output against sequential Kruskal, and prints the measured
round/message costs next to the theorem bounds.

Run with::

    python examples/quickstart.py [n] [seed]

This example drives ``compute_mst`` directly for a minimal surface; see
``examples/scenario_api.py`` for the scenario-first facade
(:mod:`repro.api`) that the rest of the tooling is built on.
"""

from __future__ import annotations

import sys

from repro import compute_mst, random_connected_graph, RunConfig
from repro.analysis.bounds import elkin_message_bound_formula, elkin_time_bound_formula
from repro.analysis.tables import format_table
from repro.baselines import kruskal_mst
from repro.graphs import graph_summary


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    graph = random_connected_graph(n, seed=seed)
    summary = graph_summary(graph)
    print(f"graph: n={summary.n} m={summary.m} hop-diameter D={summary.hop_diameter}")

    result = compute_mst(graph, RunConfig(bandwidth=1))
    reference = kruskal_mst(graph)
    assert result.edges == reference, "distributed MST differs from Kruskal!"
    print(f"MST verified against Kruskal: {result.edge_count} edges, weight {result.total_weight:.2f}")

    time_bound = elkin_time_bound_formula(summary.n, summary.hop_diameter)
    message_bound = elkin_message_bound_formula(summary.n, summary.m)
    print()
    print(
        format_table(
            [
                {
                    "quantity": "rounds",
                    "measured": result.rounds,
                    "theorem bound": round(time_bound),
                    "ratio": round(result.rounds / time_bound, 3),
                },
                {
                    "quantity": "messages",
                    "measured": result.messages,
                    "theorem bound": round(message_bound),
                    "ratio": round(result.messages / message_bound, 3),
                },
            ]
        )
    )

    print()
    print(f"base forest parameter k = {result.details['k']}")
    print(f"base fragments: {result.details['base_fragment_count']} "
          f"(max diameter {result.details['base_max_diameter']})")
    print("per-phase fragment counts (Boruvka over the BFS tree):")
    rows = [
        {
            "phase": phase.phase,
            "fragments before": phase.fragments_before,
            "fragments after": phase.fragments_after,
            "rounds": phase.rounds,
            "messages": phase.messages,
        }
        for phase in result.phases
    ]
    print(format_table(rows) if rows else "  (base forest already spanned the graph)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
