#!/usr/bin/env python3
"""The two regimes of the paper: D <= sqrt(n) versus D > sqrt(n).

Section 3 chooses the base-forest parameter ``k`` differently in the two
regimes (``k = sqrt(n)`` for low diameter, ``k = D`` for high diameter).
This example runs the algorithm on one family per regime plus the
"hub + path" family (hop-diameter 2 but MST diameter Theta(n)) and shows
how the chosen ``k``, the base-forest shape and the costs react.

Run with::

    python examples/diameter_regimes.py
"""

from __future__ import annotations

import sys

from repro import compute_mst
from repro.analysis.tables import format_table
from repro.graphs import (
    graph_summary,
    grid_graph,
    hub_path_graph,
    path_graph,
    random_connected_graph,
)
from repro.verify.mst_checks import verify_mst_result


def main() -> int:
    instances = [
        ("random (low D)", random_connected_graph(240, seed=3)),
        ("hub+path (D=2, long MST)", hub_path_graph(200)),
        ("grid 12x20 (medium D)", grid_graph(12, 20, seed=3)),
        ("path (D = n-1)", path_graph(220, seed=3)),
    ]
    rows = []
    for label, graph in instances:
        summary = graph_summary(graph)
        result = compute_mst(graph)
        verify_mst_result(graph, result)
        rows.append(
            {
                "instance": label,
                "n": summary.n,
                "m": summary.m,
                "D": summary.hop_diameter,
                "regime": "D <= sqrt(n)" if summary.is_low_diameter else "D > sqrt(n)",
                "k": result.details["k"],
                "base fragments": result.details["base_fragment_count"],
                "base max diam": result.details["base_max_diameter"],
                "rounds": result.rounds,
                "messages": result.messages,
            }
        )
    print("Elkin's deterministic MST across diameter regimes (all runs verified):")
    print(format_table(rows))
    print()
    print("Reading guide: in the low-diameter regime k tracks sqrt(n); in the")
    print("high-diameter regime k tracks D, which keeps the per-phase upcast")
    print("of the second phase at O(n) messages (Section 1.2 of the paper).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
