#!/usr/bin/env python3
"""Scenario-first API tour: one facade for single runs, batches and streams.

Demonstrates the ``repro.api`` front door introduced in v1.3:

1. one-off run of a declarative scenario (with verification and the
   theorem-bound row for free);
2. a prebuilt-graph scenario (the graph is content-hashed, so repeating
   it resumes from the in-memory store instead of re-simulating);
3. a parallel batch mixing the paper's algorithm, a distributed
   baseline and a *sequential* reference (rounds = messages = 0);
4. lifecycle hooks: a progress reporter and the telemetry collector
   feeding a per-phase table.

Run with::

    python examples/scenario_api.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import (
    GraphSpec,
    ProgressReporter,
    random_connected_graph,
    RunConfig,
    Runner,
    Scenario,
    TelemetryCollector,
)
from repro.analysis.tables import format_table


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    # 1. One-off run: scenario in, verified result + sweep row out.
    runner = Runner()
    outcome = runner.run(
        Scenario(
            graph=GraphSpec("random_connected", {"n": n, "seed": seed}),
            algorithm="elkin",
            config=RunConfig(bandwidth=2, engine="fast"),
        )
    )
    print(f"one-off: {outcome.result.rounds} rounds, {outcome.result.messages} messages")
    print(format_table([outcome.row]))
    print()

    # 2. Prebuilt graphs are first-class scenario sources; identical
    #    scenarios resume from the runner's store.
    graph = random_connected_graph(n // 2, seed=seed)
    scenario = Scenario(graph=graph, algorithm="gkp")
    first = runner.run(scenario)
    again = runner.run(scenario)
    print(
        f"prebuilt graph: key={scenario.key()} "
        f"first reused={first.reused}, second reused={again.reused}"
    )
    print()

    # 3. A parallel batch across algorithm families.  The sequential
    #    Kruskal reference rides the same contract with zero costs.
    batch = [
        Scenario(
            graph=GraphSpec("caterpillar", {"n": n, "seed": seed}),
            algorithm=algorithm,
        )
        for algorithm in ("elkin", "ghs", "kruskal")
    ]
    rows = [o.row for o in runner.run_many(batch, jobs=2)]
    print("head-to-head (note the sequential floor):")
    print(format_table(rows, ["graph", "algorithm", "rounds", "messages", "weight"]))
    print()

    # 4. Lifecycle hooks: progress lines to stderr, telemetry collected.
    telemetry = TelemetryCollector()
    hooked = Runner(hooks=[ProgressReporter(), telemetry])
    hooked.run(
        Scenario(graph=GraphSpec("grid", {"rows": 8, "cols": 8, "seed": seed}))
    )
    print("collected per-phase telemetry:")
    print(format_table(telemetry.phase_rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
