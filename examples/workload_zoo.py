#!/usr/bin/env python3
"""The workload zoo: every graph family, batched, differentially verified.

Walks the three layers this repo uses to stress Elkin's bounds across
structurally diverse inputs:

1. the *catalogue* -- every registered family with its diameter/weight
   regime (``repro.workloads.ZOO_INFO``);
2. a *batched sweep* -- the ``zoo`` preset executed twice, once per-cell
   and once through the batched executor, demonstrating that batching
   changes wall-clock time only (the rows are byte-identical);
3. the *planted ground truth* -- a planted-fragment instance whose MST
   is known by construction, checked against the paper's algorithm.

Run with::

    python examples/workload_zoo.py

The sweep is available from the command line as::

    repro-mst sweep --preset zoo --output zoo.jsonl
"""

from __future__ import annotations

import time

from repro import workloads
from repro.analysis.tables import format_table
from repro.campaign import execute_campaign, preset_campaign
from repro.core.elkin_mst import compute_mst
from repro.verify.planted_checks import planted_mst_edges


def main() -> int:
    # 1. The catalogue.
    rows = [
        {
            "family": info.family,
            "regime": info.regime,
            "planted": "yes" if info.plants_mst else "-",
            "round-bound regime": info.round_regime,
        }
        for info in (
            workloads.ZOO_INFO[name] for name in workloads.zoo_family_names()
        )
    ]
    print(format_table(rows))

    # 2. The zoo sweep, per-cell vs batched (same rows, less time).
    campaign = preset_campaign("zoo")
    print(f"\nzoo preset: {len(campaign)} cells across {len(rows)} families")
    start = time.perf_counter()
    serial = execute_campaign(campaign, batch=False, resume=False)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = execute_campaign(campaign, batch=True, resume=False)
    batched_seconds = time.perf_counter() - start
    assert serial.rows == batched.rows, "batching must not change a single row"
    print(
        f"per-cell: {serial_seconds:.2f}s   batched: {batched_seconds:.2f}s   "
        f"speedup: {serial_seconds / batched_seconds:.2f}x (byte-identical rows)"
    )

    # 3. Planted ground truth, independent of the sequential oracles.
    graph = workloads.planted_fragments_graph(48, fragments=6, seed=11)
    planted = planted_mst_edges(graph)
    result = compute_mst(graph)
    assert planted is not None and result.edges == planted
    print(
        f"\nplanted_fragments(48): elkin reproduced the planted MST "
        f"({len(planted)} edges, weight {result.total_weight:.0f}) in "
        f"{result.rounds} rounds / {result.messages} messages"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
