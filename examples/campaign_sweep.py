#!/usr/bin/env python3
"""Campaign orchestration: a parallel sweep with a persistent run store.

Declares a (family x algorithm x bandwidth x seed) grid, executes it on
a worker pool, persists every cell to a JSONL run store keyed by the
cell's content hash, and then re-runs the same campaign to show resume
semantics: the second execution simulates nothing, it just replays the
stored rows.

Run with::

    python examples/campaign_sweep.py [store.jsonl]

The same sweep is available from the command line::

    repro-mst sweep --families random_connected caterpillar --sizes 64 \
        --algorithms elkin ghs --bandwidths 1 4 --seeds 0 1 \
        --jobs 4 --output store.jsonl --resume
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.campaign import Campaign, execute_campaign, graph_spec_for, RunStore


def main() -> int:
    store_path = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="repro-campaign-")) / "store.jsonl"
    )
    campaign = Campaign.from_grid(
        "example-sweep",
        graphs=[
            graph_spec_for("random_connected", 64),
            graph_spec_for("caterpillar", 64),
        ],
        algorithms=("elkin", "ghs"),
        bandwidths=(1, 4),
        seeds=(0, 1),
    )
    print(f"campaign 'example-sweep': {len(campaign)} cells -> {store_path}")

    report = execute_campaign(campaign, store=RunStore(store_path), jobs=4)
    columns = ["graph", "n", "m", "D", "algorithm", "bandwidth", "seed", "rounds", "messages"]
    print(format_table(report.rows, columns))
    print(report.summary())
    print()

    # Re-running against the same store simulates nothing: every cell's
    # content hash is already present, so the rows are replayed.
    resumed = execute_campaign(campaign, store=RunStore(store_path), jobs=4)
    print(f"re-run: {resumed.summary()}")
    assert resumed.executed == 0 and resumed.rows == report.rows
    print("resume verified: identical rows, zero new simulations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
