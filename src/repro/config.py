"""Configuration objects for algorithm runs.

The paper's algorithm has a small number of tunables: the bandwidth
parameter ``b`` of the CONGEST(b log n) model, the base-forest parameter
``k`` (normally derived from ``n``, ``D`` and ``b``), and bookkeeping
switches (telemetry, strict bound checking).  :class:`RunConfig` bundles
them so that examples, tests and benchmarks construct runs uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .conditions.spec import NetworkCondition, normalize_condition
from .exceptions import ConfigurationError
from .simulator.engine import DEFAULT_ENGINE


@dataclass
class RunConfig:
    """Configuration for a single distributed MST execution.

    Attributes:
        bandwidth: ``b`` of the CONGEST(b log n) model; ``b = 1`` is the
            standard CONGEST model.  Each message carries at most ``b``
            words (edge weights / identities).
        base_forest_k: explicit override of the base-forest parameter
            ``k``.  When ``None`` the paper's rule is applied:
            ``k = sqrt(n / b)`` if ``D <= sqrt(n / b)`` else ``k = D``.
        collect_telemetry: record per-phase telemetry (fragment counts,
            rounds, messages) on the result object.
        strict_bounds: when True, the run raises
            :class:`~repro.exceptions.VerificationError` if measured
            rounds or messages exceed the theorem bounds with the
            constants configured in :mod:`repro.verify.complexity_checks`.
        engine: name of the simulation kernel to run on
            (``"reference"``, ``"fast"`` or -- with numpy installed --
            ``"array"``; see :mod:`repro.simulator.engine`).  Every
            kernel produces identical MST edges, round counts and
            message counts -- the fast and array kernels only change
            wall-clock time.
        seed: seed recorded for provenance (the algorithm itself is
            deterministic; the seed only describes the input generator
            that produced the graph).  ``run_single`` and the campaign
            executor thread it here and also record it in
            ``result.details`` / output rows so it survives
            serialization into the run store.
        condition: optional :class:`~repro.conditions.NetworkCondition`
            (or preset name / clause string / JSON dict -- anything
            :func:`~repro.conditions.normalize_condition` accepts)
            applied to the run by wrapping the engine in a
            condition-applying proxy.  ``None`` (the default) keeps the
            perfectly synchronous, perfectly reliable CONGEST model.
    """

    bandwidth: int = 1
    base_forest_k: Optional[int] = None
    engine: str = DEFAULT_ENGINE
    collect_telemetry: bool = True
    strict_bounds: bool = False
    seed: Optional[int] = None
    condition: Optional[Union[NetworkCondition, str, dict]] = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise ConfigurationError(f"bandwidth must be >= 1, got {self.bandwidth}")
        if self.base_forest_k is not None and self.base_forest_k < 1:
            raise ConfigurationError(
                f"base_forest_k must be >= 1 when given, got {self.base_forest_k}"
            )
        if not isinstance(self.engine, str) or not self.engine:
            raise ConfigurationError(
                f"engine must be a non-empty engine name, got {self.engine!r}"
            )
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(self.seed, int):
                raise ConfigurationError(
                    f"seed must be a non-negative int when given, "
                    f"got {type(self.seed).__name__}: {self.seed!r}"
                )
            if self.seed < 0:
                raise ConfigurationError(
                    f"seed must be a non-negative int when given, got {self.seed}"
                )
        self.condition = normalize_condition(self.condition)


def normalize_config(config: Optional[RunConfig]) -> RunConfig:
    """The one way a runner turns its ``config`` argument into a RunConfig.

    Every algorithm entrypoint (``compute_mst``, the distributed
    baselines, the sequential-baseline adapter) accepts
    ``config: Optional[RunConfig] = None`` and normalizes it through this
    helper, so ``None`` handling and type checking cannot drift between
    runners.  Returns a fresh default config for ``None`` and rejects
    anything that is not a :class:`RunConfig` (a common mistake is
    passing the bandwidth positionally).
    """
    if config is None:
        return RunConfig()
    if not isinstance(config, RunConfig):
        raise ConfigurationError(
            f"config must be a RunConfig or None, got {type(config).__name__}: {config!r}"
        )
    return config


DEFAULT_CONFIG = RunConfig()
