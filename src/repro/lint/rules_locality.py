"""Locality rules: protocol code must respect the CONGEST model.

These rules run only on protocol-scoped files (``core/``,
``baselines/``, ``simulator/primitives/`` -- see
:class:`~repro.lint.config.LintConfig`).  The model contract they
enforce (DESIGN.md, Section 3): inside the per-round callbacks a vertex
may touch only its *own* :class:`~repro.simulator.node.NodeState` and
communicate only through the :class:`~repro.simulator.protocol.ProtocolApi`
handed to it.  Construction-time validation (``__init__`` reading
``network.graph`` to reject malformed inputs) and result assembly after
termination are the declared seams and stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .context import api_param_names, engine_param_names, FileContext, is_engine_expr
from .findings import Finding
from .registry import rule

#: The per-round callbacks where CONGEST locality is binding.
ROUND_CALLBACKS = frozenset({"on_start", "on_round"})

#: Engine methods that drive the global clock or queue raw messages;
#: protocol code must leave them to the driver / ProtocolApi.
ENGINE_CONTROL_METHODS = frozenset(
    {"send", "send_to_neighbors", "deliver_round", "idle_rounds"}
)


def _protocol_methods(
    context: FileContext, names: Optional[frozenset] = None
) -> Iterator[tuple]:
    for info in context.classes:
        if not info.is_protocol_subclass:
            continue
        for name, method in sorted(info.methods.items()):
            if names is None or name in names:
                yield info, name, method


@rule(
    "LOC101",
    "engine-graph-read",
    "protocol round callbacks must not read the global graph topology",
    scope="protocol",
)
def check_engine_graph_read(context: FileContext) -> Iterator[Finding]:
    """``<engine>.graph`` (or ``.sorted_edges()`` / ``.m``) inside a round callback.

    A vertex of the clean network model knows its own id, its incident
    edges and ``n`` -- never the global edge list.  Validation in
    ``__init__`` is the whitelisted seam.
    """
    global_attrs = {"graph", "sorted_edges", "m"}
    for info, name, method in _protocol_methods(context, ROUND_CALLBACKS):
        for node in ast.walk(method):
            if not isinstance(node, ast.Attribute) or node.attr not in global_attrs:
                continue
            if is_engine_expr(node.value, context, method, info):
                yield context.finding(
                    node,
                    "LOC101",
                    "engine-graph-read",
                    f"{info.name}.{name} reads the global graph "
                    f"('.{node.attr}') inside a round callback; a CONGEST vertex "
                    "only knows its own NodeState (validate topology in __init__ "
                    "instead)",
                )


@rule(
    "LOC102",
    "cross-vertex-state-read",
    "round callbacks must only read the current vertex's NodeState",
    scope="protocol",
)
def check_cross_vertex_state(context: FileContext) -> Iterator[Finding]:
    """``api.node(other)`` with anything but the callback's own vertex."""
    for info, name, method in _protocol_methods(context, ROUND_CALLBACKS):
        params = [arg.arg for arg in method.args.args]
        # Callback signature: (self, vertex, node, api[, inbox]).
        vertex_param = params[1] if len(params) > 1 else None
        accessors = api_param_names(method, context) | engine_param_names(method, context)
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "node"):
                continue
            base_is_accessor = (
                isinstance(func.value, ast.Name) and func.value.id in accessors
            ) or is_engine_expr(func.value, context, method, info)
            if not base_is_accessor or not node.args:
                continue
            argument = node.args[0]
            if isinstance(argument, ast.Name) and argument.id == vertex_param:
                continue
            yield context.finding(
                node,
                "LOC102",
                "cross-vertex-state-read",
                f"{info.name}.{name} reads another vertex's NodeState "
                f"(.node(...) with something other than {vertex_param!r}); "
                "remote state may only arrive via messages",
            )


@rule(
    "LOC103",
    "engine-contract-bypass",
    "protocols communicate only through ProtocolApi, never the raw engine",
    scope="protocol",
)
def check_engine_contract_bypass(context: FileContext) -> Iterator[Finding]:
    """Raw engine sends / clock control, or reaching into ``api._*`` privates."""
    for info, name, method in _protocol_methods(context):
        api_names = api_param_names(method, context)
        for node in ast.walk(method):
            if not isinstance(node, ast.Attribute):
                continue
            # api._network / api._finished: private reach-through.
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in api_names
                and node.attr.startswith("_")
            ):
                yield context.finding(
                    node,
                    "LOC103",
                    "engine-contract-bypass",
                    f"{info.name}.{name} reaches into ProtocolApi internals "
                    f"('.{node.attr}'); use the public api surface",
                )
                continue
            # network.send(...) / network.deliver_round() from inside a
            # protocol method: bypasses namespacing and the round driver.
            if name == "__init__":
                continue  # construction-time queries (has_edge, n) are the seam
            if node.attr in ENGINE_CONTROL_METHODS and is_engine_expr(
                node.value, context, method, info
            ):
                yield context.finding(
                    node,
                    "LOC103",
                    "engine-contract-bypass",
                    f"{info.name}.{name} calls the raw engine's "
                    f"'.{node.attr}'; messages go through api.send and the "
                    "clock belongs to run_protocol",
                )


@rule(
    "LOC104",
    "module-global-mutation",
    "protocol code must not mutate module/class globals across vertices",
    scope="protocol",
)
def check_module_global_mutation(context: FileContext) -> Iterator[Finding]:
    """``global`` declarations anywhere in a protocol module.

    State shared through module globals is invisible to the engine's
    message accounting and leaks information between vertices; protocol
    state belongs in the per-vertex scratch space or on the protocol
    instance keyed by vertex.
    """
    reported: Set[int] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Global) and node.lineno not in reported:
            reported.add(node.lineno)
            yield context.finding(
                node,
                "LOC104",
                "module-global-mutation",
                f"'global {', '.join(node.names)}' in protocol code: "
                "module-level state is shared across every simulated vertex; "
                "keep protocol state in NodeState.scratch or on the protocol "
                "instance",
            )
