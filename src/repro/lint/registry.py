"""Rule registry of the static analyzer.

A rule is a checker function registered under a stable identifier via
the :func:`rule` decorator.  The driver looks rules up here, filters
them by ``--select``/``--ignore`` and by scope, and feeds each one the
per-file :class:`~repro.lint.context.FileContext`.

Identifier scheme (mirrored in DESIGN.md, Section 16):

* ``LOC1xx`` -- CONGEST locality rules (protocol code only);
* ``DET2xx`` -- determinism rules (whole tree);
* ``CON3xx`` -- engine/spec/store contract rules (whole tree);
* ``SUP0xx`` -- suppression hygiene, emitted by the driver itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from .context import FileContext
from .findings import Finding

#: A checker: yields findings for one parsed file.
Checker = Callable[[FileContext], Iterable[Finding]]

#: Scope values: ``"all"`` runs everywhere, ``"protocol"`` only on files
#: matching :attr:`~repro.lint.config.LintConfig.protocol_globs`.
SCOPES = ("all", "protocol")


@dataclass(frozen=True)
class Rule:
    """One registered rule."""

    id: str
    name: str
    summary: str
    scope: str
    checker: Checker

    def applies_to(self, context: FileContext) -> bool:
        return self.scope == "all" or context.is_protocol_scope


_RULES: Dict[str, Rule] = {}

#: Framework diagnostics (suppression hygiene); registered for id
#: lookups but executed by the driver, not per-file checkers.
FRAMEWORK_RULE_IDS = ("SUP001", "SUP002", "SUP003")

FRAMEWORK_RULES = {
    "SUP001": ("suppression-without-reason", "every suppression must carry a justification"),
    "SUP002": ("suppression-unknown-rule", "suppression names a rule id that does not exist"),
    "SUP003": ("suppression-unused", "suppression matched no finding (stale or misplaced)"),
}


def rule(rule_id: str, name: str, summary: str, scope: str = "all") -> Callable[[Checker], Checker]:
    """Register ``checker`` under ``rule_id`` (decorator)."""
    if scope not in SCOPES:
        raise ValueError(f"unknown rule scope {scope!r}; expected one of {SCOPES}")

    def decorate(checker: Checker) -> Checker:
        if rule_id in _RULES:
            raise ValueError(f"rule id {rule_id!r} registered twice")
        _RULES[rule_id] = Rule(id=rule_id, name=name, summary=summary, scope=scope, checker=checker)
        return checker

    return decorate


def _ensure_builtin_rules() -> None:
    """Import the shipped rule modules so they self-register (idempotent)."""
    from . import rules_contracts as _contracts  # noqa: F401
    from . import rules_determinism as _determinism  # noqa: F401
    from . import rules_locality as _locality  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def known_rule_ids() -> List[str]:
    """Ids accepted in suppressions and ``--select``/``--ignore``."""
    _ensure_builtin_rules()
    return sorted([*_RULES, *FRAMEWORK_RULE_IDS])


def get_rule(rule_id: str) -> Optional[Rule]:
    _ensure_builtin_rules()
    return _RULES.get(rule_id)


def select_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> Iterator[Rule]:
    """Rules surviving the ``--select`` / ``--ignore`` filters."""
    selected = {item for item in (select or ())} or None
    ignored = {item for item in (ignore or ())}
    for candidate in all_rules():
        if selected is not None and candidate.id not in selected:
            continue
        if candidate.id in ignored:
            continue
        yield candidate
