"""Text and JSON reporters for analyzer results.

Both renderings are deterministic: findings arrive pre-sorted from the
driver, and the JSON form is dumped with sorted keys so two runs over
the same tree are byte-identical (the CI artifact diff-stable).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .driver import LintResult
from .registry import all_rules, FRAMEWORK_RULES

#: Bumped when the JSON shape changes incompatibly.
JSON_REPORT_VERSION = 1


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report: one ``path:line:col RULE message`` per finding."""
    lines: List[str] = []
    for finding in result.unsuppressed:
        lines.append(
            f"{finding.file}:{finding.line}:{finding.col}: "
            f"{finding.rule_id} [{finding.rule_name}] {finding.message}"
        )
    if show_suppressed:
        for finding in result.suppressed:
            reason = finding.suppression_reason or ""
            lines.append(
                f"{finding.file}:{finding.line}:{finding.col}: "
                f"{finding.rule_id} suppressed ({reason})"
            )
    lines.append(
        f"{len(result.unsuppressed)} finding(s) "
        f"({len(result.suppressed)} suppressed) in {result.files_scanned} file(s)"
    )
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact)."""
    payload: Dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "files_scanned": result.files_scanned,
        "findings": [finding.to_json_dict() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "suppressed": len(result.suppressed),
            "unsuppressed": len(result.unsuppressed),
        },
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def render_rule_catalog() -> str:
    """The ``lint --list-rules`` table: id, scope, one-line summary."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.scope:>8}]  {rule.name}: {rule.summary}")
    for rule_id in sorted(FRAMEWORK_RULES):
        name, summary = FRAMEWORK_RULES[rule_id]
        lines.append(f"{rule_id}  [framework]  {name}: {summary}")
    return "\n".join(lines) + "\n"
