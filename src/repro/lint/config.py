"""Analyzer configuration: which paths count as protocol code.

The locality rules (LOC1xx) only make sense for code that runs *inside*
the simulated CONGEST model -- the per-vertex protocol implementations.
Everything else (engines, the campaign layer, analysis) legitimately
sees the whole graph.  :class:`LintConfig` names the protocol packages
by glob so the fixture suite can point the same rules at a miniature
tree under ``tests/lint_fixtures``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

#: Directories whose code executes inside the simulated model.  These
#: mirror DESIGN.md's layering: ``core/`` (the paper's algorithm),
#: ``baselines/`` (competing distributed algorithms) and
#: ``simulator/primitives/`` (the building-block protocols).
DEFAULT_PROTOCOL_GLOBS: Tuple[str, ...] = (
    "*/repro/core/*",
    "*/repro/baselines/*",
    "*/repro/simulator/primitives/*",
)

#: Files the metrics-helper rule (CON302) must not fire in: the module
#: that *owns* the counters is where the helpers mutate them.
DEFAULT_METRICS_OWNER_GLOBS: Tuple[str, ...] = ("*/repro/simulator/metrics.py",)


@dataclass(frozen=True)
class LintConfig:
    """Path scoping knobs of one analyzer run."""

    protocol_globs: Tuple[str, ...] = DEFAULT_PROTOCOL_GLOBS
    metrics_owner_globs: Tuple[str, ...] = DEFAULT_METRICS_OWNER_GLOBS

    def is_protocol_path(self, path: Path) -> bool:
        return _matches_any(path, self.protocol_globs)

    def is_metrics_owner_path(self, path: Path) -> bool:
        return _matches_any(path, self.metrics_owner_globs)


def _matches_any(path: Path, globs: Tuple[str, ...]) -> bool:
    text = path.resolve().as_posix()
    return any(fnmatch.fnmatch(text, pattern) for pattern in globs)
