"""The analyzer driver: walk files, run rules, apply suppressions.

:func:`lint_paths` is the one entry point (the CLI's ``lint``
subcommand and the dogfood gate test both call it).  It walks the given
paths in sorted order, builds a :class:`~repro.lint.context.FileContext`
per file, runs every selected rule whose scope matches, silences
findings covered by ``# repro: allow[RULE-ID] reason`` comments, and
appends the framework's own suppression-hygiene diagnostics (SUP001
empty reason, SUP002 unknown rule id, SUP003 stale suppression).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .config import LintConfig
from .context import FileContext
from .findings import Finding
from .registry import FRAMEWORK_RULES, known_rule_ids, Rule, select_rules


@dataclass
class LintResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Python files under ``paths``, deterministically ordered."""
    files: List[Path] = []
    for path in paths:
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        files.extend(
            candidate
            for candidate in path.rglob("*.py")
            if "__pycache__" not in candidate.parts
        )
    unique = {candidate.resolve(): candidate for candidate in files}
    return [unique[key] for key in sorted(unique, key=lambda item: item.as_posix())]


def lint_paths(
    paths: Iterable[object],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    config: Optional[LintConfig] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Run the analyzer over ``paths`` and return every finding.

    Args:
        paths: files or directories to lint.
        select: run only these rule ids (default: all registered).
        ignore: skip these rule ids.
        config: path-scoping knobs (protocol globs etc.).
        root: base directory findings are displayed relative to.

    Unknown ids in ``select``/``ignore`` raise
    :class:`~repro.exceptions.ConfigurationError` -- a typo must not
    silently run (or silence) the wrong rules.
    """
    config = config or LintConfig()
    known = set(known_rule_ids())
    for label, requested in (("--select", select), ("--ignore", ignore)):
        unknown = sorted(set(requested or ()) - known)
        if unknown:
            raise ConfigurationError(
                f"{label} names unknown rule ids: {', '.join(unknown)}; "
                f"known ids: {', '.join(sorted(known))}"
            )
    rules: List[Rule] = list(select_rules(select=select, ignore=ignore))
    filtered_run = select is not None or bool(set(ignore or ()))
    files = collect_files([Path(path) for path in paths])

    result = LintResult()
    for file_path in files:
        result.files_scanned += 1
        display = _display_path(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
            context = FileContext(
                file_path,
                source,
                display_path=display,
                is_protocol_scope=config.is_protocol_path(file_path),
                is_metrics_owner=config.is_metrics_owner_path(file_path),
            )
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            result.findings.append(
                Finding(
                    file=display,
                    line=line,
                    col=1,
                    rule_id="LNT000",
                    rule_name="parse-error",
                    message=f"file does not parse: {error}",
                )
            )
            continue

        file_findings: List[Finding] = []
        for active_rule in rules:
            if not active_rule.applies_to(context):
                continue
            file_findings.extend(active_rule.checker(context))

        _apply_suppressions(context, file_findings)
        file_findings.extend(
            _suppression_diagnostics(context, known, skip_unused=filtered_run)
        )
        result.findings.extend(file_findings)

    result.findings.sort(key=Finding.sort_key)
    return result


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _apply_suppressions(context: FileContext, findings: List[Finding]) -> None:
    for finding in findings:
        for suppression in context.suppressions:
            if suppression.covers(finding.rule_id, finding.line):
                finding.suppressed = True
                finding.suppression_reason = suppression.reason
                suppression.used_ids.append(finding.rule_id)
                break


def _suppression_diagnostics(
    context: FileContext, known_ids: set, skip_unused: bool
) -> List[Finding]:
    """SUP001/SUP002/SUP003 for this file's suppression comments.

    SUP003 (stale suppression) is only emitted on unfiltered runs: under
    ``--select``/``--ignore`` most rules never executed, so "unused"
    would be noise.
    """
    diagnostics: List[Finding] = []

    def supmake(rule_id: str, line: int, message: str) -> Finding:
        name, _ = FRAMEWORK_RULES[rule_id]
        return Finding(
            file=context.display_path,
            line=line,
            col=1,
            rule_id=rule_id,
            rule_name=name,
            message=message,
        )

    for suppression in context.suppressions:
        listed = ", ".join(suppression.rule_ids)
        if not suppression.reason:
            diagnostics.append(
                supmake(
                    "SUP001",
                    suppression.line,
                    f"suppression allow[{listed}] has no justification; write "
                    "why the finding is safe here",
                )
            )
        unknown = sorted(set(suppression.rule_ids) - known_ids)
        if unknown:
            diagnostics.append(
                supmake(
                    "SUP002",
                    suppression.line,
                    f"suppression names unknown rule id(s): {', '.join(unknown)}",
                )
            )
        if (
            not skip_unused
            and not unknown
            and not suppression.used_ids
        ):
            diagnostics.append(
                supmake(
                    "SUP003",
                    suppression.line,
                    f"suppression allow[{listed}] matched no finding; remove "
                    "it or move it onto the offending line",
                )
            )
    return diagnostics
