"""Contract rules: the engine ABC, frozen specs, and read-only stores.

Three load-bearing interfaces get static enforcement:

* concrete :class:`~repro.simulator.engine.Engine` subclasses must
  implement the full kernel contract and charge costs through the
  shared :class:`~repro.simulator.metrics.Metrics` helpers (so every
  engine reports identical numbers);
* frozen spec dataclasses (``RunSpec``, ``NetworkCondition``, ...) are
  content-hashed identities -- mutating one after ``__post_init__``
  silently changes what its hash *should* have been;
* stores opened ``read_only=True`` (reports, merge sources) must never
  reach write paths.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .context import engine_param_names, FileContext
from .findings import Finding
from .registry import rule

#: The abstract kernel surface of repro.simulator.engine.Engine.  Kept
#: as a frozen copy so fixture trees lint without importing the package;
#: tests/test_lint.py asserts it matches the live ABC.
ENGINE_ABSTRACT_METHODS = frozenset(
    {
        "vertices",
        "node",
        "edge_weight",
        "send",
        "remaining_capacity",
        "pending_count",
        "deliver_round",
        "idle_rounds",
    }
)

#: Scalar counters only the Metrics helpers may advance.
METRICS_COUNTER_ATTRS = frozenset({"rounds", "messages", "words"})

#: Store methods that write; calling one on a read_only store is a bug
#: (the store raises at runtime -- this rule rejects it at review time).
STORE_WRITE_METHODS = frozenset(
    {
        "record_run",
        "record_graph",
        "append_record_line",
        "compact",
        "merge_from",
    }
)

#: Store constructors/openers whose ``read_only=True`` binding CON304 tracks.
STORE_OPENERS = frozenset({"open_store", "RunStore", "ColumnarStore"})


@rule(
    "CON301",
    "engine-abc-incomplete",
    "concrete Engine subclasses must implement the full kernel contract",
)
def check_engine_surface(context: FileContext) -> Iterator[Finding]:
    for info in context.classes:
        if not info.is_engine_subclass:
            continue
        # Abstract intermediates (declaring abstractmethods of their
        # own) opt out; only concrete kernels must be complete.
        is_abstract = any(
            any(
                (context.qualify(decorator) or "").endswith("abstractmethod")
                for decorator in method.decorator_list
            )
            for method in info.methods.values()
        )
        if is_abstract:
            continue
        defined: Set[str] = set(info.methods)
        for statement in info.node.body:
            if isinstance(statement, ast.Assign):
                defined.update(
                    target.id
                    for target in statement.targets
                    if isinstance(target, ast.Name)
                )
        missing = sorted(ENGINE_ABSTRACT_METHODS - defined)
        if missing:
            yield context.finding(
                info.node,
                "CON301",
                "engine-abc-incomplete",
                f"engine subclass {info.name} is missing contract methods: "
                f"{', '.join(missing)} (the Engine ABC would reject "
                "instantiation at runtime; implement or mark abstract)",
            )


def _metrics_bases(
    func: ast.FunctionDef, context: FileContext, in_engine_class: bool
) -> Set[str]:
    """Local names aliasing a Metrics instance inside ``func``."""
    aliases: Set[str] = set()
    engine_params = engine_param_names(func, context)

    def is_metrics_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in aliases
        if isinstance(node, ast.Attribute) and node.attr == "metrics":
            base = node.value
            if isinstance(base, ast.Name) and (
                base.id in engine_params or (in_engine_class and base.id == "self")
            ):
                return True
        return False

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and is_metrics_expr(node.value):
            aliases.update(
                target.id for target in node.targets if isinstance(target, ast.Name)
            )
    return aliases


@rule(
    "CON302",
    "direct-metrics-write",
    "engines charge costs through the Metrics helpers, never raw counters",
)
def check_direct_metrics_write(context: FileContext) -> Iterator[Finding]:
    """Assignments to ``metrics.rounds/messages/words`` outside metrics.py.

    The helpers (``record_round`` / ``record_message`` /
    ``record_bulk`` and ``Counter.update`` for per-kind tallies) are the
    single place accounting happens; raw ``+=`` on the counters is how
    engines drift apart.
    """
    if context.is_metrics_owner:
        return
    for func, owner in context.functions():
        in_engine_class = owner is not None and owner.is_engine_subclass
        aliases = _metrics_bases(func, context, in_engine_class)
        engine_params = engine_param_names(func, context)

        def metrics_expr(node: ast.AST) -> bool:
            if isinstance(node, ast.Name):
                return node.id in aliases
            if isinstance(node, ast.Attribute) and node.attr == "metrics":
                base = node.value
                return isinstance(base, ast.Name) and (
                    base.id in engine_params
                    or (in_engine_class and base.id == "self")
                )
            return False

        for node in ast.walk(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                # metrics.messages += n  /  metrics.words = n
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in METRICS_COUNTER_ATTRS
                    and metrics_expr(target.value)
                ):
                    yield context.finding(
                        node,
                        "CON302",
                        "direct-metrics-write",
                        f"direct write to the '{target.attr}' counter; charge "
                        "through Metrics.record_round/record_message/"
                        "record_bulk so every engine accounts identically",
                    )
                # metrics.messages_by_kind[kind] += n
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "messages_by_kind"
                    and metrics_expr(target.value.value)
                ):
                    yield context.finding(
                        node,
                        "CON302",
                        "direct-metrics-write",
                        "per-kind tally written by subscript; use "
                        "Metrics.record_bulk(kind=...) or Counter.update",
                    )


@rule(
    "CON303",
    "frozen-spec-mutation",
    "frozen dataclasses are content-hashed identities; no post-init setattr",
)
def check_frozen_mutation(context: FileContext) -> Iterator[Finding]:
    """``object.__setattr__`` outside ``__init__`` / ``__post_init__``.

    On a frozen spec this bypasses immutability after the identity was
    hashed.  Derived-value caches that equality/hashing provably ignore
    are the one sanctioned use -- suppress with that justification.
    """
    allowed_scopes = {"__init__", "__post_init__", "__setstate__"}
    for func, _ in context.functions():
        if func.name in allowed_scopes:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and context.qualify(node.func) == "object.__setattr__"
            ):
                yield context.finding(
                    node,
                    "CON303",
                    "frozen-spec-mutation",
                    f"object.__setattr__ in '{func.name}' mutates a frozen "
                    "instance after construction; frozen specs are hashed "
                    "identities (use dataclasses.replace, or suppress for "
                    "equality-ignored caches)",
                )


@rule(
    "CON304",
    "read-only-store-write",
    "stores opened read_only must never call write paths",
)
def check_read_only_store_write(context: FileContext) -> Iterator[Finding]:
    for func, _ in context.functions():
        read_only_names = _read_only_bindings(func, context)
        if not read_only_names:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in STORE_WRITE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in read_only_names
            ):
                yield context.finding(
                    node,
                    "CON304",
                    "read-only-store-write",
                    f"'.{node.func.attr}()' called on a store opened "
                    "read_only=True; read-only opens (reports, merge "
                    "sources) must never reach a write path",
                )


def _read_only_bindings(func: ast.FunctionDef, context: FileContext) -> Set[str]:
    """Names bound to a store opened with ``read_only=True`` in ``func``."""

    def opens_read_only(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        qual = context.qualify(node.func) or ""
        if qual.rsplit(".", 1)[-1] not in STORE_OPENERS:
            return False
        return any(
            keyword.arg == "read_only"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in node.keywords
        )

    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and opens_read_only(node.value):
            names.update(
                target.id for target in node.targets if isinstance(target, ast.Name)
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if opens_read_only(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names
