"""Finding and suppression value objects of the static analyzer.

A :class:`Finding` pins one rule violation to a file/line/column; a
:class:`Suppression` is one ``# repro: allow[RULE-ID] reason`` comment
parsed out of a source file.  Both are plain data so the reporters
(:mod:`repro.lint.reporting`) can render them as text or JSON without
touching the analysis machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Matches a ``repro: allow[RULE-ID] justification`` comment; the
#: justification after the closing bracket is mandatory (SUP001).
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_\-,\s]+)\]\s*[-:–—]*\s*(.*)$"
)


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment.

    Attributes:
        line: physical line the comment sits on (1-based).
        target_line: line whose findings it silences (the comment's own
            line for trailing comments, the next code line for
            standalone ones).
        rule_ids: rule identifiers listed inside the brackets.
        reason: justification text after the bracket (may be empty --
            the framework then reports SUP001).
        used_ids: rule ids that actually matched a finding (filled in by
            the driver; unused suppressions are reported as SUP003).
    """

    line: int
    target_line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used_ids: List[str] = field(default_factory=list)

    def covers(self, rule_id: str, finding_line: int) -> bool:
        return finding_line == self.target_line and rule_id in self.rule_ids


@dataclass
class Finding:
    """One rule violation (or framework diagnostic) at a source location."""

    file: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.file, self.line, self.col, self.rule_id)

    def to_json_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.suppressed:
            payload["reason"] = self.suppression_reason or ""
        return payload
