"""Determinism rules: byte-identical rows need hazard-free code.

The repo's core guarantee is that every row -- and therefore every
content hash -- is byte-identical across engines, executors and store
backends.  These rules reject the classic ways Python code silently
breaks that: ambient randomness, wall-clock reads, hash-order
iteration, process-local identities, and unsorted JSON feeding hashes.
They run over the whole tree.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set

from .context import FileContext
from .findings import Finding
from .registry import rule

#: ``random`` module entry points that are *not* hazards: constructing a
#: seeded generator is the sanctioned pattern.
SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` entry points that are explicitly seeded constructs.
SEEDED_NUMPY_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})

#: Wall-clock reads that leak real time into outputs.  The monotonic
#: timers (``perf_counter``, ``monotonic``, ``process_time``) stay legal:
#: they feed wall-clock telemetry, never row contents.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Function names that mark a content-hash path for DET205.
HASH_PATH_NAME = re.compile(r"hash|digest|fingerprint|canonical", re.IGNORECASE)


@rule(
    "DET201",
    "unseeded-random-call",
    "module-level random.* calls draw from ambient, unseeded state",
)
def check_unseeded_random(context: FileContext) -> Iterator[Finding]:
    """Any ``random.X(...)`` / ``numpy.random.X(...)`` off the module singleton.

    Deterministic code constructs ``random.Random(seed)`` (or
    ``numpy.random.default_rng(seed)``) and threads the instance.
    """
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = context.qualify(node.func)
        if not qual:
            continue
        if qual.startswith("random.") and qual.count(".") == 1:
            name = qual.split(".", 1)[1]
            if name not in SEEDED_RANDOM_OK:
                yield context.finding(
                    node,
                    "DET201",
                    "unseeded-random-call",
                    f"call to the module-level '{qual}' draws from ambient "
                    "global state; construct random.Random(seed) and thread it",
                )
        elif qual.startswith("numpy.random.") or qual.startswith("np.random."):
            name = qual.rsplit(".", 1)[1]
            if name not in SEEDED_NUMPY_OK:
                yield context.finding(
                    node,
                    "DET201",
                    "unseeded-random-call",
                    f"call to '{qual}' uses numpy's ambient global generator; "
                    "use numpy.random.default_rng(seed)",
                )


@rule(
    "DET202",
    "wall-clock-read",
    "wall-clock reads leak real time into deterministic paths",
)
def check_wall_clock(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        qual = context.qualify(node.func)
        if qual in WALL_CLOCK_CALLS:
            yield context.finding(
                node,
                "DET202",
                "wall-clock-read",
                f"'{qual}()' reads the wall clock; rows and hashes must not "
                "depend on real time (perf_counter is fine for telemetry "
                "durations)",
            )


# ---------------------------------------------------------------------- #
# DET203: hash-order iteration
# ---------------------------------------------------------------------- #

#: Call names producing sets.
SET_PRODUCERS = frozenset({"set", "frozenset", "normalize_edges"})

#: Wrappers that preserve the unordered hazard instead of fixing it.
ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate"})

#: Order-insensitive consumers: a comprehension feeding one of these
#: directly is not a hazard (``sorted(x for x in some_set)`` is the
#: sanctioned fix, and reductions ignore order entirely).
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all", "Counter"}
)


#: Nodes that open a new lexical scope (analyzed recursively with the
#: enclosing scope's set-typed names inherited, closure-style).
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _local_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node lexically inside ``scope``, not descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _set_expression_lines(
    scope: ast.AST, context: FileContext, inherited: Set[str]
) -> Iterator[Finding]:
    """Findings for unordered iteration in ``scope``, then nested scopes."""
    set_names: Set[str] = set(inherited)

    def is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            qual = context.qualify(node.func) or ""
            if qual.rsplit(".", 1)[-1] in SET_PRODUCERS:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return is_set_expr(node.func.value) or (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id in set_names
                )
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return is_set_expr(node.left) or is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False

    # One linear pass records which scope-local names hold sets;
    # assignment order approximates flow order closely enough for a lint.
    for node in _local_nodes(scope):
        if isinstance(node, ast.Assign) and is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    set_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None and is_set_expr(node.value):
                set_names.add(node.target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if is_set_expr(node.value):
                set_names.add(node.target.id)

    # Comprehensions handed straight to an order-insensitive consumer
    # (sorted, sum, min, ...) are exempt.
    exempt: Set[ast.AST] = set()
    for node in _local_nodes(scope):
        if isinstance(node, ast.Call):
            qual = (context.qualify(node.func) or "").rsplit(".", 1)[-1]
            if qual in ORDER_INSENSITIVE_CALLS:
                exempt.update(node.args)

    for node in _local_nodes(scope):
        if node in exempt:
            continue
        iterators = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterators.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterators.extend(generator.iter for generator in node.generators)
        elif isinstance(node, ast.Call):
            qual = context.qualify(node.func) or ""
            if qual in ORDER_SENSITIVE_WRAPPERS and node.args:
                iterators.append(node.args[0])
        for iterator in iterators:
            if is_set_expr(iterator):
                yield context.finding(
                    iterator,
                    "DET203",
                    "unordered-set-iteration",
                    "iterating a set in an order-sensitive position: set order "
                    "follows the process hash seed; wrap the iterable in "
                    "sorted(...) (order-insensitive reductions like len/sum/"
                    "min/max are exempt)",
                )

    # Nested scopes inherit the enclosing set-typed names (closures).
    for node in _local_nodes(scope):
        if isinstance(node, _SCOPE_NODES):
            yield from _set_expression_lines(node, context, set_names)


@rule(
    "DET203",
    "unordered-set-iteration",
    "set iteration order is hash-order; order-sensitive consumers need sorted()",
)
def check_unordered_iteration(context: FileContext) -> Iterator[Finding]:
    yield from _set_expression_lines(context.tree, context, set())


@rule(
    "DET204",
    "id-keyed-container",
    "id() values are process-local and allocation-order dependent",
)
def check_id_keyed(context: FileContext) -> Iterator[Finding]:
    """Every ``id(...)`` call: its value differs across processes/runs.

    Using ``id()`` as a container key is only safe for identity caches
    that are never iterated for output; such sites carry an inline
    suppression with the justification.
    """
    for node in ast.walk(context.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and node.func.id not in context.imports
        ):
            yield context.finding(
                node,
                "DET204",
                "id-keyed-container",
                "id() is process-local and allocation-dependent; keying or "
                "comparing by it is only safe for identity caches that never "
                "order or emit rows (suppress with justification if so)",
            )


@rule(
    "DET205",
    "unsorted-json-in-hash-path",
    "json.dumps feeding a hash must pass sort_keys=True",
)
def check_unsorted_json(context: FileContext) -> Iterator[Finding]:
    """``json.dumps`` without ``sort_keys=True`` in a content-hash path.

    A path counts as hash-relevant when the enclosing scope references
    ``hashlib`` or its name mentions hash/digest/fingerprint/canonical.
    Dict key order is insertion order, so two semantically equal
    payloads built in different orders hash differently without
    ``sort_keys``.
    """
    scopes: Dict[Optional[ast.AST], bool] = {}
    for func, _ in context.functions():
        uses_hashlib = any(
            (context.qualify(node) or "").startswith("hashlib.")
            for node in ast.walk(func)
            if isinstance(node, (ast.Name, ast.Attribute))
        )
        scopes[func] = uses_hashlib or bool(HASH_PATH_NAME.search(func.name))

    for func, hash_path in scopes.items():
        if not hash_path:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if context.qualify(node.func) != "json.dumps":
                continue
            sorted_keys = any(
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
            if not sorted_keys:
                yield context.finding(
                    node,
                    "DET205",
                    "unsorted-json-in-hash-path",
                    f"json.dumps in content-hash path '{func.name}' without "
                    "sort_keys=True: equal payloads built in different "
                    "insertion orders would hash differently",
                )
