"""``repro.lint``: model-conformance and determinism static analysis.

An AST-based analyzer enforcing the repo's three load-bearing
invariants at review time instead of golden-row time:

* **CONGEST locality** (LOC1xx): protocol code touches only the current
  vertex's state and communicates only through the ProtocolApi;
* **determinism** (DET2xx): no ambient randomness, wall-clock reads,
  hash-order iteration, process-local identities, or unsorted JSON in
  content-hash paths;
* **contracts** (CON3xx): full Engine ABC surface, costs charged
  through the shared Metrics helpers, frozen specs never mutated after
  construction, read-only stores never written.

Run it via ``repro-mst lint [paths] [--format json]``; silence a
reviewed finding with ``# repro: allow[RULE-ID] justification`` (the
justification is mandatory, and stale suppressions are themselves
findings).  DESIGN.md, Section 16 documents the rule catalog and how to
add rules alongside a new algorithm family.
"""

from .config import LintConfig
from .context import FileContext
from .driver import collect_files, lint_paths, LintResult
from .findings import Finding, Suppression
from .registry import all_rules, known_rule_ids, Rule, rule
from .reporting import render_json, render_rule_catalog, render_text

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintResult",
    "Rule",
    "Suppression",
    "all_rules",
    "collect_files",
    "known_rule_ids",
    "lint_paths",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "rule",
]
