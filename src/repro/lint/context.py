"""Per-file semantic context for the analyzer rules.

One :class:`FileContext` is built per linted file.  It owns the parsed
AST plus the light-weight semantic facts every rule needs:

* an **import table** mapping local names to dotted qualified names, so
  a rule can recognise ``from ..engine import Engine`` and
  ``import numpy as np`` alike;
* **class summaries** (:class:`ClassInfo`) with one-level base
  resolution, which is how rules identify ``Engine`` and
  ``NodeProtocol`` subclasses without importing anything;
* the parsed ``# repro: allow[RULE-ID] reason`` **suppressions**;
* shared typing heuristics (which names in a function refer to an
  engine, to a :class:`~repro.simulator.protocol.ProtocolApi`, ...).

Everything here is purely syntactic -- the analyzer never imports the
code under review, so it can lint fixture trees and broken branches.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding, Suppression, SUPPRESSION_PATTERN

#: Conventional parameter names that refer to the simulation kernel.
ENGINE_PARAM_NAMES = frozenset({"network", "engine"})

#: Conventional parameter names that refer to the restricted protocol API.
API_PARAM_NAMES = frozenset({"api"})


class ClassInfo:
    """Summary of one ``class`` statement."""

    def __init__(self, context: "FileContext", node: ast.ClassDef) -> None:
        self.node = node
        self.name = node.name
        self.base_quals: Tuple[str, ...] = tuple(
            qual for qual in (context.qualify(base) for base in node.bases) if qual
        )
        self.methods: Dict[str, ast.FunctionDef] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods.setdefault(statement.name, statement)
        self.engine_attrs = self._collect_engine_attrs(context)

    def _has_base(self, suffix: str) -> bool:
        bare = suffix.rsplit(".", 1)[-1]
        return any(qual == bare or qual.endswith(suffix) for qual in self.base_quals)

    @property
    def is_engine_subclass(self) -> bool:
        return self._has_base(".Engine") or self._has_base("engine.Engine")

    @property
    def is_protocol_subclass(self) -> bool:
        return self._has_base(".NodeProtocol") or self._has_base("protocol.NodeProtocol")

    def _collect_engine_attrs(self, context: "FileContext") -> Set[str]:
        """``self.X`` attribute names assigned from an engine in ``__init__``."""
        init = self.methods.get("__init__")
        if init is None:
            return set()
        engine_params = engine_param_names(init, context)
        attrs: Set[str] = set()
        for statement in ast.walk(init):
            if not isinstance(statement, ast.Assign):
                continue
            if not isinstance(statement.value, ast.Name):
                continue
            if statement.value.id not in engine_params:
                continue
            for target in statement.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
        return attrs


class FileContext:
    """Parsed file plus the semantic facts shared by every rule."""

    def __init__(
        self,
        path: Path,
        source: str,
        *,
        display_path: Optional[str] = None,
        is_protocol_scope: bool = False,
        is_metrics_owner: bool = False,
    ) -> None:
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.is_protocol_scope = is_protocol_scope
        self.is_metrics_owner = is_metrics_owner
        self.module = _derive_module(path)
        self.imports = self._build_imports()
        self.classes: List[ClassInfo] = [
            ClassInfo(self, node)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #

    def _build_imports(self) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        table[top] = top
            elif isinstance(node, ast.ImportFrom):
                module = self._resolve_from_module(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{module}.{alias.name}" if module else alias.name
        return table

    def _resolve_from_module(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: resolve against this file's dotted module.
        if not self.module:
            return node.module or ""
        parts = self.module.split(".")
        # ``from .`` inside a module drops the module's own name first.
        anchor = parts[: len(parts) - node.level]
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor)

    def qualify(self, node: ast.AST) -> Optional[str]:
        """Dotted qualified name of a ``Name``/``Attribute`` chain, or ``None``.

        ``Engine`` imported via ``from ..engine import Engine`` in
        ``repro/simulator/primitives/x.py`` qualifies to
        ``repro.simulator.engine.Engine``; an unimported bare name
        qualifies to itself (same-module reference).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))

    def annotation_quals(self, annotation: Optional[ast.AST]) -> Set[str]:
        """Qualified names of every atom inside an annotation expression."""
        quals: Set[str] = set()
        if annotation is None:
            return quals
        stack: List[ast.AST] = [annotation]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Name, ast.Attribute)):
                qual = self.qualify(node)
                if qual:
                    quals.add(qual)
                continue
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String annotation: map its leading segment through the
                # import table ("Engine" -> repro.simulator.engine.Engine).
                text = node.value.strip().split("[", 1)[0]
                head, _, rest = text.partition(".")
                resolved = self.imports.get(head, head)
                quals.add(f"{resolved}.{rest}" if rest else resolved)
                continue
            stack.extend(ast.iter_child_nodes(node))
        return quals

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #

    def functions(self) -> Iterator[Tuple[ast.FunctionDef, Optional[ClassInfo]]]:
        """Every function/method with its enclosing class (outermost first)."""
        class_of: Dict[ast.AST, ClassInfo] = {info.node: info for info in self.classes}

        def visit(node: ast.AST, owner: Optional[ClassInfo]) -> Iterator:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, class_of[child])
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, owner
                    yield from visit(child, owner)
                else:
                    yield from visit(child, owner)

        yield from visit(self.tree, None)

    def finding(self, node: ast.AST, rule_id: str, rule_name: str, message: str) -> Finding:
        return Finding(
            file=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            rule_name=rule_name,
            message=message,
        )

    # ------------------------------------------------------------------ #
    # suppressions
    # ------------------------------------------------------------------ #

    def _parse_suppressions(self) -> List[Suppression]:
        """Parse ``# repro: allow[...]`` comments via real comment tokens.

        Tokenizing (rather than a per-line regex) keeps documentation
        that merely *mentions* the suppression syntax -- like this
        docstring -- from being treated as a suppression.
        """
        suppressions: List[Suppression] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                token for token in tokens if token.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:
            comments = []
        for token in comments:
            match = SUPPRESSION_PATTERN.search(token.string)
            if not match:
                continue
            index = token.start[0]
            ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
            reason = match.group(2).strip()
            before_comment = self.lines[index - 1][: token.start[1]].strip()
            if before_comment:
                target = index
            else:
                target = _next_code_line(self.lines, index)
            suppressions.append(
                Suppression(line=index, target_line=target, rule_ids=ids, reason=reason)
            )
        return suppressions


def _next_code_line(lines: List[str], comment_line: int) -> int:
    """First line after ``comment_line`` holding code (skip blanks/comments)."""
    for offset, line in enumerate(lines[comment_line:], start=comment_line + 1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return comment_line


def _derive_module(path: Path) -> str:
    """Dotted module name derived from the package layout on disk."""
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------- #
# shared typing heuristics
# ---------------------------------------------------------------------- #


def _params(func: ast.FunctionDef) -> List[ast.arg]:
    args = func.args
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


def _params_matching(
    func: ast.FunctionDef,
    context: FileContext,
    conventional: frozenset,
    type_suffixes: Tuple[str, ...],
) -> Set[str]:
    names: Set[str] = set()
    for arg in _params(func):
        if arg.arg in conventional:
            names.add(arg.arg)
            continue
        for qual in context.annotation_quals(arg.annotation):
            bare = qual.rsplit(".", 1)[-1]
            if any(qual.endswith(suffix) or bare == suffix.rsplit(".", 1)[-1]
                   for suffix in type_suffixes):
                names.add(arg.arg)
                break
    return names


def engine_param_names(func: ast.FunctionDef, context: FileContext) -> Set[str]:
    """Parameters of ``func`` that refer to a simulation engine."""
    return _params_matching(func, context, ENGINE_PARAM_NAMES, (".Engine", "engine.Engine"))


def api_param_names(func: ast.FunctionDef, context: FileContext) -> Set[str]:
    """Parameters of ``func`` that refer to the restricted ProtocolApi."""
    return _params_matching(func, context, API_PARAM_NAMES, (".ProtocolApi",))


def is_engine_expr(
    node: ast.AST,
    context: FileContext,
    func: ast.FunctionDef,
    owner: Optional[ClassInfo],
) -> bool:
    """True when ``node`` refers to an engine in ``func``'s scope.

    Recognised shapes: a parameter named/annotated as an engine, and
    ``self.<attr>`` where ``__init__`` stored an engine under ``attr``.
    """
    if isinstance(node, ast.Name):
        return node.id in engine_param_names(func, context)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and owner is not None
    ):
        return node.attr in owner.engine_attrs
    return False
