"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace and never configures the root logger; applications
decide where the output goes.  :func:`get_logger` is a thin convenience
wrapper so modules do not repeat the namespace prefix, and
:func:`enable_console_logging` is used by the CLI and the examples.
"""

from __future__ import annotations

import logging

_NAMESPACE = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace for module ``name``."""
    if name.startswith(_NAMESPACE):
        return logging.getLogger(name)
    return logging.getLogger(f"{_NAMESPACE}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the ``repro`` logger (idempotent)."""
    logger = logging.getLogger(_NAMESPACE)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
