"""The Pipeline-MST procedure of Garay-Kutten-Peleg (second phase of GKP).

After the first phase has reduced the graph to O(sqrt(n)) fragments, GKP
pipelines *candidate* inter-fragment edges up an auxiliary BFS tree.  The
key idea (and the source of its Theta(n^{3/2}) message complexity) is the
per-vertex cycle filter: every vertex forwards, in increasing weight
order, only edges that do not close a cycle -- with respect to the
fragment identities of their endpoints -- among the edges it has already
forwarded.  Each vertex therefore forwards at most ``#fragments - 1``
edges, so the total message count is O(n * sqrt(n)); by the cycle
property none of the discarded edges can be an MST edge, so the root ends
up holding a superset of the missing MST edges and finishes locally.

This module implements the filtered, weight-ordered pipelined upcast as a
real per-node protocol on the simulator, so experiment E7's comparison of
message complexities against the paper's algorithm is measured, not
modelled.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..exceptions import ProtocolError
from ..simulator.engine import Engine
from ..simulator.message import Message
from ..simulator.node import NodeState
from ..simulator.primitives.trees import RootedForest
from ..simulator.protocol import NodeProtocol, ProtocolApi, run_protocol
from ..types import FragmentId, VertexId
from .kruskal import UnionFind

#: A candidate inter-fragment edge: (weight, u, v, fragment of u, fragment of v).
CandidateEdge = Tuple[float, VertexId, VertexId, FragmentId, FragmentId]


class _CycleFilter:
    """Per-vertex Kruskal-style filter over fragment identities."""

    def __init__(self, fragment_ids) -> None:
        self._union_find = UnionFind(fragment_ids)

    def admits(self, edge: CandidateEdge) -> bool:
        """True (and record the edge) iff it joins two separate fragment groups."""
        _, _, _, fragment_u, fragment_v = edge
        return self._union_find.union(fragment_u, fragment_v)


class _PipelineMSTProtocol(NodeProtocol):
    """Weight-ordered, cycle-filtered pipelined upcast of candidate edges."""

    name = "gkp-pipeline"

    def __init__(
        self,
        network: Engine,
        tree: RootedForest,
        items: Dict[VertexId, List[CandidateEdge]],
        fragment_ids: Set[FragmentId],
    ) -> None:
        super().__init__(tree.vertices)
        if len(tree.roots) != 1:
            raise ProtocolError("Pipeline-MST needs a single-rooted auxiliary tree")
        self._tree = tree
        self._fragment_ids = set(fragment_ids)
        self._pending: Dict[VertexId, List[CandidateEdge]] = {
            v: sorted(set(items.get(v, []))) for v in self.participants
        }
        self._filters: Dict[VertexId, _CycleFilter] = {
            v: _CycleFilter(self._fragment_ids) for v in self.participants
        }
        self._child_last: Dict[VertexId, Dict[VertexId, CandidateEdge]] = {
            v: {} for v in self.participants
        }
        self._child_done: Dict[VertexId, Set[VertexId]] = {v: set() for v in self.participants}
        self._done_sent: Set[VertexId] = set()
        self._root_received: List[CandidateEdge] = []
        self._messages_sent = 0

    # -------------------------------------------------------------- #

    def _all_children_done(self, vertex: VertexId) -> bool:
        return len(self._child_done[vertex]) == len(self._tree.children[vertex])

    def _eligible(self, vertex: VertexId, edge: CandidateEdge) -> bool:
        for child in self._tree.children[vertex]:
            if child in self._child_done[vertex]:
                continue
            last = self._child_last[vertex].get(child)
            if last is None or last < edge:
                return False
        return True

    def _step(self, vertex: VertexId, api: ProtocolApi) -> None:
        parent = self._tree.parent[vertex]
        if parent is None:
            if self._all_children_done(vertex):
                api.finish(vertex)
            return
        if vertex in self._done_sent:
            return
        budget = api.bandwidth
        pending = self._pending[vertex]
        while budget > 0 and pending:
            edge = pending[0]
            if not self._eligible(vertex, edge):
                break
            pending.pop(0)
            if not self._filters[vertex].admits(edge):
                # Heaviest in a cycle among already-forwarded edges: by the
                # cycle property it cannot be an MST edge, so it is dropped
                # locally (no message is spent on it).
                continue
            api.send(vertex, parent, "edge", payload=(edge,), words=1)
            self._messages_sent += 1
            budget -= 1
        if budget > 0 and not pending and self._all_children_done(vertex):
            api.send(vertex, parent, "done", words=1)
            self._done_sent.add(vertex)
            api.finish(vertex)

    # -------------------------------------------------------------- #

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        self._step(vertex, api)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            if message.kind.endswith(":edge"):
                edge = message.payload[0]
                previous = self._child_last[vertex].get(message.sender)
                if previous is not None and edge < previous:
                    raise ProtocolError(
                        f"child {message.sender} sent candidate edges out of weight order"
                    )
                self._child_last[vertex][message.sender] = edge
                if self._tree.parent[vertex] is None:
                    self._root_received.append(edge)
                else:
                    self._insert(vertex, edge)
            elif message.kind.endswith(":done"):
                self._child_done[vertex].add(message.sender)
        self._step(vertex, api)

    def _insert(self, vertex: VertexId, edge: CandidateEdge) -> None:
        pending = self._pending[vertex]
        # Keep the pending list sorted; candidates arrive roughly in order,
        # so a linear insertion from the back is cheap in practice.
        index = len(pending)
        while index > 0 and pending[index - 1] > edge:
            index -= 1
        if index < len(pending) and pending[index] == edge:
            return
        pending.insert(index, edge)

    def result(self, network: Engine) -> List[CandidateEdge]:
        root = self._tree.roots[0]
        collected = sorted(set(self._root_received + self._pending[root]))
        return collected


def pipeline_mst_upcast(
    network: Engine,
    tree: RootedForest,
    items: Dict[VertexId, List[CandidateEdge]],
    fragment_ids: Set[FragmentId],
) -> List[CandidateEdge]:
    """Run the Pipeline-MST filtered upcast and return the edges the root holds.

    The returned list is a superset of the MST edges of the fragments'
    graph; the caller (the GKP root) finishes with a local Kruskal pass
    over the fragment identities.
    """
    protocol = _PipelineMSTProtocol(network, tree, items, fragment_ids)
    return run_protocol(network, protocol)
