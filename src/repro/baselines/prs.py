"""A PRS16-style second phase over a (sqrt(n), sqrt(n)) base forest.

Pandurangan, Robinson and Scquizzato (STOC'17) merge fragments with
Boruvka phases coordinated through a BFS tree, always on top of an
``(O(sqrt(n)), O(sqrt(n)))`` base forest.  When ``D <= sqrt(n)`` this is
both time- and message-efficient, but for ``D >> sqrt(n)`` the per-phase
upcast/downcast of ``Theta(sqrt(n))`` items over a depth-``D`` tree costs
``Theta(D sqrt(n))`` messages per phase -- the blow-up that [PRS16] avoid
with randomised neighbourhood covers and that the paper avoids (this
paper's contribution) by switching to a ``k = D`` base forest.

This baseline is exactly the paper's engine forced to ``k = sqrt(n)``,
i.e. "PRS16's second phase without the neighbourhood-cover machinery".
Experiment E9 uses it to reproduce the message-count crossover that
motivates Section 1.2.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import networkx as nx

from ..config import normalize_config, RunConfig
from ..core.elkin_mst import compute_mst
from ..core.results import MSTRunResult
from ..types import VertexId


def prs_style_mst(
    graph: nx.Graph,
    config: Optional[RunConfig] = None,
    root: Optional[VertexId] = None,
) -> MSTRunResult:
    """Compute the MST with the sqrt(n)-base-forest (PRS16-style) strategy."""
    config = normalize_config(config)
    n = graph.number_of_nodes()
    ceil_sqrt_n = math.ceil(math.sqrt(max(n, 1)))
    # k = ceil(sqrt(n)) exactly (capped only by n itself, which can
    # matter for degenerate 1- and 2-vertex graphs): the strategy this
    # baseline reproduces *is* the sqrt(n) base forest, also below
    # n = 100, where a smaller k would shrink the small-n end of the
    # E9 crossover.
    forced_k = max(1, min(ceil_sqrt_n, n))
    forced_config = dataclasses.replace(config, base_forest_k=forced_k)
    result = compute_mst(graph, forced_config, root=root)
    return dataclasses.replace(
        result,
        algorithm="prs-style",
        details={**result.details, "forced_k": forced_k, "ceil_sqrt_n": ceil_sqrt_n},
    )
