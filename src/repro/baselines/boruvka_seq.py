"""Sequential Boruvka MST.

The distributed algorithms in this library are all Boruvka-shaped, so a
plain sequential Boruvka is a useful third oracle: it exercises the same
"minimum outgoing edge per component" logic without any simulator in the
loop, which makes test failures easy to localise.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import networkx as nx

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Edge, VertexId, normalize_edge
from .kruskal import UnionFind


def boruvka_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST of ``graph`` via sequential Boruvka phases."""
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("cannot compute the MST of an empty graph")
    union_find = UnionFind(graph.nodes())
    chosen: Set[Edge] = set()
    components = n
    while components > 1:
        best: Dict[VertexId, Tuple[float, VertexId, VertexId]] = {}
        for u, v, data in graph.edges(data=True):
            root_u, root_v = union_find.find(u), union_find.find(v)
            if root_u == root_v:
                continue
            key = (data["weight"], *normalize_edge(u, v))
            for root in (root_u, root_v):
                current: Optional[Tuple[float, VertexId, VertexId]] = best.get(root)
                if current is None or key < current:
                    best[root] = key
        if not best:
            raise DisconnectedGraphError(
                f"graph is disconnected: {components} components remain with no crossing edges"
            )
        merged_any = False
        for weight, u, v in best.values():
            if union_find.union(u, v):
                chosen.add(normalize_edge(u, v))
                components -= 1
                merged_any = True
        if not merged_any:
            raise GraphError("Boruvka made no progress (duplicate edge weights?)")
    return chosen
