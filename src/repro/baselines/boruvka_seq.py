"""Sequential Boruvka MST.

The distributed algorithms in this library are all Boruvka-shaped, so a
plain sequential Boruvka is a useful third oracle: it exercises the same
"minimum outgoing edge per component" logic without any simulator in the
loop, which makes test failures easy to localise.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import networkx as nx

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Edge, normalize_edge, VertexId
from .kruskal import UnionFind


def boruvka_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST of ``graph`` via sequential Boruvka phases.

    The edge list is extracted into flat ``(weight, u, v)`` tuples once
    and compacted as phases merge components (an edge that has become
    internal can never cross a cut again), so later phases scan only the
    surviving candidates instead of re-reading every networkx edge
    attribute -- the classical edge-pruning formulation.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("cannot compute the MST of an empty graph")
    union_find = UnionFind(graph.nodes())
    find = union_find.find
    edges = [
        (data["weight"], *normalize_edge(u, v))
        for u, v, data in graph.edges(data=True)
    ]
    chosen: Set[Edge] = set()
    components = n
    while components > 1:
        best: Dict[VertexId, Tuple[float, VertexId, VertexId]] = {}
        crossing = []
        for key in edges:
            root_u, root_v = find(key[1]), find(key[2])
            if root_u == root_v:
                continue
            crossing.append(key)
            current: Optional[Tuple[float, VertexId, VertexId]] = best.get(root_u)
            if current is None or key < current:
                best[root_u] = key
            current = best.get(root_v)
            if current is None or key < current:
                best[root_v] = key
        edges = crossing
        if not best:
            raise DisconnectedGraphError(
                f"graph is disconnected: {components} components remain with no crossing edges"
            )
        merged_any = False
        for weight, u, v in best.values():
            if union_find.union(u, v):
                chosen.add((u, v))
                components -= 1
                merged_any = True
        if not merged_any:
            raise GraphError("Boruvka made no progress (duplicate edge weights?)")
    return chosen
