"""The Garay-Kutten-Peleg (GKP / KP98) two-phase MST baseline.

Phase 1 is the same Controlled-GHS the paper uses, always run with
``k = sqrt(n)`` (GKP predates the diameter-sensitive choice of ``k``).
Phase 2 is the Pipeline-MST procedure: candidate inter-fragment edges are
pipelined towards the root of an auxiliary BFS tree with per-vertex cycle
filtering, and the root completes the MST locally.

The running time is near optimal, O(D + sqrt(n) log* n) rounds, but the
pipelining costs Theta(|E| + n^{3/2}) messages -- this is exactly the
behaviour the paper's experiment E7 contrasts with its own
O(|E| log n + n log n log* n) message bound.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

import networkx as nx

from ..config import normalize_config, RunConfig
from ..core.controlled_ghs import build_base_forest
from ..core.results import MSTRunResult
from ..exceptions import FragmentError
from ..graphs.properties import validate_weighted_graph
from ..simulator.engine import create_engine
from ..simulator.primitives.bfs import build_bfs_tree
from ..simulator.primitives.neighbor_exchange import neighbor_exchange
from ..types import CostReport, Edge, FragmentId, normalize_edge, VertexId
from .kruskal import kruskal_filter
from .pipeline_mst import CandidateEdge, pipeline_mst_upcast


def gkp_mst(
    graph: nx.Graph,
    config: Optional[RunConfig] = None,
    root: Optional[VertexId] = None,
) -> MSTRunResult:
    """Compute the MST with the Garay-Kutten-Peleg two-phase baseline."""
    config = normalize_config(config)
    validate_weighted_graph(graph, require_unique_weights=True)
    n = graph.number_of_nodes()
    if n == 1:
        return MSTRunResult(
            algorithm="gkp",
            edges=set(),
            total_weight=0.0,
            cost=CostReport(),
            n=1,
            m=0,
            bandwidth=config.bandwidth,
        )

    network = create_engine(
        graph, bandwidth=config.bandwidth, validate=False, engine=config.engine
    )
    stage_costs: Dict[str, CostReport] = {}

    # Auxiliary BFS tree (needed by the pipeline).
    checkpoint = network.checkpoint()
    bfs_tree = build_bfs_tree(network, root)
    stage_costs["bfs"] = network.cost_since(checkpoint)

    # Phase 1: Controlled-GHS with k = sqrt(n), regardless of the diameter.
    k = max(1, min(math.ceil(math.sqrt(n)), max(1, n // 10)))
    checkpoint = network.checkpoint()
    base = build_base_forest(network, k)
    stage_costs["controlled_ghs"] = network.cost_since(checkpoint)
    forest = base.forest
    mst_edges: Set[Edge] = set(forest.tree_edges())

    if forest.count > 1:
        # Phase 2: Pipeline-MST.
        checkpoint = network.checkpoint()
        fragment_of = forest.vertex_to_fragment()
        neighbor_fragments = neighbor_exchange(network, fragment_of)

        items: Dict[VertexId, List[CandidateEdge]] = {}
        for vertex in network.vertices():
            own_fragment = fragment_of[vertex]
            best_per_fragment: Dict[FragmentId, CandidateEdge] = {}
            node = network.node(vertex)
            for neighbor in node.neighbors:
                other_fragment = neighbor_fragments[vertex].get(neighbor, own_fragment)
                if other_fragment == own_fragment:
                    continue
                candidate: CandidateEdge = (
                    node.edge_weights[neighbor],
                    *normalize_edge(vertex, neighbor),
                    own_fragment,
                    other_fragment,
                )
                current = best_per_fragment.get(other_fragment)
                if current is None or candidate < current:
                    best_per_fragment[other_fragment] = candidate
            if best_per_fragment:
                items[vertex] = sorted(best_per_fragment.values())

        collected = pipeline_mst_upcast(
            network, bfs_tree.forest, items, set(forest.fragments)
        )
        stage_costs["pipeline"] = network.cost_since(checkpoint)

        # The root finishes locally: an MST of the fragments' graph over the
        # collected candidates supplies exactly the missing MST edges.
        remaining = kruskal_filter(
            (
                (weight, fragment_u, fragment_v)
                for weight, _, _, fragment_u, fragment_v in collected
            ),
            set(forest.fragments),
        )
        chosen_pairs = {tuple(sorted(pair)) for pair in remaining}
        for weight, u, v, fragment_u, fragment_v in sorted(collected):
            if tuple(sorted((fragment_u, fragment_v))) in chosen_pairs:
                mst_edges.add(normalize_edge(u, v))
                chosen_pairs.discard(tuple(sorted((fragment_u, fragment_v))))

    if len(mst_edges) != n - 1:
        raise FragmentError(
            f"GKP selected {len(mst_edges)} edges for a graph with {n} vertices"
        )
    total_weight = sum(graph[u][v]["weight"] for u, v in mst_edges)
    return MSTRunResult(
        algorithm="gkp",
        edges=mst_edges,
        total_weight=total_weight,
        cost=network.total_cost(),
        n=n,
        m=graph.number_of_edges(),
        bandwidth=config.bandwidth,
        details={
            "k": k,
            "bfs_depth": bfs_tree.depth,
            "base_fragment_count": forest.count,
            "stage_costs": {name: cost.__dict__ for name, cost in stage_costs.items()},
        },
    )
