"""Sequential Prim MST (second independent reference).

Having two independent sequential implementations (Prim with a heap here,
Kruskal with union-find in :mod:`repro.baselines.kruskal`) plus networkx
gives the verification layer three mutually checking oracles; the
distributed algorithms must agree with all of them.

:func:`prim_dense_mst` is the array-based O(n^2) Jarnik-Prim variant --
the textbook choice for dense graphs (it beats the heap when
``m = Theta(n^2)``, which is exactly the workload-zoo stress regime) and
a fourth independent implementation for the differential harness: it
shares no data structure with the heap Prim, Kruskal or Boruvka, so a
tie-breaking or comparison bug in any one of them cannot hide.
"""

from __future__ import annotations

import heapq
from typing import Set

import networkx as nx

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Edge, normalize_edge


def prim_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST of ``graph`` as a set of canonical edges (Prim's algorithm).

    Ties are broken by the ``(weight, u, v)`` total order, matching the
    rest of the library.  Raises :class:`DisconnectedGraphError` when the
    graph is not connected.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("cannot compute the MST of an empty graph")
    start = min(graph.nodes())
    visited = {start}
    chosen: Set[Edge] = set()
    frontier = [
        (graph[start][neighbor]["weight"], *normalize_edge(start, neighbor), neighbor)
        for neighbor in graph.neighbors(start)
    ]
    heapq.heapify(frontier)
    while frontier and len(visited) < graph.number_of_nodes():
        weight, u, v, new_vertex = heapq.heappop(frontier)
        if new_vertex in visited:
            continue
        visited.add(new_vertex)
        chosen.add((u, v))
        for neighbor in graph.neighbors(new_vertex):
            if neighbor not in visited:
                heapq.heappush(
                    frontier,
                    (
                        graph[new_vertex][neighbor]["weight"],
                        *normalize_edge(new_vertex, neighbor),
                        neighbor,
                    ),
                )
    if len(visited) != graph.number_of_nodes():
        raise DisconnectedGraphError(
            f"graph is disconnected: Prim reached {len(visited)} of {graph.number_of_nodes()} vertices"
        )
    return chosen


def prim_dense_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST as a set of canonical edges (array-based O(n^2) Jarnik-Prim).

    Instead of a heap, every non-tree vertex keeps its single best
    connection to the tree in a flat array and each step scans for the
    minimum -- ``O(n)`` per step, ``O(n^2)`` total, independent of ``m``.
    Ties are broken by the ``(weight, u, v)`` total order, matching the
    rest of the library, so the result is identical to every other
    reference on distinct-weight graphs.  Raises
    :class:`DisconnectedGraphError` when the graph is not connected.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("cannot compute the MST of an empty graph")
    vertices = sorted(graph.nodes())
    start = vertices[0]
    in_tree = {start}
    # best[v] = (weight, u_canon, v_canon): the lightest known edge
    # connecting v to the tree, keyed for lexicographic tie-breaks.
    best = {}
    for neighbor in graph.neighbors(start):
        weight = graph[start][neighbor]["weight"]
        best[neighbor] = (weight, *normalize_edge(start, neighbor))
    chosen: Set[Edge] = set()
    while len(in_tree) < len(vertices):
        if not best:
            raise DisconnectedGraphError(
                f"graph is disconnected: dense Prim reached {len(in_tree)} "
                f"of {len(vertices)} vertices"
            )
        new_vertex, (_, u, v) = min(best.items(), key=lambda item: item[1])
        del best[new_vertex]
        in_tree.add(new_vertex)
        chosen.add((u, v))
        for neighbor in graph.neighbors(new_vertex):
            if neighbor in in_tree:
                continue
            candidate = (
                graph[new_vertex][neighbor]["weight"],
                *normalize_edge(new_vertex, neighbor),
            )
            current = best.get(neighbor)
            if current is None or candidate < current:
                best[neighbor] = candidate
    return chosen
