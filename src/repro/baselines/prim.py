"""Sequential Prim MST (second independent reference).

Having two independent sequential implementations (Prim with a heap here,
Kruskal with union-find in :mod:`repro.baselines.kruskal`) plus networkx
gives the verification layer three mutually checking oracles; the
distributed algorithms must agree with all of them.
"""

from __future__ import annotations

import heapq
from typing import Set

import networkx as nx

from ..exceptions import DisconnectedGraphError, GraphError
from ..types import Edge, normalize_edge


def prim_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST of ``graph`` as a set of canonical edges (Prim's algorithm).

    Ties are broken by the ``(weight, u, v)`` total order, matching the
    rest of the library.  Raises :class:`DisconnectedGraphError` when the
    graph is not connected.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("cannot compute the MST of an empty graph")
    start = min(graph.nodes())
    visited = {start}
    chosen: Set[Edge] = set()
    frontier = [
        (graph[start][neighbor]["weight"], *normalize_edge(start, neighbor), neighbor)
        for neighbor in graph.neighbors(start)
    ]
    heapq.heapify(frontier)
    while frontier and len(visited) < graph.number_of_nodes():
        weight, u, v, new_vertex = heapq.heappop(frontier)
        if new_vertex in visited:
            continue
        visited.add(new_vertex)
        chosen.add((u, v))
        for neighbor in graph.neighbors(new_vertex):
            if neighbor not in visited:
                heapq.heappush(
                    frontier,
                    (
                        graph[new_vertex][neighbor]["weight"],
                        *normalize_edge(new_vertex, neighbor),
                        neighbor,
                    ),
                )
    if len(visited) != graph.number_of_nodes():
        raise DisconnectedGraphError(
            f"graph is disconnected: Prim reached {len(visited)} of {graph.number_of_nodes()} vertices"
        )
    return chosen
