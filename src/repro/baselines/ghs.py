"""A synchronous GHS-style distributed Boruvka baseline.

This is the classical pre-sublinear-time behaviour the paper's
introduction contrasts with: fragments repeatedly find their MWOE via a
convergecast over their own fragment tree and merge, with no control over
fragment diameters and no auxiliary BFS tree.  Fragment diameters can
grow to Theta(n), so the running time is O(n log n) rounds even on
low-diameter graphs, while the message complexity stays
O((|E| + n) log n) -- the opposite trade-off to Garay-Kutten-Peleg.

The implementation reuses the library's fragment machinery and charges
every step (neighbour exchange, MWOE convergecast, cross-edge
announcements, new-identity broadcast) through the simulator, exactly as
the paper's algorithm does, so the head-to-head round/message comparison
in experiment E8 is apples to apples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..config import normalize_config, RunConfig
from ..core.boruvka_merge import merge_fragment_graph
from ..core.fragments import MSTForest
from ..core.mwoe import Candidate, candidate_edge, fragment_outgoing_edges
from ..core.results import MSTRunResult
from ..exceptions import FragmentError
from ..graphs.properties import validate_weighted_graph
from ..simulator.engine import create_engine
from ..simulator.primitives.broadcast import forest_broadcast
from ..simulator.primitives.direct import send_over_edges
from ..simulator.primitives.neighbor_exchange import neighbor_exchange
from ..types import CostReport, Edge, FragmentId, PhaseTelemetry, VertexId


def ghs_style_mst(graph: nx.Graph, config: Optional[RunConfig] = None) -> MSTRunResult:
    """Compute the MST with the GHS-style synchronous Boruvka baseline."""
    config = normalize_config(config)
    validate_weighted_graph(graph, require_unique_weights=True)
    n = graph.number_of_nodes()
    if n == 1:
        return MSTRunResult(
            algorithm="ghs",
            edges=set(),
            total_weight=0.0,
            cost=CostReport(),
            n=1,
            m=0,
            bandwidth=config.bandwidth,
        )

    network = create_engine(
        graph, bandwidth=config.bandwidth, validate=False, engine=config.engine
    )
    forest = MSTForest.singletons(network.vertices())
    mst_edges: Set[Edge] = set()
    phases: List[PhaseTelemetry] = []
    phase_index = 0

    while forest.count > 1:
        phase_start = network.checkpoint()

        fragment_of = forest.vertex_to_fragment()
        neighbor_fragments = neighbor_exchange(network, fragment_of)
        combined = forest.combined_forest()
        mwoe_by_root = fragment_outgoing_edges(
            network, combined, fragment_of, neighbor_fragments
        )

        mwoe: Dict[FragmentId, Candidate] = {}
        for fragment_id, fragment in forest.fragments.items():
            candidate = mwoe_by_root[fragment.root]
            if candidate is None:
                raise FragmentError(
                    f"fragment {fragment_id} has no outgoing edge although "
                    f"{forest.count} fragments remain"
                )
            mwoe[fragment_id] = candidate

        # The chosen edge is announced inside the fragment and over the edge
        # itself (same charging as in Controlled-GHS).
        forest_broadcast(
            network, combined, {forest.root_of(fid): mwoe[fid][:3] for fid in mwoe}
        )
        send_over_edges(
            network, [(mwoe[fid][1], mwoe[fid][2], fid) for fid in sorted(mwoe)]
        )

        merge = merge_fragment_graph(mwoe, set(forest.fragments))
        mst_edges |= merge.mst_edges_added

        groups = _component_groups(forest, mwoe, merge.new_fragment_of)
        new_forest = forest.merge_groups(groups)

        forest_broadcast(
            network,
            new_forest.combined_forest(),
            {root: fid for fid, root in new_forest.roots().items()},
        )

        phase_cost = network.cost_since(phase_start)
        phases.append(
            PhaseTelemetry(
                phase=phase_index,
                fragments_before=forest.count,
                fragments_after=new_forest.count,
                rounds=phase_cost.rounds,
                messages=phase_cost.messages,
                mst_edges_added=len(merge.mst_edges_added),
                details={"max_fragment_diameter": forest.max_diameter()},
            )
        )
        forest = new_forest
        phase_index += 1
        if phase_index > 2 * n.bit_length() + 4:
            raise FragmentError(f"GHS-style Boruvka did not converge after {phase_index} phases")

    if len(mst_edges) != n - 1:
        raise FragmentError(
            f"GHS baseline selected {len(mst_edges)} edges for a graph with {n} vertices"
        )
    total_weight = sum(graph[u][v]["weight"] for u, v in mst_edges)
    return MSTRunResult(
        algorithm="ghs",
        edges=mst_edges,
        total_weight=total_weight,
        cost=network.total_cost(),
        n=n,
        m=graph.number_of_edges(),
        bandwidth=config.bandwidth,
        phases=phases if config.collect_telemetry else [],
        details={"phase_count": phase_index},
    )


def _component_groups(
    forest: MSTForest,
    mwoe: Dict[FragmentId, Candidate],
    new_fragment_of: Dict[FragmentId, FragmentId],
) -> List[Tuple[List[FragmentId], List[Edge], VertexId]]:
    """Group fragments by merged component and choose deterministic new roots."""
    members: Dict[FragmentId, List[FragmentId]] = {}
    for fragment_id, component in new_fragment_of.items():
        members.setdefault(component, []).append(fragment_id)
    groups: List[Tuple[List[FragmentId], List[Edge], VertexId]] = []
    for component, fragment_ids in sorted(members.items()):
        if len(fragment_ids) == 1:
            continue
        component_set = set(fragment_ids)
        edges = sorted(
            {
                candidate_edge(mwoe[fid])
                for fid in fragment_ids
                if fid in mwoe and mwoe[fid][3] in component_set
            }
        )
        new_root = forest.root_of(max(fragment_ids))
        groups.append((sorted(fragment_ids), edges, new_root))
    return groups
