"""Adapter exposing the sequential references through the registry contract.

The sequential MSTs (Kruskal, Prim, Boruvka) historically returned bare
edge sets, which kept them out of every sweep: ``compare_algorithms``
and ``repro-mst sweep`` only speak the ``(graph, RunConfig) ->
MSTRunResult`` contract.  :func:`sequential_runner` wraps an edge-set
function into that contract so the references become first-class,
sweepable registry entries -- they report ``rounds = messages = 0``
(no simulated network is involved) and are marked
``is_distributed=False`` in their :class:`~repro.algorithms.AlgorithmInfo`,
which is how analysis code distinguishes "free" local computation from
CONGEST executions.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

import networkx as nx

from ..config import normalize_config, RunConfig
from ..core.results import MSTRunResult
from ..types import CostReport, Edge

#: A sequential MST: graph -> canonical edge set.
EdgeSetFn = Callable[[nx.Graph], Set[Edge]]

#: A registry-compatible runner.
SequentialRunner = Callable[[nx.Graph, Optional[RunConfig]], MSTRunResult]


def sequential_runner(name: str, edge_fn: EdgeSetFn) -> SequentialRunner:
    """Wrap the edge-set function ``edge_fn`` into the runner contract.

    The returned runner accepts ``config: Optional[RunConfig] = None``
    exactly like the distributed runners (same normalization), records
    the configured bandwidth for provenance even though no message ever
    crosses an edge, and reports zero rounds/messages/words.
    """

    def runner(graph: nx.Graph, config: Optional[RunConfig] = None) -> MSTRunResult:
        config = normalize_config(config)
        edges = edge_fn(graph)
        total_weight = sum(graph[u][v]["weight"] for u, v in edges)
        return MSTRunResult(
            algorithm=name,
            edges=set(edges),
            total_weight=total_weight,
            cost=CostReport(),
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            bandwidth=config.bandwidth,
            details={"distributed": False},
        )

    runner.__name__ = f"{name}_sequential_runner"
    runner.__qualname__ = runner.__name__
    runner.__doc__ = f"Sequential {name} MST adapted to the registry runner contract."
    return runner
