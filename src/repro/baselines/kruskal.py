"""Sequential Kruskal MST (reference implementation).

Used as ground truth by the verification layer (together with networkx's
own MST) and as the local computation the GKP root performs on the edges
the Pipeline-MST procedure delivers.  Ties are broken by the
``(weight, u, v)`` order of :class:`repro.types.EdgeKey`, the same rule
the distributed algorithms use, so all implementations agree even when
the caller did not make the weights unique.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

import networkx as nx

from ..exceptions import DisconnectedGraphError
from ..types import Edge, normalize_edge, VertexId


class UnionFind:
    """Union-find with path compression (no ranks; fine for library sizes)."""

    def __init__(self, elements: Iterable[VertexId]) -> None:
        self._parent: Dict[VertexId, VertexId] = {element: element for element in elements}

    def find(self, element: VertexId) -> VertexId:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: VertexId, b: VertexId) -> bool:
        """Merge the sets of ``a`` and ``b``; return False when already joined."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        return True


def kruskal_filter(
    weighted_edges: Iterable[Tuple[float, VertexId, VertexId]],
    vertices: Iterable[VertexId],
) -> Set[Edge]:
    """Kruskal's greedy filter over an arbitrary edge stream.

    Edges are considered in increasing ``(weight, u, v)`` order; an edge
    is kept iff it joins two previously separate components.  The input
    does not have to describe a connected graph -- the result is a
    maximum spanning *forest* of whatever was supplied.
    """
    union_find = UnionFind(vertices)
    chosen: Set[Edge] = set()
    for weight, u, v in sorted(
        (weight, *normalize_edge(u, v)) for weight, u, v in weighted_edges
    ):
        if union_find.union(u, v):
            chosen.add((u, v))
    return chosen


def kruskal_mst(graph: nx.Graph) -> Set[Edge]:
    """The MST of ``graph`` as a set of canonical edges.

    Raises :class:`DisconnectedGraphError` when ``graph`` is not connected
    (an MST does not exist in that case).
    """
    edges = [(data["weight"], u, v) for u, v, data in graph.edges(data=True)]
    chosen = kruskal_filter(edges, graph.nodes())
    if len(chosen) != graph.number_of_nodes() - 1:
        raise DisconnectedGraphError(
            f"graph is disconnected: spanning forest has {len(chosen)} edges "
            f"for {graph.number_of_nodes()} vertices"
        )
    return chosen
