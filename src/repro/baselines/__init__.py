"""Baseline MST algorithms the paper compares against (or builds upon).

Sequential references (used for verification and as ground truth):

* :mod:`repro.baselines.kruskal`, :mod:`repro.baselines.prim`,
  :mod:`repro.baselines.boruvka_seq`.

Distributed baselines (all run on the same simulator and report the same
result type as the paper's algorithm):

* :mod:`repro.baselines.ghs` -- a synchronous GHS-style Boruvka with no
  diameter control: O(n log n) time, O((|E| + n) log n) messages.
* :mod:`repro.baselines.gkp` -- the Garay-Kutten-Peleg two-phase
  algorithm: Controlled-GHS with ``k = sqrt(n)`` followed by the
  Pipeline-MST upcast; near-optimal time but Theta(|E| + n^{3/2})
  messages.
* :mod:`repro.baselines.prs` -- the paper's algorithm forced to use a
  ``(sqrt(n), sqrt(n))`` base forest regardless of the diameter, i.e. the
  "second phase of [PRS16] without neighbourhood covers"; it exhibits the
  Theta(D sqrt(n)) message blow-up on high-diameter graphs that motivates
  the paper's ``k = D`` choice.
"""

from .boruvka_seq import boruvka_mst
from .ghs import ghs_style_mst
from .gkp import gkp_mst
from .kruskal import kruskal_mst
from .prim import prim_dense_mst, prim_mst
from .prs import prs_style_mst

__all__ = [
    "boruvka_mst",
    "ghs_style_mst",
    "gkp_mst",
    "kruskal_mst",
    "prim_dense_mst",
    "prim_mst",
    "prs_style_mst",
]
