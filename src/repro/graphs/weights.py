"""Edge-weight assignment utilities.

The paper assumes (w.l.o.g.) that the MST is unique, which holds when all
edge weights are distinct.  The helpers here assign distinct weights in a
reproducible way and can repair an arbitrary weighting by breaking ties
deterministically with the lexicographic edge order, mirroring the
``(weight, id(u), id(v))`` total order used by the algorithms
(:class:`repro.types.EdgeKey`).
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from ..exceptions import WeightError
from ..types import normalize_edge


def weights_are_unique(graph: nx.Graph) -> bool:
    """Return True when every edge has a ``weight`` and all weights differ."""
    seen: set[float] = set()
    for _, _, data in graph.edges(data=True):
        if "weight" not in data:
            return False
        w = data["weight"]
        if w in seen:
            return False
        seen.add(w)
    return True


def assign_unique_weights(graph: nx.Graph, start: float = 1.0, step: float = 1.0) -> nx.Graph:
    """Assign deterministic distinct weights ``start, start+step, ...``.

    Edges are enumerated in sorted canonical order so the assignment is a
    pure function of the graph structure.  The graph is modified in place
    and returned for convenience.
    """
    if step <= 0:
        raise WeightError(f"step must be positive, got {step}")
    ordered = sorted(normalize_edge(u, v) for u, v in graph.edges())
    for index, (u, v) in enumerate(ordered):
        graph[u][v]["weight"] = start + index * step
    return graph


def assign_random_unique_weights(
    graph: nx.Graph,
    seed: Optional[int] = None,
    low: float = 1.0,
    high: float = 1000.0,
) -> nx.Graph:
    """Assign random distinct weights drawn from ``[low, high)``.

    A random permutation of an evenly spaced grid is used, which keeps the
    weights distinct regardless of the number of edges while still being
    "random looking" for the experiments.  The graph is modified in place.
    """
    if high <= low:
        raise WeightError(f"need high > low, got low={low} high={high}")
    rng = random.Random(seed)
    edges = sorted(normalize_edge(u, v) for u, v in graph.edges())
    m = len(edges)
    if m == 0:
        return graph
    span = high - low
    values = [low + span * (i + 1) / (m + 1) for i in range(m)]
    rng.shuffle(values)
    for (u, v), w in zip(edges, values):
        graph[u][v]["weight"] = w
    return graph


def ensure_unique_weights(graph: nx.Graph, epsilon: float = 1e-9) -> nx.Graph:
    """Break ties in an existing weighting deterministically.

    Edges that share a weight receive a tiny lexicographic perturbation so
    the resulting MST equals the MST obtained under the
    ``(weight, u, v)`` tie-breaking order on the original weights.  Raises
    :class:`WeightError` if any edge lacks a weight.
    """
    missing = [(u, v) for u, v, d in graph.edges(data=True) if "weight" not in d]
    if missing:
        raise WeightError(f"{len(missing)} edges have no 'weight' attribute, e.g. {missing[0]}")
    ordered = sorted(
        (data["weight"], *normalize_edge(u, v)) for u, v, data in graph.edges(data=True)
    )
    for rank, (w, u, v) in enumerate(ordered):
        graph[u][v]["weight"] = w + rank * epsilon
    return graph
