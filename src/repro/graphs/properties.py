"""Graph property helpers: hop-diameter, validation, summaries.

The paper's bounds are parameterised by ``n`` (vertices), ``m`` (edges)
and ``D`` (the hop-diameter, i.e. the diameter of the unweighted graph).
:func:`graph_summary` collects those once per experiment so benchmarks
and verification share identical values.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..exceptions import DisconnectedGraphError, GraphError, WeightError
from .weights import weights_are_unique


def is_connected_weighted(graph: nx.Graph) -> bool:
    """Return True when ``graph`` is non-empty, connected, and fully weighted."""
    if graph.number_of_nodes() == 0:
        return False
    if not nx.is_connected(graph):
        return False
    return all("weight" in data for _, _, data in graph.edges(data=True))


def validate_weighted_graph(graph: nx.Graph, require_unique_weights: bool = True) -> None:
    """Raise a descriptive error unless ``graph`` is a valid algorithm input.

    A valid input is a non-empty, connected, undirected graph whose edges
    all carry a positive ``weight``; when ``require_unique_weights`` the
    weights must also be pairwise distinct (the paper's uniqueness
    assumption).
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("graph has no vertices")
    if graph.is_directed():
        raise GraphError("graph must be undirected")
    if not nx.is_connected(graph):
        raise DisconnectedGraphError(
            f"graph is disconnected ({nx.number_connected_components(graph)} components)"
        )
    for u, v, data in graph.edges(data=True):
        if "weight" not in data:
            raise WeightError(f"edge ({u}, {v}) has no 'weight' attribute")
        if not data["weight"] > 0:
            raise WeightError(f"edge ({u}, {v}) has non-positive weight {data['weight']}")
    if require_unique_weights and not weights_are_unique(graph):
        raise WeightError(
            "edge weights are not pairwise distinct; call ensure_unique_weights() first"
        )


def hop_diameter(graph: nx.Graph) -> int:
    """Return the hop-diameter ``D`` (diameter of the unweighted graph).

    A single-vertex graph has diameter 0.  Raises
    :class:`DisconnectedGraphError` for disconnected graphs, where the
    hop-diameter is undefined.

    Implementation note: instance descriptions recompute ``D`` for every
    distinct graph of a sweep, so this is a measured hot path.  Instead
    of one BFS per source (``O(n m)`` with a large Python constant), the
    distance-``<= k`` reachability sets of *all* vertices are advanced
    simultaneously as arbitrary-precision integer bitmasks:
    ``reach[u] |= reach[w]`` over each edge per step, so every step
    costs ``O(m)`` word-parallel OR operations (C-speed, ``n/64`` words
    each) and the diameter is the number of steps until every set
    saturates.  Total ``O(D m n / 64)`` -- far ahead of BFS on the
    low-diameter dense graphs where descriptions are most expensive,
    and still trivially fast on high-diameter sparse families.  A step
    that makes no progress before saturation is the disconnectedness
    certificate.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("hop_diameter of an empty graph is undefined")
    if n == 1:
        return 0
    index = {vertex: position for position, vertex in enumerate(graph.nodes())}
    adjacency: list = [[] for _ in range(n)]
    reach: list = [1 << position for position in range(n)]
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        adjacency[iu].append(iv)
        adjacency[iv].append(iu)
        reach[iu] |= 1 << iv
        reach[iv] |= 1 << iu
    full = (1 << n) - 1
    diameter = 1
    pending = [position for position in range(n) if reach[position] != full]
    while pending:
        # Two-phase (Jacobi) update: every new set is computed from the
        # previous step's sets before any is committed, so one loop
        # iteration advances the distance bound by exactly one hop.
        updates = []
        for u in pending:
            bits = reach[u]
            for w in adjacency[u]:
                bits |= reach[w]
            updates.append((u, bits))
        changed = False
        still_pending = []
        for u, bits in updates:
            if bits != reach[u]:
                reach[u] = bits
                changed = True
            if bits != full:
                still_pending.append(u)
        if not changed:
            raise DisconnectedGraphError(
                "hop_diameter of a disconnected graph is undefined"
            )
        diameter += 1
        pending = still_pending
    return diameter


@dataclass(frozen=True)
class GraphSummary:
    """The quantities that parameterise every bound in the paper."""

    n: int
    m: int
    hop_diameter: int
    min_weight: float
    max_weight: float
    total_weight: float

    @property
    def is_low_diameter(self) -> bool:
        """True when ``D <= sqrt(n)``: the paper's small-diameter regime."""
        return self.hop_diameter * self.hop_diameter <= self.n


def graph_summary(graph: nx.Graph) -> GraphSummary:
    """Compute the :class:`GraphSummary` of a validated weighted graph."""
    validate_weighted_graph(graph, require_unique_weights=False)
    weights = [data["weight"] for _, _, data in graph.edges(data=True)]
    return GraphSummary(
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        hop_diameter=hop_diameter(graph),
        min_weight=min(weights) if weights else 0.0,
        max_weight=max(weights) if weights else 0.0,
        total_weight=sum(weights),
    )
