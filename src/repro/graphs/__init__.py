"""Weighted-graph substrate: generators, weight schemes, properties, IO.

All graphs in this package are undirected, connected
:class:`networkx.Graph` instances whose edges carry a ``weight``
attribute.  Generators guarantee connectivity, and
:func:`repro.graphs.weights.assign_unique_weights` makes the MST unique,
matching the paper's (standard, w.l.o.g.) uniqueness assumption.
"""

from .generators import (
    barbell_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    edge_list_graph,
    GraphSpec,
    grid_graph,
    hub_path_graph,
    lollipop_graph,
    make_graph,
    path_graph,
    preferential_attachment_graph,
    random_connected_graph,
    random_geometric_connected_graph,
    random_regular_connected_graph,
    random_tree,
    star_graph,
    torus_graph,
    wheel_graph,
)
from .io import read_edge_list, write_edge_list
from .properties import (
    graph_summary,
    GraphSummary,
    hop_diameter,
    is_connected_weighted,
    validate_weighted_graph,
)
from .weights import (
    assign_random_unique_weights,
    assign_unique_weights,
    ensure_unique_weights,
    weights_are_unique,
)

__all__ = [
    "GraphSpec",
    "barbell_graph",
    "caterpillar_graph",
    "complete_graph",
    "cycle_graph",
    "edge_list_graph",
    "grid_graph",
    "hub_path_graph",
    "lollipop_graph",
    "path_graph",
    "preferential_attachment_graph",
    "wheel_graph",
    "random_connected_graph",
    "random_geometric_connected_graph",
    "random_regular_connected_graph",
    "random_tree",
    "star_graph",
    "torus_graph",
    "make_graph",
    "assign_random_unique_weights",
    "assign_unique_weights",
    "ensure_unique_weights",
    "weights_are_unique",
    "GraphSummary",
    "graph_summary",
    "hop_diameter",
    "is_connected_weighted",
    "validate_weighted_graph",
    "read_edge_list",
    "write_edge_list",
]
