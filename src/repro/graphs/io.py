"""Edge-list IO for weighted graphs.

The format is a plain text file with one edge per line,
``u v weight``, plus optional ``# comment`` lines.  Isolated vertices are
not representable (the algorithms require connected graphs anyway).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import networkx as nx

from ..exceptions import GraphError

PathLike = Union[str, Path]


def write_edge_list(graph: nx.Graph, path: PathLike) -> None:
    """Write ``graph`` as a ``u v weight`` edge list, sorted for reproducibility."""
    lines = ["# repro weighted edge list", f"# n={graph.number_of_nodes()} m={graph.number_of_edges()}"]
    for u, v, data in sorted(graph.edges(data=True), key=lambda item: (min(item[0], item[1]), max(item[0], item[1]))):
        if "weight" not in data:
            raise GraphError(f"edge ({u}, {v}) has no weight; cannot serialise")
        a, b = (u, v) if u <= v else (v, u)
        lines.append(f"{a} {b} {data['weight']!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: PathLike) -> nx.Graph:
    """Read a ``u v weight`` edge list written by :func:`write_edge_list`."""
    graph = nx.Graph()
    text = Path(path).read_text(encoding="utf-8")
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphError(f"{path}:{line_number}: expected 'u v weight', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2])
        except ValueError as exc:
            raise GraphError(f"{path}:{line_number}: cannot parse {line!r}") from exc
        graph.add_edge(u, v, weight=weight)
    if graph.number_of_nodes() == 0:
        raise GraphError(f"{path}: no edges found")
    return graph
