"""Connected weighted-graph generators used by tests, examples and benchmarks.

Every generator returns a connected :class:`networkx.Graph` with integer
vertex identifiers ``0 .. n-1`` and distinct edge weights (assigned with
:mod:`repro.graphs.weights`).  The families are chosen to cover the
regimes the paper distinguishes:

* low hop-diameter graphs (``D = O(log n)`` or ``O(1)``): random
  connected graphs, complete graphs, stars, random regular graphs;
* high hop-diameter graphs (``D >> sqrt(n)``): paths, cycles, grids,
  lollipops, barbells;
* intermediate: tori, random geometric graphs, random trees.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import networkx as nx

from ..exceptions import GraphError
from .weights import assign_random_unique_weights, assign_unique_weights


def _finalize(
    graph: nx.Graph,
    seed: Optional[int],
    random_weights: bool,
) -> nx.Graph:
    """Relabel nodes to 0..n-1, assign distinct weights, sanity-check connectivity."""
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    if graph.number_of_nodes() == 0:
        raise GraphError("generator produced an empty graph")
    if not nx.is_connected(graph):
        raise GraphError("generator produced a disconnected graph")
    if random_weights:
        assign_random_unique_weights(graph, seed=seed)
    else:
        assign_unique_weights(graph)
    return graph


def path_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Path on ``n`` vertices; hop-diameter ``n - 1`` (the extreme high-D case)."""
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    return _finalize(nx.path_graph(n), seed, random_weights)


def cycle_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Cycle on ``n`` vertices; hop-diameter ``floor(n/2)``."""
    if n < 3:
        raise GraphError(f"need n >= 3 for a cycle, got {n}")
    return _finalize(nx.cycle_graph(n), seed, random_weights)


def star_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Star with ``n`` vertices (one hub); hop-diameter 2."""
    if n < 2:
        raise GraphError(f"need n >= 2 for a star, got {n}")
    return _finalize(nx.star_graph(n - 1), seed, random_weights)


def complete_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Complete graph on ``n`` vertices; hop-diameter 1 (Congested-Clique-like)."""
    if n < 2:
        raise GraphError(f"need n >= 2, got {n}")
    return _finalize(nx.complete_graph(n), seed, random_weights)


def grid_graph(
    rows: int, cols: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """2D grid ``rows x cols``; hop-diameter ``rows + cols - 2``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be >= 1, got {rows}x{cols}")
    return _finalize(nx.grid_2d_graph(rows, cols), seed, random_weights)


def torus_graph(
    rows: int, cols: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """2D torus ``rows x cols`` (grid with wraparound)."""
    if rows < 3 or cols < 3:
        raise GraphError(f"torus dimensions must be >= 3, got {rows}x{cols}")
    return _finalize(nx.grid_2d_graph(rows, cols, periodic=True), seed, random_weights)


def random_tree(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Uniformly random labelled tree on ``n`` vertices (m = n - 1)."""
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    if n <= 2:
        return _finalize(nx.path_graph(n), seed, random_weights)
    rng = random.Random(seed)
    # Random Pruefer sequence -> random labelled tree.
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    tree = nx.from_prufer_sequence(sequence)
    return _finalize(tree, seed, random_weights)


def random_connected_graph(
    n: int,
    edge_probability: Optional[float] = None,
    extra_edges: Optional[int] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Random connected graph: a random spanning tree plus random extra edges.

    Either ``edge_probability`` (each non-tree pair added independently)
    or ``extra_edges`` (exact number of extra edges, when available) may
    be given; the default adds ``2 n`` extra edges which yields a sparse
    graph with hop-diameter ``O(log n)`` with high probability.
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    rng = random.Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # Random spanning tree via random attachment to already-connected part.
    order = list(range(n))
    rng.shuffle(order)
    for index in range(1, n):
        graph.add_edge(order[index], order[rng.randrange(index)])
    if edge_probability is not None:
        if not 0.0 <= edge_probability <= 1.0:
            raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
        for u in range(n):
            for v in range(u + 1, n):
                if not graph.has_edge(u, v) and rng.random() < edge_probability:
                    graph.add_edge(u, v)
    else:
        target_extra = extra_edges if extra_edges is not None else 2 * n
        max_extra = n * (n - 1) // 2 - (n - 1)
        target_extra = min(target_extra, max_extra)
        added = 0
        attempts = 0
        attempt_cap = 50 * max(target_extra, 1) + 100
        while added < target_extra and attempts < attempt_cap:
            attempts += 1
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
                added += 1
    return _finalize(graph, seed, random_weights)


def random_regular_connected_graph(
    n: int, degree: int = 4, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Random ``degree``-regular connected graph (retries until connected)."""
    if degree < 2 or degree >= n:
        raise GraphError(f"need 2 <= degree < n, got degree={degree} n={n}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n} degree={degree}")
    rng = random.Random(seed)
    for attempt in range(100):
        candidate = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
        if nx.is_connected(candidate):
            return _finalize(candidate, seed, random_weights)
    raise GraphError(f"failed to sample a connected {degree}-regular graph on {n} vertices")


def random_geometric_connected_graph(
    n: int, radius: Optional[float] = None, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Random geometric graph on the unit square, radius enlarged until connected.

    Geometric graphs have hop-diameter roughly ``1 / radius``, giving a
    family with intermediate diameter between expanders and paths.
    """
    if n < 2:
        raise GraphError(f"need n >= 2, got {n}")
    rng = random.Random(seed)
    base_radius = radius if radius is not None else 1.5 * math.sqrt(math.log(max(n, 2)) / n)
    current = base_radius
    for attempt in range(20):
        candidate = nx.random_geometric_graph(n, current, seed=rng.randrange(2**31))
        if nx.is_connected(candidate):
            candidate = nx.Graph(candidate.edges())
            candidate.add_nodes_from(range(n))
            return _finalize(candidate, seed, random_weights)
        current *= 1.3
    raise GraphError(f"failed to sample a connected geometric graph on {n} vertices")


def lollipop_graph(
    clique_size: int, path_length: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Clique of ``clique_size`` vertices with a path of ``path_length`` attached.

    A standard high-diameter / dense-core family: m = Theta(clique_size^2)
    while D = Theta(path_length).
    """
    if clique_size < 2 or path_length < 1:
        raise GraphError(
            f"need clique_size >= 2 and path_length >= 1, got {clique_size}, {path_length}"
        )
    return _finalize(nx.lollipop_graph(clique_size, path_length), seed, random_weights)


def barbell_graph(
    clique_size: int, path_length: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Two cliques of ``clique_size`` joined by a path of ``path_length`` vertices."""
    if clique_size < 2 or path_length < 0:
        raise GraphError(
            f"need clique_size >= 2 and path_length >= 0, got {clique_size}, {path_length}"
        )
    return _finalize(nx.barbell_graph(clique_size, path_length), seed, random_weights)


def preferential_attachment_graph(
    n: int, attachments: int = 2, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Barabasi-Albert preferential-attachment graph on ``n`` vertices.

    Every arriving vertex attaches to ``attachments`` existing vertices
    with probability proportional to their degree, producing the heavy
    hub structure and ``O(log n / log log n)`` hop-diameter typical of
    scale-free networks -- a low-diameter family that is neither regular
    nor Erdos-Renyi-like, useful for scenario diversity in sweeps.
    """
    if n < 2:
        raise GraphError(f"need n >= 2, got {n}")
    if attachments < 1 or attachments >= n:
        raise GraphError(f"need 1 <= attachments < n, got attachments={attachments} n={n}")
    rng = random.Random(seed)
    graph = nx.barabasi_albert_graph(n, attachments, seed=rng.randrange(2**31))
    return _finalize(graph, seed, random_weights)


def caterpillar_graph(
    n: int, spine: Optional[int] = None, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Caterpillar tree: a spine path with the remaining vertices as legs.

    The spine holds ``spine`` vertices (default ``ceil(n / 2)``) and the
    other ``n - spine`` vertices are attached round-robin as leaves, so
    the hop-diameter is ``Theta(spine)`` while the maximum degree stays
    bounded -- a sparse high-diameter family distinct from the bare path.
    """
    if n < 2:
        raise GraphError(f"need n >= 2, got {n}")
    spine_size = spine if spine is not None else (n + 1) // 2
    if not 1 <= spine_size <= n:
        raise GraphError(f"need 1 <= spine <= n, got spine={spine_size} n={n}")
    graph = nx.path_graph(spine_size)
    for index in range(n - spine_size):
        graph.add_edge(index % spine_size, spine_size + index)
    return _finalize(graph, seed, random_weights)


def wheel_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """Wheel: a hub adjacent to every vertex of an ``(n-1)``-cycle.

    Hop-diameter 2 with ``m = 2(n - 1)`` edges -- a sparse extreme
    low-diameter family (the sparse analogue of the complete graph).
    """
    if n < 4:
        raise GraphError(f"need n >= 4 for a wheel, got {n}")
    return _finalize(nx.wheel_graph(n), seed, random_weights)


def edge_list_graph(
    edges: object,
    nodes: Optional[object] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Explicit weighted ``(u, v, weight)`` edge list as a graph family.

    This is what makes *prebuilt* graphs declarative: the campaign layer
    serializes any :class:`networkx.Graph` into this family so a
    :class:`GraphSpec` can always round-trip through JSON.  Node labels
    are taken from the edges verbatim (no relabeling -- 1-indexed graphs
    stay 1-indexed); ``nodes`` optionally lists explicit node ids for
    vertices the edges do not cover.  The weights are taken verbatim (no
    reassignment); ``seed`` and ``random_weights`` are accepted for
    interface uniformity and ignored.
    """
    del seed, random_weights  # weights come with the edge list
    graph = nx.Graph()
    for entry in edges:  # type: ignore[attr-defined]
        u, v, weight = entry
        graph.add_edge(int(u), int(v), weight=float(weight))
    if nodes is not None:
        graph.add_nodes_from(int(node) for node in nodes)  # type: ignore[attr-defined]
    if graph.number_of_nodes() == 0:
        raise GraphError("edge_list produced an empty graph")
    if not nx.is_connected(graph):
        raise GraphError("edge_list produced a disconnected graph")
    return graph


def hub_path_graph(n: int, seed: Optional[int] = None, random_weights: bool = True) -> nx.Graph:
    """A low-hop-diameter graph whose MST is a long path.

    Vertices ``0 .. n-2`` form a path with light edges; vertex ``n-1`` is
    a hub adjacent to every path vertex with heavy edges.  The
    hop-diameter is 2, but the MST consists of the whole path plus the
    single lightest hub edge, so its diameter is ``Theta(n)``.  This is
    the classical family separating the GHS-style baseline (whose
    fragments grow along the MST, costing ``Theta(n log n)`` rounds) from
    diameter-sensitive algorithms such as the paper's
    (``O(sqrt(n) log n)`` rounds).  The ``seed`` and ``random_weights``
    arguments are accepted for interface uniformity but the weights are
    always deterministic: light path weights first, heavy hub weights
    after, all distinct.
    """
    if n < 3:
        raise GraphError(f"need n >= 3 for a hub-path graph, got {n}")
    graph = nx.Graph()
    hub = n - 1
    for vertex in range(n - 2):
        graph.add_edge(vertex, vertex + 1, weight=float(vertex + 1))
    for index, vertex in enumerate(range(n - 1)):
        graph.add_edge(hub, vertex, weight=float(10 * n + index))
    return graph


@dataclass(frozen=True)
class GraphSpec:
    """Declarative description of a benchmark graph instance.

    ``family`` selects one of the generators in :data:`FAMILIES`;
    ``params`` are forwarded to it.  Used by the experiment runners so a
    whole sweep can be described as data.
    """

    family: str
    params: Dict[str, object]

    def build(self) -> nx.Graph:
        return make_graph(self.family, **self.params)

    def label(self) -> str:
        parts = []
        for key, value in sorted(self.params.items()):
            text = f"{key}={value}"
            if len(text) > 32:  # e.g. the edges of an edge_list spec
                size = len(value) if hasattr(value, "__len__") else "?"
                text = f"{key}=<{size} items>"
            parts.append(text)
        return f"{self.family}({', '.join(parts)})"


FAMILIES: Dict[str, Callable[..., nx.Graph]] = {
    "path": path_graph,
    "cycle": cycle_graph,
    "star": star_graph,
    "complete": complete_graph,
    "grid": grid_graph,
    "torus": torus_graph,
    "random_tree": random_tree,
    "random_connected": random_connected_graph,
    "random_regular": random_regular_connected_graph,
    "random_geometric": random_geometric_connected_graph,
    "lollipop": lollipop_graph,
    "barbell": barbell_graph,
    "hub_path": hub_path_graph,
    "preferential_attachment": preferential_attachment_graph,
    "caterpillar": caterpillar_graph,
    "wheel": wheel_graph,
    "edge_list": edge_list_graph,
}

#: Canonical shape derivation for families whose generators are not
#: parameterized by a plain vertex count ``n``.  ``graph_spec_for``
#: consults this registry so every family -- including workload-zoo
#: additions -- can be swept on one ``--sizes`` axis.
SHAPE_RULES: Dict[str, Callable[[int], Dict[str, object]]] = {
    "grid": lambda n: {"rows": max(2, round(n**0.5)), "cols": max(2, round(n**0.5))},
    "torus": lambda n: {"rows": max(3, round(n**0.5)), "cols": max(3, round(n**0.5))},
    "lollipop": lambda n: {
        "clique_size": max(3, n // 4),
        "path_length": max(1, n - max(3, n // 4)),
    },
    "barbell": lambda n: {
        "clique_size": max(3, n // 4),
        "path_length": max(1, n - 2 * max(3, n // 4)),
    },
}

_ZOO_LOADED = False


def ensure_zoo_families() -> None:
    """Import :mod:`repro.workloads` so its families self-register.

    Idempotent and cycle-safe: the flag is flipped before the import so a
    re-entrant call (workloads itself imports this module) is a no-op.
    """
    global _ZOO_LOADED
    if not _ZOO_LOADED:
        _ZOO_LOADED = True
        from .. import workloads as _workloads  # noqa: F401


def register_family(
    name: str,
    generator: Callable[..., nx.Graph],
    shape_from_n: Optional[Callable[[int], Dict[str, object]]] = None,
) -> None:
    """Register ``generator`` as the graph family ``name``.

    This is how :mod:`repro.workloads` (and third-party code) extends the
    zoo: the family becomes a legal ``GraphSpec.family`` everywhere --
    campaign grids, scenarios, the CLI.  ``shape_from_n`` optionally maps
    a target vertex count to generator parameters so the family can be
    swept on a plain size axis (see :data:`SHAPE_RULES`).  Registering a
    name twice replaces the previous generator.
    """
    if not name or not isinstance(name, str):
        raise GraphError(f"family name must be a non-empty string, got {name!r}")
    if not callable(generator):
        raise GraphError(f"generator of family {name!r} is not callable")
    FAMILIES[name] = generator
    if shape_from_n is not None:
        SHAPE_RULES[name] = shape_from_n


def available_families(include_edge_list: bool = False) -> list:
    """Sorted names accepted as ``GraphSpec.family`` (zoo included).

    ``edge_list`` is excluded by default because it carries explicit
    edges rather than generator parameters, so it is not a family a user
    can ask for by name and size.
    """
    ensure_zoo_families()
    return sorted(
        family for family in FAMILIES if include_edge_list or family != "edge_list"
    )


def make_graph(family: str, **params: object) -> nx.Graph:
    """Build a graph from a family name and keyword parameters.

    Raises :class:`GraphError` for unknown family names; the error lists
    the available families to make sweep typos easy to diagnose.
    """
    ensure_zoo_families()
    if family not in FAMILIES:
        known = ", ".join(sorted(FAMILIES))
        raise GraphError(f"unknown graph family '{family}'; known families: {known}")
    return FAMILIES[family](**params)
