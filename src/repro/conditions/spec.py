"""Declarative network-condition specs: composable, frozen, content-hashed.

A :class:`NetworkCondition` describes how the network misbehaves during
one run: which messages are lost (:class:`LossModel`), deferred
(:class:`DelayModel`), omitted because an endpoint is down
(:class:`CrashModel`) or targeted by an adversary
(:class:`AdversarialModel`).  Like a
:class:`~repro.campaign.spec.RunSpec`, a condition is pure data -- it
hashes (:meth:`NetworkCondition.key`), serializes
(:meth:`NetworkCondition.to_json_dict`) and round-trips, so a condition
can ride inside run specs, run stores and worker payloads unchanged.

Every model is *deterministic*: fates are decided by counter-based
hashing over ``(condition seed, run seed, message sequence number)``
in :mod:`repro.conditions.proxy`, never by a stateful RNG, so an
identical ``(RunSpec, condition, seed)`` replays byte-identically on
every engine and in every executor mode.

This module is deliberately a leaf (it imports only the exception
hierarchy): the campaign layer imports it to put conditions inside run
specs, so it cannot import the campaign layer back.  The content-hash
helper is therefore a local twin of
:func:`repro.campaign.spec.content_hash` (same canonical-JSON sha256
construction).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "LossModel",
    "DelayModel",
    "CrashModel",
    "AdversarialModel",
    "NetworkCondition",
    "CONDITION_PRESETS",
    "available_conditions",
    "parse_condition",
    "normalize_condition",
]


def _condition_hash(payload: object) -> str:
    """16-hex content hash over canonical JSON (mirrors campaign.spec)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _require(check: bool, message: str) -> None:
    if not check:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class LossModel:
    """Per-message Bernoulli loss with optional bounded retransmission.

    Attributes:
        rate: probability a transmission attempt is lost (``0 <= rate < 1``).
        retransmit: bounded link-layer retries per message.  Each failed
            attempt costs one extra round of latency and one extra
            charged message; a message whose ``retransmit + 1`` attempts
            all fail is dropped permanently.
    """

    rate: float
    retransmit: int = 0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.rate, (int, float)) and 0.0 <= float(self.rate) < 1.0,
            f"loss rate must be in [0, 1), got {self.rate!r}",
        )
        _require(
            isinstance(self.retransmit, int)
            and not isinstance(self.retransmit, bool)
            and self.retransmit >= 0,
            f"retransmit must be a non-negative int, got {self.retransmit!r}",
        )
        object.__setattr__(self, "rate", float(self.rate))


@dataclass(frozen=True)
class DelayModel:
    """Bounded asynchrony: defer a fraction of messages by 1..max_delay rounds.

    Attributes:
        max_delay: largest deferral in rounds (``>= 1``).
        rate: fraction of messages subject to a delay draw.
    """

    max_delay: int
    rate: float = 1.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.max_delay, int)
            and not isinstance(self.max_delay, bool)
            and self.max_delay >= 1,
            f"max_delay must be an int >= 1, got {self.max_delay!r}",
        )
        _require(
            isinstance(self.rate, (int, float)) and 0.0 < float(self.rate) <= 1.0,
            f"delay rate must be in (0, 1], got {self.rate!r}",
        )
        object.__setattr__(self, "rate", float(self.rate))


@dataclass(frozen=True)
class CrashModel:
    """Node crash / crash-restart schedules, explicit or generated.

    A crashed vertex is modelled as a network-layer omission window:
    messages it sent while down and messages arriving while it is down
    are dropped.  (The simulator is centralized, so local computation is
    not suspended -- the observable effect of a crash in a
    message-passing model is exactly the omitted traffic.)

    Attributes:
        schedule: explicit events ``(vertex, start_round, end_round)``;
            ``end_round = None`` means crash-stop (never restarts), and
            the window covers rounds ``start_round <= r < end_round``.
        rate: generated schedules -- per-vertex crash probability
            (decided by the deterministic hash, per vertex).
        within: generated crashes start in rounds ``[1, within]``.
        downtime: generated crash duration in rounds; ``None`` = crash-stop.
    """

    schedule: Tuple[Tuple[int, int, Optional[int]], ...] = ()
    rate: float = 0.0
    within: int = 32
    downtime: Optional[int] = None

    def __post_init__(self) -> None:
        normalized = []
        for event in self.schedule:
            _require(
                len(tuple(event)) == 3,
                f"crash events are (vertex, start, end) triples, got {event!r}",
            )
            vertex, start, end = event
            _require(
                isinstance(vertex, int) and isinstance(start, int) and start >= 1,
                f"crash event needs an int vertex and start round >= 1, got {event!r}",
            )
            _require(
                end is None or (isinstance(end, int) and end > start),
                f"crash end round must be None or > start, got {event!r}",
            )
            normalized.append((vertex, start, end))
        object.__setattr__(self, "schedule", tuple(normalized))
        _require(
            isinstance(self.rate, (int, float)) and 0.0 <= float(self.rate) <= 1.0,
            f"crash rate must be in [0, 1], got {self.rate!r}",
        )
        _require(
            isinstance(self.within, int) and self.within >= 1,
            f"crash window 'within' must be an int >= 1, got {self.within!r}",
        )
        _require(
            self.downtime is None or (isinstance(self.downtime, int) and self.downtime >= 1),
            f"crash downtime must be None or an int >= 1, got {self.downtime!r}",
        )
        object.__setattr__(self, "rate", float(self.rate))


@dataclass(frozen=True)
class AdversarialModel:
    """Structure-aware schedules targeting specific edges or traffic kinds.

    Attributes:
        heaviest_edges: delay every message crossing the ``K`` heaviest
            edges of the instance (the edges fragment merging fights
            over last).
        heavy_delay: rounds of extra latency on those edges.
        drop_kind: drop messages whose kind contains this substring
            (e.g. convergecast/upcast traffic near the root).
        drop_rate: probability such a message is dropped.
    """

    heaviest_edges: int = 0
    heavy_delay: int = 0
    drop_kind: str = ""
    drop_rate: float = 1.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.heaviest_edges, int) and self.heaviest_edges >= 0,
            f"heaviest_edges must be a non-negative int, got {self.heaviest_edges!r}",
        )
        _require(
            isinstance(self.heavy_delay, int) and self.heavy_delay >= 0,
            f"heavy_delay must be a non-negative int, got {self.heavy_delay!r}",
        )
        _require(
            self.heaviest_edges == 0 or self.heavy_delay >= 1,
            "heaviest_edges without heavy_delay has no effect; set heavy_delay >= 1",
        )
        _require(
            isinstance(self.drop_kind, str),
            f"drop_kind must be a string, got {self.drop_kind!r}",
        )
        _require(
            isinstance(self.drop_rate, (int, float)) and 0.0 < float(self.drop_rate) <= 1.0,
            f"drop_rate must be in (0, 1], got {self.drop_rate!r}",
        )
        object.__setattr__(self, "drop_rate", float(self.drop_rate))


@dataclass(frozen=True)
class NetworkCondition:
    """One fully-specified fault & asynchrony schedule for a run.

    Composes the four independent models; a model left at ``None`` is
    inactive.  ``name`` is presentation-only (like a
    :class:`~repro.campaign.spec.RunSpec` label): it is excluded from
    the identity hash, so naming a condition never invalidates stored
    runs that used the same schedule.

    Attributes:
        seed: fault seed, mixed with the run's generator seed into the
            deterministic per-message hash.
        loss / delay / crash / adversary: the component models.
        round_stretch: factor applied to protocol round limits (and to
            the Theorem bound audit in degradation mode) -- degraded
            runs legitimately take longer, and the stock limits would
            misreport them as non-terminating.
        round_cap: explicit global round cap for the whole run; ``None``
            derives ``round_stretch * (200 * (n + m) + 1000)`` from the
            instance.  Reaching the cap raises
            :class:`~repro.exceptions.NonTerminationError`.
    """

    seed: int = 0
    loss: Optional[LossModel] = None
    delay: Optional[DelayModel] = None
    crash: Optional[CrashModel] = None
    adversary: Optional[AdversarialModel] = None
    round_stretch: int = 4
    round_cap: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool) and self.seed >= 0,
            f"condition seed must be a non-negative int, got {self.seed!r}",
        )
        _require(
            isinstance(self.round_stretch, int) and self.round_stretch >= 1,
            f"round_stretch must be an int >= 1, got {self.round_stretch!r}",
        )
        _require(
            self.round_cap is None
            or (isinstance(self.round_cap, int) and self.round_cap >= 1),
            f"round_cap must be None or an int >= 1, got {self.round_cap!r}",
        )

    # -- behaviour queries ------------------------------------------------

    def is_noop(self) -> bool:
        """True when no model is active (a pure pass-through wrapper)."""
        return (
            self.loss is None
            and self.delay is None
            and self.crash is None
            and self.adversary is None
        )

    def effective_round_cap(self, n: int, m: int) -> int:
        """The global round cap for an ``(n, m)`` instance."""
        if self.round_cap is not None:
            return self.round_cap
        return self.round_stretch * (200 * (n + m) + 1000)

    def time_stretch(self) -> float:
        """Round-bound relaxation factor for the degradation audit."""
        return float(self.round_stretch)

    def message_stretch(self) -> float:
        """Message-bound relaxation factor (each message may be re-sent)."""
        if self.loss is None:
            return 1.0
        return 1.0 + self.loss.retransmit

    # -- identity & serialization ----------------------------------------

    def identity(self) -> Dict[str, object]:
        """JSON-safe identity payload (``name`` deliberately excluded)."""
        payload: Dict[str, object] = {"seed": self.seed}
        if self.loss is not None:
            payload["loss"] = {"rate": self.loss.rate, "retransmit": self.loss.retransmit}
        if self.delay is not None:
            payload["delay"] = {"max_delay": self.delay.max_delay, "rate": self.delay.rate}
        if self.crash is not None:
            payload["crash"] = {
                "schedule": [list(event) for event in self.crash.schedule],
                "rate": self.crash.rate,
                "within": self.crash.within,
                "downtime": self.crash.downtime,
            }
        if self.adversary is not None:
            payload["adversary"] = {
                "heaviest_edges": self.adversary.heaviest_edges,
                "heavy_delay": self.adversary.heavy_delay,
                "drop_kind": self.adversary.drop_kind,
                "drop_rate": self.adversary.drop_rate,
            }
        if self.round_stretch != 4:
            payload["round_stretch"] = self.round_stretch
        if self.round_cap is not None:
            payload["round_cap"] = self.round_cap
        return payload

    def key(self) -> str:
        """Content hash identifying this schedule (``name``-independent)."""
        return _condition_hash(self.identity())

    def label(self) -> str:
        """Presentation label: the name when given, else the compact form."""
        return self.name or self.describe()

    def describe(self) -> str:
        """Compact clause form (re-parseable by :func:`parse_condition`)."""
        clauses = []
        if self.loss is not None:
            clause = f"loss(rate={self.loss.rate:g}"
            if self.loss.retransmit:
                clause += f",retransmit={self.loss.retransmit}"
            clauses.append(clause + ")")
        if self.delay is not None:
            clause = f"delay(max={self.delay.max_delay}"
            if self.delay.rate != 1.0:
                clause += f",rate={self.delay.rate:g}"
            clauses.append(clause + ")")
        if self.crash is not None:
            for vertex, start, end in self.crash.schedule:
                clause = f"crash(v={vertex},at={start}"
                if end is not None:
                    clause += f",down={end - start}"
                clauses.append(clause + ")")
            if self.crash.rate:
                clause = f"crash(rate={self.crash.rate:g},within={self.crash.within}"
                if self.crash.downtime is not None:
                    clause += f",down={self.crash.downtime}"
                clauses.append(clause + ")")
        if self.adversary is not None:
            parts = []
            if self.adversary.heaviest_edges:
                parts.append(f"heavy={self.adversary.heaviest_edges}")
                parts.append(f"delay={self.adversary.heavy_delay}")
            if self.adversary.drop_kind:
                parts.append(f"drop={self.adversary.drop_kind}")
                if self.adversary.drop_rate != 1.0:
                    parts.append(f"rate={self.adversary.drop_rate:g}")
            clauses.append(f"adversary({','.join(parts)})")
        if self.seed:
            clauses.append(f"seed={self.seed}")
        if self.round_stretch != 4:
            clauses.append(f"stretch={self.round_stretch}")
        if self.round_cap is not None:
            clauses.append(f"cap={self.round_cap}")
        return "+".join(clauses) if clauses else "passthrough"

    def to_json_dict(self) -> Dict[str, object]:
        payload = self.identity()
        # Serialization carries presentation and explicit defaults the
        # identity omits, so round-trips are exact.
        payload["round_stretch"] = self.round_stretch
        if self.name is not None:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "NetworkCondition":
        loss = payload.get("loss")
        delay = payload.get("delay")
        crash = payload.get("crash")
        adversary = payload.get("adversary")
        return cls(
            seed=int(payload.get("seed", 0)),
            loss=None
            if loss is None
            else LossModel(
                rate=float(loss["rate"]), retransmit=int(loss.get("retransmit", 0))
            ),
            delay=None
            if delay is None
            else DelayModel(
                max_delay=int(delay["max_delay"]), rate=float(delay.get("rate", 1.0))
            ),
            crash=None
            if crash is None
            else CrashModel(
                schedule=tuple(
                    (int(v), int(start), None if end is None else int(end))
                    for v, start, end in crash.get("schedule", ())
                ),
                rate=float(crash.get("rate", 0.0)),
                within=int(crash.get("within", 32)),
                downtime=(
                    None if crash.get("downtime") is None else int(crash["downtime"])
                ),
            ),
            adversary=None
            if adversary is None
            else AdversarialModel(
                heaviest_edges=int(adversary.get("heaviest_edges", 0)),
                heavy_delay=int(adversary.get("heavy_delay", 0)),
                drop_kind=str(adversary.get("drop_kind", "")),
                drop_rate=float(adversary.get("drop_rate", 1.0)),
            ),
            round_stretch=int(payload.get("round_stretch", 4)),
            round_cap=(
                None if payload.get("round_cap") is None else int(payload["round_cap"])
            ),
            name=payload.get("name"),
        )


# -- named presets --------------------------------------------------------

#: Named conditions accepted everywhere a condition is (CLI ``--condition``,
#: :class:`~repro.config.RunConfig`, :class:`~repro.campaign.spec.RunSpec`).
#: The eventual-delivery presets (loss with generous retransmit, bounded
#: delay) keep every algorithm terminating and oracle-correct; the crash
#: presets exercise the :class:`~repro.exceptions.NonTerminationError`
#: path on purpose.
CONDITION_PRESETS: Dict[str, NetworkCondition] = {
    "lossy": NetworkCondition(name="lossy", loss=LossModel(rate=0.05, retransmit=8)),
    "flaky": NetworkCondition(name="flaky", loss=LossModel(rate=0.15, retransmit=10)),
    "delayed": NetworkCondition(name="delayed", delay=DelayModel(max_delay=3)),
    "jittery": NetworkCondition(
        name="jittery",
        loss=LossModel(rate=0.05, retransmit=8),
        delay=DelayModel(max_delay=2, rate=0.5),
    ),
    "heavy-delay": NetworkCondition(
        name="heavy-delay",
        adversary=AdversarialModel(heaviest_edges=4, heavy_delay=3),
    ),
    "crash-stop": NetworkCondition(
        name="crash-stop",
        crash=CrashModel(schedule=((0, 5, None),)),
        round_stretch=1,
    ),
    "crash-restart": NetworkCondition(
        name="crash-restart",
        crash=CrashModel(schedule=((0, 5, 9), (1, 8, 12))),
    ),
}


def available_conditions() -> Tuple[str, ...]:
    """Sorted preset names accepted by :func:`parse_condition`."""
    return tuple(sorted(CONDITION_PRESETS))


_CLAUSE = re.compile(r"^(?P<model>[a-z]+)\((?P<args>[^)]*)\)$")
_SCALAR = re.compile(r"^(?P<key>seed|stretch|cap)=(?P<value>-?\d+)$")


def _parse_args(model: str, text: str) -> Dict[str, str]:
    args: Dict[str, str] = {}
    for part in filter(None, (piece.strip() for piece in text.split(","))):
        if "=" not in part:
            raise ConfigurationError(
                f"malformed {model} argument {part!r}; expected key=value"
            )
        key, value = part.split("=", 1)
        args[key.strip()] = value.strip()
    return args


def _number(
    model: str,
    args: Dict[str, str],
    key: str,
    cast: Callable[[str], object],
    default: object,
) -> object:
    if key not in args:
        return default
    try:
        return cast(args.pop(key))
    except ValueError:
        raise ConfigurationError(
            f"{model} argument {key!r} must be a {getattr(cast, '__name__', 'number')}"
        ) from None


def parse_condition(text: str) -> NetworkCondition:
    """Parse a condition from a preset name or the compact clause syntax.

    Preset names (see :data:`CONDITION_PRESETS`) resolve directly:
    ``parse_condition("lossy")``.  Otherwise the text is ``+``-separated
    clauses, one per model, plus scalar knobs::

        loss(rate=0.1,retransmit=4)+delay(max=2)+seed=7
        crash(v=0,at=5)+crash(v=3,at=8,down=4)+stretch=2
        adversary(heavy=4,delay=3)+adversary(drop=convergecast,rate=0.5)
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(f"condition must be a non-empty string, got {text!r}")
    text = text.strip()
    if text in CONDITION_PRESETS:
        return CONDITION_PRESETS[text]

    loss = delay = None
    crash_events = []
    crash_kwargs: Dict[str, object] = {}
    adversary_kwargs: Dict[str, object] = {}
    scalars: Dict[str, int] = {}
    for clause in filter(None, (piece.strip() for piece in text.split("+"))):
        scalar = _SCALAR.match(clause)
        if scalar:
            scalars[scalar.group("key")] = int(scalar.group("value"))
            continue
        match = _CLAUSE.match(clause)
        if not match:
            raise ConfigurationError(
                f"malformed condition clause {clause!r}; expected a preset name "
                f"({', '.join(available_conditions())}), model(key=value,...) "
                "or seed=/stretch=/cap=N"
            )
        model, args = match.group("model"), _parse_args(match.group("model"), match.group("args"))
        if model == "loss":
            loss = LossModel(
                rate=_number("loss", args, "rate", float, 0.0),
                retransmit=_number("loss", args, "retransmit", int, 0),
            )
        elif model == "delay":
            delay = DelayModel(
                max_delay=_number("delay", args, "max", int, 1),
                rate=_number("delay", args, "rate", float, 1.0),
            )
        elif model == "crash":
            if "v" in args:
                vertex = _number("crash", args, "v", int, 0)
                start = _number("crash", args, "at", int, 1)
                down = _number("crash", args, "down", int, None)
                crash_events.append(
                    (vertex, start, None if down is None else start + down)
                )
            else:
                crash_kwargs["rate"] = _number("crash", args, "rate", float, 0.0)
                crash_kwargs["within"] = _number("crash", args, "within", int, 32)
                crash_kwargs["downtime"] = _number("crash", args, "down", int, None)
        elif model == "adversary":
            if "heavy" in args:
                adversary_kwargs["heaviest_edges"] = _number("adversary", args, "heavy", int, 0)
                adversary_kwargs["heavy_delay"] = _number("adversary", args, "delay", int, 1)
            if "drop" in args:
                adversary_kwargs["drop_kind"] = args.pop("drop")
                adversary_kwargs["drop_rate"] = _number("adversary", args, "rate", float, 1.0)
        else:
            raise ConfigurationError(
                f"unknown condition model {model!r}; known: loss, delay, crash, adversary"
            )
        if args:
            raise ConfigurationError(
                f"unknown {model} arguments: {', '.join(sorted(args))}"
            )
    crash = None
    if crash_events or crash_kwargs:
        crash = CrashModel(schedule=tuple(crash_events), **crash_kwargs)
    adversary = AdversarialModel(**adversary_kwargs) if adversary_kwargs else None
    condition = NetworkCondition(
        seed=scalars.get("seed", 0),
        loss=loss,
        delay=delay,
        crash=crash,
        adversary=adversary,
        round_stretch=scalars.get("stretch", 4),
        round_cap=scalars.get("cap"),
    )
    if condition.is_noop() and not scalars:
        raise ConfigurationError(
            f"condition {text!r} activates no model; use a preset "
            f"({', '.join(available_conditions())}) or at least one clause"
        )
    return condition


def normalize_condition(value: object) -> Optional[NetworkCondition]:
    """The one way every layer turns its ``condition`` input into a spec.

    Accepts ``None`` (no condition), a :class:`NetworkCondition`, a
    preset name / compact clause string, or a :meth:`to_json_dict`
    payload (how conditions come back out of run stores).
    """
    if value is None:
        return None
    if isinstance(value, NetworkCondition):
        return value
    if isinstance(value, str):
        return parse_condition(value)
    if isinstance(value, dict):
        return NetworkCondition.from_json_dict(value)
    raise ConfigurationError(
        f"condition must be None, a NetworkCondition, a preset/clause string "
        f"or a JSON dict, got {type(value).__name__}: {value!r}"
    )


def with_name(condition: NetworkCondition, name: Optional[str]) -> NetworkCondition:
    """A copy of ``condition`` relabelled (identity hash unchanged)."""
    return replace(condition, name=name)
