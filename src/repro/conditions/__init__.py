"""Deterministic fault & asynchrony injection for the CONGEST simulator.

``repro.conditions`` turns network misbehaviour -- message loss, bounded
delay, node crashes, adversarial schedules -- into a first-class,
content-hashed sweep dimension.  A :class:`NetworkCondition` composes
independent models and is applied by wrapping any registered engine in a
:class:`ConditionedEngine` proxy through the ``engine_wrapper`` seam; no
kernel is rewritten, and every fault fate is a pure hash of
``(seed, message sequence number)`` so identical specs replay
byte-identically on every engine and in every executor mode.
"""

from .proxy import condition_scope, ConditionedEngine, ConditionScope
from .spec import (
    AdversarialModel,
    available_conditions,
    CONDITION_PRESETS,
    CrashModel,
    DelayModel,
    LossModel,
    NetworkCondition,
    normalize_condition,
    parse_condition,
    with_name,
)

__all__ = [
    "AdversarialModel",
    "CONDITION_PRESETS",
    "ConditionScope",
    "ConditionedEngine",
    "CrashModel",
    "DelayModel",
    "LossModel",
    "NetworkCondition",
    "available_conditions",
    "condition_scope",
    "normalize_condition",
    "parse_condition",
    "with_name",
]
