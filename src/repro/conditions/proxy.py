"""The condition-applying engine proxy and its installation scope.

:class:`ConditionedEngine` wraps any :class:`~repro.simulator.engine.Engine`
(reference, ``fast``, ``array``, or a batched arena lane) and applies a
:class:`~repro.conditions.spec.NetworkCondition` to the traffic.  The
design constraints, in order:

* **No kernel rewrites.**  Sends pass through untouched -- bandwidth
  enforcement, charging and validation stay the inner kernel's job.
  Conditions act on the *delivery side*: the proxy intercepts
  :meth:`deliver_round` output and decides, per message, whether it is
  delivered now, deferred, or dropped.
* **Determinism.**  Every fate is a pure function of the fault seed and
  a per-message sequence number (assigned in the engines' shared
  deterministic delivery order), computed by counter-based sha256
  hashing -- no RNG state.  Identical ``(instance, condition, seed)``
  therefore replays byte-identically on every kernel and in every
  executor mode.
* **Honest accounting.**  A dropped message was still transmitted (the
  inner kernel charged it at delivery); link-layer retransmissions
  charge one extra message each through the shared
  :class:`~repro.simulator.metrics.Metrics` and add one round of
  latency, but are *not* re-pushed through :meth:`send` -- they model
  the link retrying below the bandwidth scheduler, and re-injecting
  them would falsely trip the per-round bandwidth cap of rounds the
  algorithm already filled.
* **No hangs.**  Deferred messages count as pending (so protocol
  drivers keep driving rounds while the adversary holds traffic), and a
  global round cap converts livelock into a typed
  :class:`~repro.exceptions.NonTerminationError`.

Delivery-order contract under conditions: messages the condition
*released* (deferred earlier, due now) are delivered before the round's
fresh survivors, each group in original send order; receivers appear in
first-delivered-message order.  This refines -- deterministically --
the unconditioned contract instead of replacing it.
"""

from __future__ import annotations

import contextlib
import hashlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..exceptions import NonTerminationError, SimulationError
from ..simulator.engine import Engine, engine_wrapper
from ..simulator.message import Message
from ..types import CostReport, normalize_edge, VertexId
from .spec import NetworkCondition

__all__ = ["ConditionedEngine", "ConditionScope", "condition_scope"]

#: 2^64, the denominator turning an 8-byte hash prefix into a uniform [0, 1).
_HASH_DENOMINATOR = float(1 << 64)


class ConditionedEngine(Engine):
    """Condition-applying proxy around an inner simulation kernel.

    Shares the inner kernel's ``graph``, ``bandwidth`` and ``metrics``
    (so cost accounting and the shared :class:`Engine` helpers read the
    same counters) and delegates the full send-side contract.  All
    condition logic lives in :meth:`deliver_round`.
    """

    def __init__(
        self,
        inner: Engine,
        condition: NetworkCondition,
        run_seed: Optional[int] = None,
    ) -> None:
        self._inner = inner
        self.condition = condition
        self.graph = inner.graph
        self.bandwidth = inner.bandwidth
        self.metrics = inner.metrics
        self._fault_seed = f"{condition.seed}|{'' if run_seed is None else run_seed}"
        self._seq = 0
        #: deferred messages as (due_round, seq, Message copy)
        self._held: List[Tuple[int, int, Message]] = []
        #: per-directed-edge FIFO front: the latest delivery round already
        #: scheduled on that link.  Conditioned links stay FIFO -- a
        #: delayed message blocks later traffic on the same edge from
        #: overtaking it -- because the protocols (pipelined convergecast
        #: in particular) are specified over FIFO CONGEST links.
        self._edge_front: Dict[Tuple[VertexId, VertexId], int] = {}
        self._round_cap = condition.effective_round_cap(inner.n, inner.m)
        #: protocol drivers multiply their round limits by this factor
        self.round_limit_stretch = condition.round_stretch
        self.telemetry: Dict[str, int] = {
            "delivered": 0,
            "dropped": 0,
            "delayed": 0,
            "retransmits": 0,
            "crash_omissions": 0,
            "adversary_dropped": 0,
            "adversary_delayed": 0,
        }
        self._crash_windows = self._resolve_crash_windows()
        self._heavy_edges = self._resolve_heavy_edges()
        # Send-side calls are pure delegation under every condition --
        # injection is delivery-side -- so bind the inner kernel's bound
        # methods as instance attributes: the protocols' hot loops skip
        # the proxy frame entirely.  (The class-level defs below remain
        # as the documented contract and for subclasses.)
        self.send = inner.send
        self.send_to_neighbors = inner.send_to_neighbors
        self.remaining_capacity = inner.remaining_capacity
        self.edge_weight = inner.edge_weight
        self.node = inner.node
        self.vertices = inner.vertices
        self.sorted_edges = inner.sorted_edges
        if condition.is_noop() and condition.round_cap is None:
            # Pure pass-through: no model ever touches a message and the
            # default cap sits far above the protocols' own (stretched)
            # round limits, so the delivery side delegates wholesale too
            # -- a no-op condition costs one extra attribute hop, not a
            # Python frame per round.
            self.deliver_round = inner.deliver_round
            self.pending_count = inner.pending_count
            self.idle_rounds = inner.idle_rounds

    # -- deterministic hashing -------------------------------------------

    def _uniform(self, *parts: object) -> float:
        """Counter-based uniform draw in [0, 1): pure function of the key."""
        key = self._fault_seed + "|" + "|".join(str(part) for part in parts)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / _HASH_DENOMINATOR

    # -- model resolution (once per engine) ------------------------------

    def _resolve_crash_windows(self) -> Dict[VertexId, List[Tuple[int, Optional[int]]]]:
        model = self.condition.crash
        if model is None:
            return {}
        windows: Dict[VertexId, List[Tuple[int, Optional[int]]]] = {}
        vertices = set(self._inner.vertices())
        for vertex, start, end in model.schedule:
            if vertex in vertices:
                windows.setdefault(vertex, []).append((start, end))
        if model.rate > 0.0:
            for vertex in sorted(vertices):
                if self._uniform("crash", vertex) >= model.rate:
                    continue
                start = 1 + int(self._uniform("crash-at", vertex) * model.within)
                end = None if model.downtime is None else start + model.downtime
                windows.setdefault(vertex, []).append((start, end))
        return windows

    def _resolve_heavy_edges(self) -> frozenset:
        model = self.condition.adversary
        if model is None or model.heaviest_edges == 0:
            return frozenset()
        # The unique-MST total order (weight, u, v), heaviest first: the
        # edges fragment merging settles last are exactly the targets.
        heaviest = sorted(self._inner.sorted_edges(), reverse=True)
        return frozenset((u, v) for _, u, v in heaviest[: model.heaviest_edges])

    def _is_crashed(self, vertex: VertexId, round_number: int) -> bool:
        for start, end in self._crash_windows.get(vertex, ()):
            if start <= round_number and (end is None or round_number < end):
                return True
        return False

    # -- per-message fate -------------------------------------------------

    def _fate(self, message: Any, now: int, seq: int) -> Optional[int]:
        """Decide a message's fate: ``None`` = dropped, else extra delay rounds."""
        condition = self.condition
        telemetry = self.telemetry
        delay = 0
        if self._crash_windows:
            # Omission window: traffic the crashed vertex sent while
            # down, and traffic arriving while it is down, is lost.
            if self._is_crashed(message.sender, message.sent_in_round) or self._is_crashed(
                message.receiver, now
            ):
                telemetry["crash_omissions"] += 1
                telemetry["dropped"] += 1
                return None
        adversary = condition.adversary
        if adversary is not None:
            if (
                self._heavy_edges
                and normalize_edge(message.sender, message.receiver) in self._heavy_edges
            ):
                telemetry["adversary_delayed"] += 1
                delay += adversary.heavy_delay
            if adversary.drop_kind and adversary.drop_kind in message.kind:
                if (
                    adversary.drop_rate >= 1.0
                    or self._uniform("adrop", seq) < adversary.drop_rate
                ):
                    telemetry["adversary_dropped"] += 1
                    telemetry["dropped"] += 1
                    return None
        loss = condition.loss
        if loss is not None and loss.rate > 0.0:
            failures = 0
            while failures <= loss.retransmit:
                if self._uniform("loss", seq, failures) >= loss.rate:
                    break
                failures += 1
            if failures > loss.retransmit:
                # Every attempt lost; the retries still happened on the
                # wire and are charged like the successful-retry case.
                telemetry["retransmits"] += loss.retransmit
                for _ in range(loss.retransmit):
                    self.metrics.record_message(message.kind, message.words)
                telemetry["dropped"] += 1
                return None
            if failures:
                telemetry["retransmits"] += failures
                for _ in range(failures):
                    self.metrics.record_message(message.kind, message.words)
                delay += failures
        delay_model = condition.delay
        if delay_model is not None:
            if delay_model.rate >= 1.0 or self._uniform("delay", seq) < delay_model.rate:
                drawn = 1 + int(
                    self._uniform("delay-amount", seq) * delay_model.max_delay
                )
                # The draw is uniform over 1..max_delay; the boundary
                # u = 1.0 is unreachable, so drawn <= max_delay holds.
                delay += drawn
        return delay

    @staticmethod
    def _copy_message(message: Any) -> Message:
        """Engine-agnostic copy for deferral (array inboxes are ephemeral)."""
        return Message(
            sender=message.sender,
            receiver=message.receiver,
            kind=message.kind,
            payload=tuple(message.payload),
            words=message.words,
            sent_in_round=message.sent_in_round,
        )

    # -- kernel contract ---------------------------------------------------

    def vertices(self):
        return self._inner.vertices()

    def node(self, vertex: VertexId):
        return self._inner.node(vertex)

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        return self._inner.edge_weight(u, v)

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        self._inner.send(sender, receiver, kind, payload, words)

    def send_to_neighbors(
        self,
        sender: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
        exclude: Optional[VertexId] = None,
    ) -> int:
        return self._inner.send_to_neighbors(sender, kind, payload, words, exclude)

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        return self._inner.remaining_capacity(sender, receiver)

    def pending_count(self) -> int:
        # Held messages are in flight: protocol drivers must keep
        # driving rounds while the condition holds traffic back.
        return self._inner.pending_count() + len(self._held)

    def _check_round_cap(self, advance: int = 1) -> None:
        if self.metrics.rounds + advance > self._round_cap:
            raise NonTerminationError(
                f"run exceeded the network-condition round cap {self._round_cap} "
                f"(condition {self.condition.label()!r}); the schedule prevents "
                "termination",
                round_cap=self._round_cap,
                rounds=self.metrics.rounds,
                messages=self.metrics.messages,
                words=self.metrics.words,
            )

    def deliver_round(self) -> Dict[VertexId, List[Any]]:
        self._check_round_cap()
        raw = self._inner.deliver_round()
        if self.condition.is_noop():
            return raw
        now = self.metrics.rounds
        delivered: List[Any] = []
        if self._held:
            due = [entry for entry in self._held if entry[0] <= now]
            if due:
                self._held = [entry for entry in self._held if entry[0] > now]
                due.sort(key=lambda entry: (entry[0], entry[1]))
                delivered.extend(message for _, _, message in due)
        edge_front = self._edge_front
        for inbox in raw.values():
            for message in inbox:
                seq = self._seq
                self._seq += 1
                fate = self._fate(message, now, seq)
                if fate is None:
                    continue
                due = now + fate
                edge = (message.sender, message.receiver)
                front = edge_front.get(edge)
                if front is not None and due < front:
                    due = front  # FIFO links: no overtaking on an edge
                edge_front[edge] = due
                if due <= now:
                    delivered.append(message)
                else:
                    self.telemetry["delayed"] += 1
                    self._held.append((due, seq, self._copy_message(message)))
        inboxes: Dict[VertexId, List[Any]] = {}
        for message in delivered:
            inboxes.setdefault(message.receiver, []).append(message)
        self.telemetry["delivered"] += len(delivered)
        return inboxes

    def idle_rounds(self, count: int) -> None:
        if self._held:
            raise SimulationError(
                f"cannot idle: {len(self._held)} deferred messages are pending "
                "under the active network condition"
            )
        if count > 0:
            self._check_round_cap(advance=count)
        self._inner.idle_rounds(count)


class ConditionScope:
    """Everything one :func:`condition_scope` installation observed."""

    def __init__(self, condition: NetworkCondition) -> None:
        self.condition = condition
        self.engines: List[ConditionedEngine] = []

    def cost(self) -> CostReport:
        """Aggregate cost across every engine wrapped in this scope."""
        total = CostReport()
        for engine in self.engines:
            total = total + engine.metrics.as_report()
        return total

    def telemetry(self) -> Dict[str, object]:
        """JSON-safe observed-fault telemetry for result details / rows."""
        counters: Dict[str, int] = {
            "delivered": 0,
            "dropped": 0,
            "delayed": 0,
            "retransmits": 0,
            "crash_omissions": 0,
            "adversary_dropped": 0,
            "adversary_delayed": 0,
        }
        crash_events = 0
        for engine in self.engines:
            for key in counters:
                counters[key] += engine.telemetry[key]
            crash_events += sum(
                len(windows) for windows in engine._crash_windows.values()
            )
        payload: Dict[str, object] = {
            "condition": self.condition.label(),
            "condition_key": self.condition.key(),
            "engines_wrapped": len(self.engines),
            "crash_events": crash_events,
        }
        payload.update(counters)
        return payload


@contextlib.contextmanager
def condition_scope(
    condition: NetworkCondition, run_seed: Optional[int] = None
) -> Iterator[ConditionScope]:
    """Wrap every engine created in this block in a :class:`ConditionedEngine`.

    Installed by :func:`repro.algorithms.run_algorithm` when the run's
    config carries a condition; rides the generic
    :func:`~repro.simulator.engine.engine_wrapper` seam, so provider-
    vended engines (batched arena lanes) are wrapped exactly like
    registry-built ones.  Yields a :class:`ConditionScope` that collects
    the wrapped engines and aggregates their fault telemetry.
    """
    scope = ConditionScope(condition)

    def wrapper(engine: Engine, graph, bandwidth: int, name: str) -> Engine:
        wrapped = ConditionedEngine(engine, condition, run_seed=run_seed)
        scope.engines.append(wrapped)
        return wrapped

    with engine_wrapper(wrapper):
        yield scope
