"""The workload zoo: topology and weight families beyond the core set.

Elkin's bounds only separate from the baselines' across *structurally
diverse* inputs: low-diameter expanders, long sparse skeletons, dense
cores, and weight assignments that stress the comparator.  The core
generator set (:mod:`repro.graphs.generators`) covers the classical
regimes; this module adds the families the related work leans on --
tori, hypercubes, small-world rewirings, random-regular expanders --
plus *planted* instances whose MST is known by construction and weight
patterns that stress near-ties.

Every family registers itself through
:func:`repro.graphs.generators.register_family`, so it is a legal
``GraphSpec.family`` everywhere: campaign grids, scenarios, the CLI and
the ``zoo`` preset.  The module is imported lazily by
:func:`repro.graphs.generators.ensure_zoo_families` (and eagerly by the
``repro`` package), so the registration happens before any family
lookup.

Planted families additionally record the spanning tree they plant in
``graph.graph["planted_mst"]``; the verification layer
(:mod:`repro.verify.planted_checks`) checks every run on such a graph
against the planted tree, independently of the sequential oracles.

The uniqueness convention: the paper assumes pairwise-distinct edge
weights (unique MST), and every simulated algorithm validates that
assumption.  The unit/duplicate weight-stress families therefore
realise tied weights the way the paper does w.l.o.g. -- through the
deterministic lexicographic perturbation ``(weight, u, v)`` -- so all
weights stay distinct while every comparison is a near-tie.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from .exceptions import GraphError
from .graphs.generators import _finalize, GraphSpec, random_connected_graph, register_family
from .graphs.weights import ensure_unique_weights
from .types import normalize_edge

#: Weight quantum for the near-tie families: exactly representable in
#: binary floating point, so ``base + index * _EPSILON`` is distinct and
#: deterministic across platforms for any realistic edge count.
_EPSILON = 2.0**-20


# --------------------------------------------------------------------- #
# topology families
# --------------------------------------------------------------------- #


def torus_3d_graph(
    rows: int,
    cols: int,
    layers: int,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """3D torus ``rows x cols x layers`` (grid with wraparound in all axes).

    A bounded-degree (6-regular) skeleton with hop-diameter
    ``(rows + cols + layers) // 2`` -- the intermediate-diameter regime
    at a dimension the 2D families cannot reach.
    """
    if rows < 3 or cols < 3 or layers < 3:
        raise GraphError(
            f"3d-torus dimensions must be >= 3, got {rows}x{cols}x{layers}"
        )
    graph = nx.grid_graph(dim=(rows, cols, layers), periodic=True)
    return _finalize(graph, seed, random_weights)


def hypercube_graph(
    dim: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """``dim``-dimensional hypercube: ``n = 2^dim``, hop-diameter ``dim``.

    The classical ``O(log n)``-diameter bounded-degree expander-like
    family: ``D = log2 n`` exactly, so the paper's regime rule always
    selects ``k = sqrt(n / b)``.
    """
    if dim < 1:
        raise GraphError(f"need dim >= 1, got {dim}")
    return _finalize(nx.hypercube_graph(dim), seed, random_weights)


def small_world_graph(
    n: int,
    neighbors: int = 4,
    rewire: float = 0.25,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Connected Watts-Strogatz small-world graph.

    A ring lattice (each vertex joined to its ``neighbors`` nearest
    neighbours) with each edge rewired with probability ``rewire`` --
    the canonical interpolation between the high-diameter cycle and a
    low-diameter random graph.
    """
    if n < 4:
        raise GraphError(f"need n >= 4 for a small-world graph, got {n}")
    if not 2 <= neighbors < n:
        raise GraphError(f"need 2 <= neighbors < n, got neighbors={neighbors} n={n}")
    if not 0.0 <= rewire <= 1.0:
        raise GraphError(f"rewire must be in [0, 1], got {rewire}")
    rng = random.Random(seed)
    graph = nx.connected_watts_strogatz_graph(
        n, neighbors, rewire, tries=100, seed=rng.randrange(2**31)
    )
    return _finalize(graph, seed, random_weights)


def expander_graph(
    n: int, degree: int = 6, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Random ``degree``-regular expander (retries until connected).

    Random regular graphs are expanders with high probability, giving
    ``D = O(log n)`` at constant degree -- the regime where the paper's
    ``O((sqrt(n/b) + D) log n)`` round bound is dominated by the
    ``sqrt(n/b)`` term.  A higher default degree than the core
    ``random_regular`` family keeps the spectral gap comfortable at the
    zoo's small sizes.
    """
    if degree < 3 or degree >= n:
        raise GraphError(f"need 3 <= degree < n, got degree={degree} n={n}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n} degree={degree}")
    rng = random.Random(seed)
    for _attempt in range(100):
        candidate = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
        if nx.is_connected(candidate):
            return _finalize(candidate, seed, random_weights)
    raise GraphError(f"failed to sample a connected {degree}-regular expander on {n} vertices")


def complete_bipartite_graph(
    left: int, right: int, seed: Optional[int] = None, random_weights: bool = True
) -> nx.Graph:
    """Complete bipartite graph ``K_{left,right}``; hop-diameter 2.

    A dense low-diameter family whose edge count ``left * right`` is
    quadratic while no triangle exists -- a different density extreme
    from the complete graph for the message-bound experiments.
    """
    if left < 1 or right < 1:
        raise GraphError(f"need left, right >= 1, got {left}, {right}")
    if left + right < 2:
        raise GraphError("a complete bipartite graph needs at least 2 vertices")
    return _finalize(nx.complete_bipartite_graph(left, right), seed, random_weights)


def balanced_tree_graph(
    branching: int = 2,
    height: int = 3,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Balanced ``branching``-ary tree of the given ``height``.

    ``m = n - 1`` with hop-diameter ``2 * height = Theta(log n)`` -- a
    tree (every edge is an MST edge) that is nonetheless low-diameter,
    unlike the path/caterpillar tree families.
    """
    if branching < 2:
        raise GraphError(f"need branching >= 2, got {branching}")
    if height < 1:
        raise GraphError(f"need height >= 1, got {height}")
    return _finalize(nx.balanced_tree(branching, height), seed, random_weights)


# --------------------------------------------------------------------- #
# planted families (known MST by construction)
# --------------------------------------------------------------------- #


def _record_planted_mst(graph: nx.Graph, edges: List[Tuple[int, int]]) -> None:
    """Record the planted spanning tree on the graph (JSON-safe form)."""
    canonical = sorted(normalize_edge(u, v) for u, v in edges)
    graph.graph["planted_mst"] = [list(edge) for edge in canonical]


def planted_fragments_graph(
    n: int,
    fragments: Optional[int] = None,
    extra_edges: Optional[int] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Fragment clusters with a planted, known-by-construction MST.

    The vertices are partitioned into ``fragments`` clusters (default
    ``round(sqrt(n))``); each cluster carries a random internal tree,
    the clusters are joined by a random inter-cluster tree, and
    ``extra_edges`` heavier non-tree edges (default ``n``) are sprinkled
    on top.  Every planted edge is strictly lighter than every non-tree
    edge, so the MST is exactly the planted tree (Kruskal accepts the
    planted edges first and they already span).  The planted tree is
    recorded in ``graph.graph["planted_mst"]`` and checked by
    :mod:`repro.verify.planted_checks` on every verified run.

    This mirrors the base-forest structure of Controlled-GHS: the
    cluster diameter plays the role of the fragment parameter ``k``.
    ``random_weights`` is accepted for interface uniformity; the weights
    are always the planted ranks (shuffled within each class by
    ``seed``).
    """
    del random_weights  # the planted construction fixes the weight classes
    if n < 4:
        raise GraphError(f"need n >= 4 for planted fragments, got {n}")
    count = fragments if fragments is not None else max(2, round(math.sqrt(n)))
    if not 2 <= count <= n:
        raise GraphError(f"need 2 <= fragments <= n, got fragments={count} n={n}")
    rng = random.Random(seed)

    vertices = list(range(n))
    rng.shuffle(vertices)
    clusters: List[List[int]] = [vertices[index::count] for index in range(count)]

    planted: List[Tuple[int, int]] = []
    for members in clusters:
        for position in range(1, len(members)):
            planted.append((members[position], members[rng.randrange(position)]))
    # Random tree over the clusters; each inter-cluster edge picks random
    # endpoint vertices inside the two clusters it joins.
    for index in range(1, count):
        other = rng.randrange(index)
        planted.append(
            (rng.choice(clusters[index]), rng.choice(clusters[other]))
        )

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(planted)
    target_extra = extra_edges if extra_edges is not None else n
    max_extra = n * (n - 1) // 2 - (n - 1)
    target_extra = min(target_extra, max_extra)
    added = 0
    attempts = 0
    while added < target_extra and attempts < 50 * max(target_extra, 1) + 100:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1

    # Light planted weights (1 .. n-1), heavy non-tree weights (n ..),
    # each class shuffled so the ranks carry no structural signal.
    planted_set = {normalize_edge(u, v) for u, v in planted}
    light = [float(value) for value in range(1, len(planted) + 1)]
    heavy = [float(value) for value in range(n, n + graph.number_of_edges())]
    rng.shuffle(light)
    rng.shuffle(heavy)
    light_iter, heavy_iter = iter(light), iter(heavy)
    for u, v in sorted(normalize_edge(a, b) for a, b in graph.edges()):
        graph[u][v]["weight"] = (
            next(light_iter) if (u, v) in planted_set else next(heavy_iter)
        )
    if not nx.is_connected(graph):
        raise GraphError("planted-fragment construction produced a disconnected graph")
    _record_planted_mst(graph, planted)
    graph.graph["planted_fragments"] = [sorted(members) for members in clusters]
    return graph


def adversarial_permutation_graph(
    n: int,
    stride: Optional[int] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Backbone path with adversarially permuted weights and heavy chords.

    The planted MST is the path ``0 - 1 - ... - n-1`` whose weights
    *decrease* along the path, so greedy fragment growth (GHS-style
    MWOE selection) starts at the far end and merges in the worst-case
    chain order.  Chord edges ``(i, i + stride)`` are all heavier than
    every backbone edge, and their weights are permuted so the chord
    adjacent to the lightest backbone region is the heaviest -- the
    opposite of what a weight-oblivious heuristic would hope for.
    ``seed`` rotates the chord permutation; ``random_weights`` is
    accepted for interface uniformity (the permutation *is* the point).
    """
    del random_weights
    if n < 4:
        raise GraphError(f"need n >= 4 for an adversarial permutation graph, got {n}")
    step = stride if stride is not None else max(2, round(math.sqrt(n)))
    if step < 2:
        raise GraphError(f"stride must be >= 2, got {step}")
    graph = nx.Graph()
    backbone = [(index, index + 1) for index in range(n - 1)]
    for index, (u, v) in enumerate(backbone):
        graph.add_edge(u, v, weight=float(n - 1 - index))
    chords = [(index, index + step) for index in range(n - step)]
    rotation = (seed or 0) % max(len(chords), 1)
    for position, (u, v) in enumerate(chords):
        rank = (position + rotation) % len(chords)
        # Reversed: early (light-backbone-adjacent) chords get the
        # heaviest weights.
        graph.add_edge(u, v, weight=float(n + (len(chords) - 1 - rank)))
    _record_planted_mst(graph, backbone)
    return graph


# --------------------------------------------------------------------- #
# weight-stress families
# --------------------------------------------------------------------- #


def unit_weight_stress_graph(
    n: int,
    extra_edges: Optional[int] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Random connected structure where every weight is a near-unit near-tie.

    All weights are ``1 + index * 2^-20`` with the indices randomly
    permuted: pairwise distinct (the paper's uniqueness assumption --
    realised exactly as its w.l.o.g. perturbation argument), but every
    comparison the algorithms make is between nearly identical values.
    This stresses MWOE selection and the ``(weight, u, v)`` total order
    rather than the topology.
    """
    del random_weights  # the near-tie pattern is the family
    graph = random_connected_graph(
        n, extra_edges=extra_edges, seed=seed, random_weights=False
    )
    rng = random.Random(seed)
    ordered = sorted(normalize_edge(u, v) for u, v in graph.edges())
    values = [1.0 + index * _EPSILON for index in range(len(ordered))]
    rng.shuffle(values)
    for (u, v), weight in zip(ordered, values):
        graph[u][v]["weight"] = weight
    return graph


def duplicate_weight_stress_graph(
    n: int,
    levels: int = 4,
    extra_edges: Optional[int] = None,
    seed: Optional[int] = None,
    random_weights: bool = True,
) -> nx.Graph:
    """Weights drawn from ``levels`` duplicate classes, tie-broken lexicographically.

    Each edge first receives one of ``levels`` base weights (massive
    duplication), then the standard deterministic perturbation
    (:func:`repro.graphs.weights.ensure_unique_weights`) breaks ties in
    the ``(weight, u, v)`` order -- the construction the paper invokes
    to assume unique weights w.l.o.g.  The resulting MST is exactly the
    MST of the duplicate weighting under lexicographic tie-breaking, so
    the family exercises duplicate-weight inputs while keeping the
    unique-MST verification stack sound.
    """
    del random_weights
    if levels < 1:
        raise GraphError(f"need levels >= 1, got {levels}")
    graph = random_connected_graph(
        n, extra_edges=extra_edges, seed=seed, random_weights=False
    )
    rng = random.Random(seed)
    for u, v in sorted(normalize_edge(a, b) for a, b in graph.edges()):
        graph[u][v]["weight"] = float(1 + rng.randrange(levels))
    return ensure_unique_weights(graph, epsilon=_EPSILON)


# --------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------- #


def _cube_side(n: int) -> int:
    return max(3, round(n ** (1.0 / 3.0)))


register_family(
    "torus_3d",
    torus_3d_graph,
    shape_from_n=lambda n: {
        "rows": _cube_side(n),
        "cols": _cube_side(n),
        "layers": _cube_side(n),
    },
)
register_family(
    "hypercube",
    hypercube_graph,
    shape_from_n=lambda n: {"dim": max(1, round(math.log2(max(n, 2))))},
)
register_family("small_world", small_world_graph)
register_family("expander", expander_graph)
register_family(
    "complete_bipartite",
    complete_bipartite_graph,
    shape_from_n=lambda n: {"left": max(1, n // 2), "right": max(1, n - n // 2)},
)
register_family(
    "balanced_tree",
    balanced_tree_graph,
    # Nearest height: a binary tree of height h has 2^(h+1) - 1 vertices,
    # so rounding log2(n + 1) picks whichever height is closest to the
    # requested size (ceil would overshoot ~2x just above 2^k - 1).
    shape_from_n=lambda n: {
        "branching": 2,
        "height": max(1, round(math.log2(max(n, 2) + 1)) - 1),
    },
)
register_family("planted_fragments", planted_fragments_graph)
register_family("adversarial_permutation", adversarial_permutation_graph)
register_family("unit_weight_stress", unit_weight_stress_graph)
register_family("duplicate_weight_stress", duplicate_weight_stress_graph)


# --------------------------------------------------------------------- #
# the zoo: per-family metadata and the sweep grids
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadInfo:
    """Catalogue entry for one zoo family.

    Attributes:
        family: registered family name.
        regime: diameter/weight regime the family occupies
            (``"low-diameter"`` / ``"high-diameter"`` /
            ``"intermediate"`` / ``"weight-stress"``).
        round_regime: which branch of the paper's round bound the
            family exercises for ``elkin`` (informational; the README
            table is generated from this).
        plants_mst: True when instances carry a
            ``graph.graph["planted_mst"]`` ground truth.
    """

    family: str
    regime: str
    round_regime: str
    plants_mst: bool = False


#: Catalogue of every sweepable family (core set + zoo additions).
ZOO_INFO: Dict[str, WorkloadInfo] = {
    info.family: info
    for info in [
        WorkloadInfo("path", "high-diameter", "k = D: O(D log n) dominated by D = n - 1"),
        WorkloadInfo("cycle", "high-diameter", "k = D: O(D log n), D = n/2"),
        WorkloadInfo("star", "low-diameter", "k = sqrt(n/b): O(sqrt(n/b) log n), D = 2"),
        WorkloadInfo("complete", "low-diameter", "k = sqrt(n/b): message bound at m = Theta(n^2)"),
        WorkloadInfo("grid", "intermediate", "D = Theta(sqrt(n)): the regime boundary k = D"),
        WorkloadInfo("torus", "intermediate", "D = Theta(sqrt(n)) with wraparound symmetry"),
        WorkloadInfo("random_tree", "intermediate", "m = n - 1: every edge is an MST edge"),
        WorkloadInfo("random_connected", "low-diameter", "D = O(log n) whp: k = sqrt(n/b)"),
        WorkloadInfo("random_regular", "low-diameter", "bounded-degree expander, D = O(log n)"),
        WorkloadInfo("random_geometric", "intermediate", "D ~ 1/radius: tunable between regimes"),
        WorkloadInfo("lollipop", "high-diameter", "dense core + long tail: k = D, m = Theta(n^2)"),
        WorkloadInfo("barbell", "high-diameter", "two dense cores: k = D on the bridge"),
        WorkloadInfo("hub_path", "low-diameter", "D = 2 but MST diameter Theta(n): separates GHS"),
        WorkloadInfo("preferential_attachment", "low-diameter", "heavy hubs, D = O(log n / log log n)"),
        WorkloadInfo("caterpillar", "high-diameter", "spine tree: k = D at bounded degree"),
        WorkloadInfo("wheel", "low-diameter", "D = 2 at m = 2(n-1): sparse low-D extreme"),
        WorkloadInfo("torus_3d", "intermediate", "D = Theta(n^(1/3)): between expander and grid"),
        WorkloadInfo("hypercube", "low-diameter", "D = log2 n exactly: k = sqrt(n/b)"),
        WorkloadInfo("small_world", "low-diameter", "rewired ring: D = O(log n) at lattice density"),
        WorkloadInfo("expander", "low-diameter", "sqrt(n/b) term dominates: the Theorem 3.1 regime"),
        WorkloadInfo("complete_bipartite", "low-diameter", "m = Theta(n^2) without triangles"),
        WorkloadInfo("balanced_tree", "low-diameter", "tree with D = Theta(log n): all edges MST"),
        WorkloadInfo(
            "planted_fragments", "intermediate",
            "cluster structure mirrors the controlled-GHS base forest", plants_mst=True,
        ),
        WorkloadInfo(
            "adversarial_permutation", "high-diameter",
            "decreasing backbone weights force worst-case merge chains", plants_mst=True,
        ),
        WorkloadInfo("unit_weight_stress", "weight-stress", "every comparison is a near-tie"),
        WorkloadInfo(
            "duplicate_weight_stress", "weight-stress",
            "duplicate classes under lexicographic tie-breaking",
        ),
    ]
}

#: Families that plant a known MST in ``graph.graph["planted_mst"]``.
PLANTED_FAMILIES: Tuple[str, ...] = tuple(
    sorted(name for name, info in ZOO_INFO.items() if info.plants_mst)
)

#: Canonical small-instance parameters per family: large enough that the
#: regimes differ, small enough that a 100+-cell sweep stays fast.  Used
#: by the ``zoo`` preset's coverage grid and the differential
#: property-based suite.
_COVERAGE_PARAMS: Dict[str, Dict[str, object]] = {
    "path": {"n": 18},
    "cycle": {"n": 18},
    "star": {"n": 18},
    "complete": {"n": 12},
    "grid": {"rows": 4, "cols": 4},
    "torus": {"rows": 4, "cols": 4},
    "random_tree": {"n": 18},
    "random_connected": {"n": 16},
    "random_regular": {"n": 16, "degree": 4},
    "random_geometric": {"n": 16},
    "lollipop": {"clique_size": 5, "path_length": 10},
    "barbell": {"clique_size": 4, "path_length": 7},
    "hub_path": {"n": 16},
    "preferential_attachment": {"n": 16},
    "caterpillar": {"n": 18},
    "wheel": {"n": 16},
    "torus_3d": {"rows": 3, "cols": 3, "layers": 3},
    "hypercube": {"dim": 4},
    "small_world": {"n": 16},
    "expander": {"n": 16, "degree": 6},
    "complete_bipartite": {"left": 6, "right": 6},
    "balanced_tree": {"branching": 2, "height": 3},
    "planted_fragments": {"n": 16},
    "adversarial_permutation": {"n": 18},
    "unit_weight_stress": {"n": 16},
    "duplicate_weight_stress": {"n": 16},
}

#: Denser instances for the differential-stress grid: sizes where the
#: sequential references and the verification oracles dominate the cell
#: cost, which is exactly what batched execution amortizes.
_STRESS_SPECS: List[Tuple[str, Dict[str, object]]] = [
    ("complete", {"n": 64}),
    ("complete", {"n": 96}),
    ("complete_bipartite", {"left": 32, "right": 32}),
    ("complete_bipartite", {"left": 24, "right": 48}),
    ("expander", {"n": 96, "degree": 12}),
    ("expander", {"n": 128, "degree": 8}),
    ("random_regular", {"n": 96, "degree": 8}),
    ("random_connected", {"n": 128, "extra_edges": 640}),
    ("preferential_attachment", {"n": 128, "attachments": 6}),
    ("small_world", {"n": 128, "neighbors": 12}),
    ("planted_fragments", {"n": 128, "extra_edges": 512}),
    ("adversarial_permutation", {"n": 128, "stride": 4}),
    ("unit_weight_stress", {"n": 128, "extra_edges": 640}),
    ("duplicate_weight_stress", {"n": 128, "extra_edges": 640}),
    ("wheel", {"n": 128}),
    ("hypercube", {"dim": 7}),
]


def zoo_family_names() -> List[str]:
    """Every sweepable family name (core + zoo), sorted."""
    return sorted(_COVERAGE_PARAMS)


def coverage_spec(family: str, seed: Optional[int] = None) -> GraphSpec:
    """The canonical small zoo instance of ``family`` (optionally seeded)."""
    if family not in _COVERAGE_PARAMS:
        known = ", ".join(zoo_family_names())
        raise GraphError(f"no zoo coverage shape for family '{family}'; known: {known}")
    params = dict(_COVERAGE_PARAMS[family])
    if seed is not None:
        params["seed"] = seed
    return GraphSpec(family, params)


def zoo_coverage_specs() -> List[GraphSpec]:
    """One canonical small instance per family, in sorted family order."""
    return [coverage_spec(family) for family in zoo_family_names()]


def zoo_stress_specs() -> List[GraphSpec]:
    """The denser differential-stress instances of the zoo preset."""
    return [GraphSpec(family, dict(params)) for family, params in _STRESS_SPECS]
