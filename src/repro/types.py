"""Shared type aliases and small value objects used across the package.

The simulator and the algorithms exchange only a handful of primitive
shapes: vertex identifiers, undirected edges, weighted edges, and cost
summaries.  Centralising their definitions keeps signatures consistent
and documents the conventions (e.g. an undirected edge is always stored
with its endpoints sorted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

VertexId = int
FragmentId = int
Edge = Tuple[int, int]
WeightedEdge = Tuple[int, int, float]


def normalize_edge(u: VertexId, v: VertexId) -> Edge:
    """Return the canonical (sorted) representation of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


def normalize_edges(edges: Iterable[Edge]) -> set[Edge]:
    """Return the canonical edge set for an iterable of (possibly unordered) edges."""
    return {normalize_edge(u, v) for u, v in edges}


@dataclass(frozen=True, order=True)
class EdgeKey:
    """Total order on edges used to make the MST unique.

    The order is (weight, endpoint min, endpoint max): ties in weight are
    broken lexicographically by the canonical endpoints, which is the
    standard symmetry-breaking rule for distributed MST (Peleg, Ch. 5).
    """

    weight: float
    u: VertexId
    v: VertexId

    @staticmethod
    def of(u: VertexId, v: VertexId, weight: float) -> "EdgeKey":
        a, b = normalize_edge(u, v)
        return EdgeKey(weight=weight, u=a, v=b)

    @property
    def edge(self) -> Edge:
        return (self.u, self.v)


@dataclass
class CostReport:
    """Round and message totals of a simulated execution.

    Attributes:
        rounds: number of synchronous rounds consumed.
        messages: number of (edge, direction, round) transmissions.
        words: number of machine words carried by those messages.
    """

    rounds: int = 0
    messages: int = 0
    words: int = 0

    def __add__(self, other: "CostReport") -> "CostReport":
        return CostReport(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            words=self.words + other.words,
        )

    def merged_parallel(self, other: "CostReport") -> "CostReport":
        """Combine two executions that ran in parallel (rounds = max, messages add)."""
        return CostReport(
            rounds=max(self.rounds, other.rounds),
            messages=self.messages + other.messages,
            words=self.words + other.words,
        )


@dataclass
class PhaseTelemetry:
    """Per-phase telemetry emitted by the Boruvka-over-BFS engine."""

    phase: int
    fragments_before: int
    fragments_after: int
    rounds: int
    messages: int
    mst_edges_added: int
    details: dict = field(default_factory=dict)
