"""repro: a reproduction of Elkin's deterministic distributed MST algorithm.

The package implements, end to end, the algorithm of

    Michael Elkin, "A Simple Deterministic Distributed MST Algorithm,
    with Near-Optimal Time and Message Complexities", PODC 2017
    (arXiv:1703.02411),

together with the synchronous CONGEST(b log n) simulator it runs on, the
classical baselines it is compared against (GHS-style Boruvka,
Garay-Kutten-Peleg with Pipeline-MST, a PRS16-style second phase), a
verification layer, and the benchmark harness that reproduces the
paper's complexity claims.

Quickstart (the scenario-first API)::

    from repro import GraphSpec, Runner, Scenario

    outcome = Runner().run(
        Scenario(graph=GraphSpec("random_connected", {"n": 200, "seed": 7}))
    )
    print(outcome.result.rounds, outcome.result.messages)

The direct entrypoint is still available::

    from repro import compute_mst, random_connected_graph

    graph = random_connected_graph(200, seed=7)
    result = compute_mst(graph)
    print(result.rounds, result.messages, result.total_weight)

See README.md for the architecture overview (including the migration
table from the legacy entrypoints to scenarios) and EXPERIMENTS.md for
the paper-versus-measured record.
"""

__version__ = "1.5.0"

from .algorithms import (
    algorithm_info,
    algorithm_registry,
    AlgorithmInfo,
    available_algorithms,
    register_algorithm,
)
from .api import (
    ProgressReporter,
    Runner,
    RunObserver,
    Scenario,
    ScenarioOutcome,
    TelemetryCollector,
)
from .campaign import (
    available_presets,
    Campaign,
    CampaignReport,
    execute_campaign,
    preset_campaign,
    RunSpec,
    RunStore,
)
from .config import RunConfig
from .core.controlled_ghs import build_base_forest
from .core.elkin_mst import compute_mst
from .core.results import MSTRunResult
from .graphs.generators import (
    available_families,
    GraphSpec,
    make_graph,
    random_connected_graph,
    register_family,
)
from .simulator.engine import available_engines, create_engine, Engine, register_engine
from .simulator.fast_network import BatchedEngine, FastNetwork
from .simulator.network import SyncNetwork
from .types import CostReport
from .verify import MSTOracle

# Imported for its side effect: registering the workload-zoo graph
# families (and to make `repro.workloads` importable as an attribute).
from . import workloads  # noqa: E402  (isort: keep after the registrars)

__all__ = [
    "AlgorithmInfo",
    "ProgressReporter",
    "RunObserver",
    "Runner",
    "Scenario",
    "ScenarioOutcome",
    "TelemetryCollector",
    "algorithm_info",
    "algorithm_registry",
    "available_algorithms",
    "register_algorithm",
    "RunConfig",
    "Campaign",
    "CampaignReport",
    "RunSpec",
    "RunStore",
    "available_presets",
    "execute_campaign",
    "preset_campaign",
    "compute_mst",
    "build_base_forest",
    "MSTRunResult",
    "GraphSpec",
    "make_graph",
    "random_connected_graph",
    "available_families",
    "register_family",
    "workloads",
    "Engine",
    "available_engines",
    "create_engine",
    "register_engine",
    "BatchedEngine",
    "FastNetwork",
    "SyncNetwork",
    "MSTOracle",
    "CostReport",
    "__version__",
]
