"""Round and message accounting.

The two quantities the paper bounds -- the number of synchronous rounds
and the total number of messages -- are tracked here.  A
:class:`Metrics` instance belongs to a :class:`~repro.simulator.network.SyncNetwork`
and is advanced by the kernel only, which keeps the accounting honest:
algorithms cannot forget to charge a transmission because every
transmission goes through the kernel.

:meth:`Metrics.checkpoint` / :meth:`Metrics.since` allow callers to
attribute costs to individual sub-operations (e.g. "phase 3 of Boruvka"),
which the benchmarks and the telemetry use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..types import CostReport


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of the counters at some instant."""

    rounds: int
    messages: int
    words: int


@dataclass
class Metrics:
    """Mutable counters owned by the simulator kernel."""

    rounds: int = 0
    messages: int = 0
    words: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)

    def record_round(self) -> None:
        """Advance the round counter by one (called once per delivered round)."""
        self.rounds += 1

    def record_message(self, kind: str, words: int) -> None:
        """Record one transmitted message carrying ``words`` machine words."""
        self.messages += 1
        self.words += words
        self.messages_by_kind[kind] += 1

    def record_bulk(
        self,
        messages: int,
        words: int,
        *,
        kind: str | None = None,
        kinds: Iterable[str] | Counter | None = None,
    ) -> None:
        """Record ``messages`` transmissions totalling ``words`` words at once.

        The batched engines charge a whole delivery round in one call
        instead of ``messages`` calls to :meth:`record_message`.  The
        per-kind tally comes either from ``kind`` (all messages share
        one kind), or ``kinds`` (one kind per message, or a
        pre-aggregated Counter); both may be omitted when the caller
        tallies kinds separately.
        """
        self.messages += messages
        self.words += words
        if kind is not None:
            self.messages_by_kind[kind] += messages
        if kinds is not None:
            self.messages_by_kind.update(kinds)

    def checkpoint(self) -> MetricsSnapshot:
        """Return an immutable snapshot of the current counters."""
        return MetricsSnapshot(rounds=self.rounds, messages=self.messages, words=self.words)

    def since(self, snapshot: MetricsSnapshot) -> CostReport:
        """Return the cost accumulated since ``snapshot`` was taken."""
        return CostReport(
            rounds=self.rounds - snapshot.rounds,
            messages=self.messages - snapshot.messages,
            words=self.words - snapshot.words,
        )

    def as_report(self) -> CostReport:
        """Return the total cost accumulated so far as a :class:`CostReport`."""
        return CostReport(rounds=self.rounds, messages=self.messages, words=self.words)
