"""Synchronous CONGEST(b log n) simulator.

The simulator is a faithful executable model of the communication model
the paper analyses (Section 2 of the paper):

* computation proceeds in synchronous rounds;
* in each round every vertex may send, over each incident edge and in
  each direction, a message of at most ``b`` machine words (a word is an
  edge weight or a vertex/fragment identity; ``b = 1`` is the standard
  CONGEST model);
* local computation is free;
* the cost of an execution is its number of rounds and its total number
  of messages.

The kernel behind the model is pluggable
(:class:`~repro.simulator.engine.Engine`): the *reference* kernel
:class:`~repro.simulator.network.SyncNetwork` mirrors the model
definition line by line, while the *fast* kernel
:class:`~repro.simulator.fast_network.FastNetwork` batches the hot path
(dense indexing, tuple messages, bulk accounting) without changing a
single reported number.  :func:`~repro.simulator.engine.create_engine`
selects one by name.  :mod:`repro.simulator.protocol` drives per-node
protocols; and :mod:`repro.simulator.primitives` contains the classical
building blocks (BFS tree, tree broadcast, convergecast, pipelined
upcast/downcast, interval labelling, neighbour exchange) that the paper
composes.
"""

from .engine import (
    available_engines,
    create_engine,
    DEFAULT_ENGINE,
    Engine,
    engine_provider,
    register_engine,
)
from .fast_network import BatchedEngine, FastMessage, FastNetwork
from .message import Message
from .metrics import Metrics
from .network import SyncNetwork
from .node import NodeState
from .protocol import NodeProtocol, ProtocolApi, run_protocol

__all__ = [
    "DEFAULT_ENGINE",
    "Engine",
    "available_engines",
    "create_engine",
    "engine_provider",
    "register_engine",
    "BatchedEngine",
    "FastMessage",
    "FastNetwork",
    "Message",
    "Metrics",
    "SyncNetwork",
    "NodeState",
    "NodeProtocol",
    "ProtocolApi",
    "run_protocol",
]
