"""Message objects exchanged by simulated vertices.

A message models one transmission over one edge in one direction during
one round.  Its ``words`` attribute records how many machine words
(edge weights / identities) it carries; the network kernel enforces that
the words sent over a directed edge within a single round never exceed
the bandwidth parameter ``b`` of the CONGEST(b log n) model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from ..types import VertexId


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes:
        sender: vertex that sent the message.
        receiver: vertex that will receive it at the start of the next round.
        kind: short protocol-specific tag (e.g. ``"explore"``, ``"upcast-item"``).
        payload: protocol-specific content; must be small (O(1) words).
        words: number of machine words the payload occupies; used for
            bandwidth enforcement and for the word counter in the metrics.
        sent_in_round: value of the round clock when the message was sent.
    """

    sender: VertexId
    receiver: VertexId
    kind: str
    payload: Tuple[Any, ...] = field(default_factory=tuple)
    words: int = 1
    sent_in_round: int = 0

    def __post_init__(self) -> None:
        if self.words < 1:
            raise ValueError(f"a message must carry at least one word, got {self.words}")

    def describe(self) -> str:
        """Human-readable one-line description (used in error messages and logs)."""
        return (
            f"{self.kind}: {self.sender} -> {self.receiver} "
            f"({self.words} word(s), round {self.sent_in_round})"
        )
