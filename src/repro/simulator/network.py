"""The synchronous CONGEST(b log n) network kernel.

:class:`SyncNetwork` owns the communication graph, the global round
clock, the message queues, and the :class:`~repro.simulator.metrics.Metrics`
counters.  All communication in the library flows through
:meth:`SyncNetwork.send` / :meth:`SyncNetwork.deliver_round`, which is
what makes the reported round and message counts trustworthy.

Model conventions (see DESIGN.md, Section 6):

* A message sent in round ``r`` is delivered at the beginning of round
  ``r + 1``; delivering a batch of queued messages advances the clock by
  exactly one round.
* Over each directed edge, at most ``bandwidth`` machine words may be
  sent per round.  Protocols that need to move more data must spread it
  over several rounds; violating the cap raises
  :class:`~repro.exceptions.BandwidthExceededError` (it is a bug in the
  protocol, never silently absorbed).
* Local computation is free, as in the paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Tuple

import networkx as nx

from ..exceptions import BandwidthExceededError, SimulationError
from ..graphs.properties import validate_weighted_graph
from ..types import VertexId
from .engine import Engine, register_engine
from .message import Message
from .metrics import Metrics
from .node import NodeState


class SyncNetwork(Engine):
    """Synchronous message-passing network over a weighted graph.

    This is the *reference* engine (``engine="reference"``): its code is
    written to mirror the model definition line by line.  The batched
    :class:`~repro.simulator.fast_network.FastNetwork` implements the
    same :class:`~repro.simulator.engine.Engine` contract for speed.

    Args:
        graph: connected undirected :class:`networkx.Graph` whose edges
            carry a ``weight`` attribute.
        bandwidth: the ``b`` of CONGEST(b log n); maximum number of words
            per directed edge per round.
        validate: run input validation (disable only in tight loops where
            the caller has already validated the graph).
    """

    def __init__(self, graph: nx.Graph, bandwidth: int = 1, validate: bool = True) -> None:
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        if validate:
            validate_weighted_graph(graph, require_unique_weights=False)
        self.graph = graph
        self.bandwidth = bandwidth
        self.metrics = Metrics()
        # The graph is immutable for the lifetime of the engine, so the
        # sizes every bound and rounds-hint computation keeps asking for
        # are cached once (networkx recounts adjacency on each query).
        self._n = graph.number_of_nodes()
        self._m = graph.number_of_edges()
        self._nodes: Dict[VertexId, NodeState] = {}
        for vertex in sorted(graph.nodes()):
            neighbors = tuple(sorted(graph.neighbors(vertex)))
            weights = {u: graph[vertex][u]["weight"] for u in neighbors}
            self._nodes[vertex] = NodeState(
                vertex=vertex, neighbors=neighbors, edge_weights=weights
            )
        self._pending: List[Message] = []
        self._words_this_round: Dict[Tuple[VertexId, VertexId], int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices (cached; the graph never changes mid-run)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (cached; the graph never changes mid-run)."""
        return self._m

    def vertices(self) -> Iterable[VertexId]:
        """Iterate over vertex identities in sorted order."""
        return self._nodes.keys()

    def node(self, vertex: VertexId) -> NodeState:
        """Return the :class:`NodeState` of ``vertex``."""
        try:
            return self._nodes[vertex]
        except KeyError as exc:
            raise SimulationError(f"unknown vertex {vertex}") from exc

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""
        if not self.graph.has_edge(u, v):
            raise SimulationError(f"no edge between {u} and {v}")
        return self.graph[u][v]["weight"]

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Queue a message for delivery at the start of the next round.

        Enforces that the edge exists and that the cumulative number of
        words sent over the directed edge ``sender -> receiver`` in the
        current round stays within the bandwidth.
        """
        if not self.graph.has_edge(sender, receiver):
            raise SimulationError(
                f"cannot send {kind!r}: ({sender}, {receiver}) is not an edge of the graph"
            )
        used = self._words_this_round[(sender, receiver)]
        if used + words > self.bandwidth:
            raise BandwidthExceededError(
                f"edge {sender}->{receiver}: {used} word(s) already sent this round, "
                f"adding {words} exceeds bandwidth {self.bandwidth} (message kind {kind!r})"
            )
        self._words_this_round[(sender, receiver)] += words
        self._pending.append(
            Message(
                sender=sender,
                receiver=receiver,
                kind=kind,
                payload=payload,
                words=words,
                sent_in_round=self.round,
            )
        )

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round over the directed edge ``sender -> receiver``."""
        return self.bandwidth - self._words_this_round[(sender, receiver)]

    def pending_count(self) -> int:
        """Number of messages queued for delivery in the next round."""
        return len(self._pending)

    def deliver_round(self) -> Dict[VertexId, List[Message]]:
        """Advance the clock by one round and deliver all queued messages.

        Returns a mapping from receiver vertex to the list of messages it
        receives at the start of the new round (receivers with an empty
        inbox are omitted).  Message and word counters are charged at
        delivery time, i.e. when the transmission actually occupies the
        edge.
        """
        self.metrics.record_round()
        inboxes: Dict[VertexId, List[Message]] = defaultdict(list)
        for message in self._pending:
            self.metrics.record_message(message.kind, message.words)
            inboxes[message.receiver].append(message)
        self._pending = []
        self._words_this_round = defaultdict(int)
        return dict(inboxes)

    def idle_rounds(self, count: int) -> None:
        """Advance the clock by ``count`` silent rounds (no messages).

        Used by orchestration code when the model requires waiting (for
        example, to align phases that the paper analyses as taking a
        fixed number of rounds even if some executions finish earlier).
        """
        if count < 0:
            raise SimulationError(f"cannot advance the clock by {count} rounds")
        if self._pending:
            raise SimulationError("cannot declare idle rounds while messages are pending")
        for _ in range(count):
            self.metrics.record_round()


register_engine("reference", SyncNetwork)
