"""The batched fast kernel (``engine="fast"``).

:class:`FastNetwork` implements the exact same CONGEST(b log n) model as
the reference :class:`~repro.simulator.network.SyncNetwork` -- same
round semantics, same bandwidth enforcement, same cost accounting -- but
restructures the hot path for throughput:

* vertex identities are mapped to dense integer indices once, at
  construction, and adjacency plus edge weights live in flat CSR-style
  arrays (``_indptr`` / ``_nbr_vertex`` / ``_nbr_weight``); each
  directed edge ``u -> v`` owns the flat slot at ``v``'s position in
  ``u``'s adjacency run, and a single precomputed table resolves
  ``(u, v)`` to (slot, receiver bucket, receiver index) in one lookup;
* in-flight messages are plain tuples (:class:`FastMessage`, a
  ``NamedTuple``) appended to per-receiver buckets -- no per-message
  dataclass allocation and no global pending list to re-partition at
  delivery time;
* per-edge bandwidth accounting uses one flat counter array whose
  entries pack ``generation * (bandwidth + 1) + words_used``: advancing
  the round bumps the generation, which makes every stored value stale
  (it reads as zero words used) without touching the array -- per-round
  reset by generation stamping instead of reallocating dictionaries;
* metrics are charged in bulk per round: message and word totals as one
  addition each, the per-kind histogram through C-level
  ``Counter.update`` over the delivered buckets.

The equivalence suite (``tests/test_engine_equivalence.py``) pins down
that both kernels report identical MST edges, round counts, message
counts and per-kind histograms on every algorithm in the library: the
fast kernel buys wall-clock time only, never different numbers.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Dict, Iterable, List, NamedTuple, Tuple

import networkx as nx

from ..exceptions import BandwidthExceededError, SimulationError
from ..graphs.properties import validate_weighted_graph
from ..types import VertexId
from .engine import Engine, register_engine
from .metrics import Metrics
from .node import NodeState

#: C-level field extractors for bulk accounting at delivery time.
_KIND_OF = itemgetter(2)
_WORDS_OF = itemgetter(4)


class FastMessage(NamedTuple):
    """One message in flight, as a plain tuple.

    Field-compatible with :class:`~repro.simulator.message.Message`
    (``sender`` / ``receiver`` / ``kind`` / ``payload`` / ``words`` /
    ``sent_in_round``), so protocol code written against the reference
    kernel consumes fast-kernel inboxes unchanged.  Being a tuple
    subclass, construction costs one C-level allocation; the word-count
    invariant is checked by :meth:`FastNetwork.send` instead of a
    ``__post_init__`` hook.
    """

    sender: VertexId
    receiver: VertexId
    kind: str
    payload: Tuple[Any, ...] = ()
    words: int = 1
    sent_in_round: int = 0

    def describe(self) -> str:
        """Human-readable one-line description (used in error messages and logs)."""
        return (
            f"{self.kind}: {self.sender} -> {self.receiver} "
            f"({self.words} word(s), round {self.sent_in_round})"
        )


class FastNetwork(Engine):
    """Batched synchronous message-passing kernel over a weighted graph.

    Drop-in replacement for :class:`~repro.simulator.network.SyncNetwork`
    (same constructor signature, same :class:`~repro.simulator.engine.Engine`
    contract, same error types and messages).

    Args:
        graph: connected undirected :class:`networkx.Graph` whose edges
            carry a ``weight`` attribute.
        bandwidth: the ``b`` of CONGEST(b log n); maximum number of words
            per directed edge per round.
        validate: run input validation (disable only in tight loops where
            the caller has already validated the graph).
    """

    __slots__ = (
        "graph",
        "bandwidth",
        "metrics",
        "_vertex_of",
        "_index",
        "_nodes",
        "_indptr",
        "_nbr_vertex",
        "_nbr_weight",
        "_edge_info",
        "_edge_packed",
        "_band_span",
        "_gen_base",
        "_generation",
        "_buckets",
        "_touched",
        "_round_value",
    )

    def __init__(self, graph: nx.Graph, bandwidth: int = 1, validate: bool = True) -> None:
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        if validate:
            validate_weighted_graph(graph, require_unique_weights=False)
        self.graph = graph
        self.bandwidth = bandwidth
        self.metrics = Metrics()

        order = sorted(graph.nodes())
        self._vertex_of: List[VertexId] = order
        self._index: Dict[VertexId, int] = {vertex: i for i, vertex in enumerate(order)}
        self._nodes: Dict[VertexId, NodeState] = {}
        self._buckets: List[List[FastMessage]] = [[] for _ in order]

        # CSR-style adjacency: vertex i's neighbours occupy the flat range
        # [_indptr[i], _indptr[i+1]); that range position is the directed
        # edge's slot in the bandwidth-accounting array.
        indptr: List[int] = [0]
        nbr_vertex: List[VertexId] = []
        nbr_weight: List[float] = []
        for vertex in order:
            neighbors = tuple(sorted(graph.neighbors(vertex)))
            weights = {u: graph[vertex][u]["weight"] for u in neighbors}
            self._nodes[vertex] = NodeState(
                vertex=vertex, neighbors=neighbors, edge_weights=weights
            )
            nbr_vertex.extend(neighbors)
            nbr_weight.extend(weights[u] for u in neighbors)
            indptr.append(indptr[-1] + len(neighbors))
        self._indptr = indptr
        self._nbr_vertex = nbr_vertex
        self._nbr_weight = nbr_weight

        # One lookup per send: (sender, receiver) -> (slot, receiver's
        # bucket object, receiver's dense index).  Buckets are never
        # replaced (delivery copies and clears them in place), so the
        # bucket aliases stay valid for the lifetime of the engine.
        index = self._index
        buckets = self._buckets
        edge_info: Dict[Tuple[VertexId, VertexId], Tuple[int, List[FastMessage], int]] = {}
        for i, vertex in enumerate(order):
            base = indptr[i]
            for j, neighbor in enumerate(self._nodes[vertex].neighbors):
                receiver_index = index[neighbor]
                edge_info[(vertex, neighbor)] = (
                    base + j,
                    buckets[receiver_index],
                    receiver_index,
                )
        self._edge_info = edge_info

        # Bandwidth accounting: one flat entry per directed edge packing
        # ``generation * span + words_used``; see the module docstring.
        self._band_span = bandwidth + 1
        self._edge_packed: List[int] = [0] * indptr[-1]
        self._generation = 0
        self._gen_base = 0

        self._touched: List[int] = []
        self._round_value = 0

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    def vertices(self) -> Iterable[VertexId]:
        """Iterate over vertex identities in sorted order."""
        return self._nodes.keys()

    def node(self, vertex: VertexId) -> NodeState:
        """Return the :class:`NodeState` of ``vertex``."""
        try:
            return self._nodes[vertex]
        except KeyError as exc:
            raise SimulationError(f"unknown vertex {vertex}") from exc

    def _slot(self, sender: VertexId, receiver: VertexId) -> int:
        """Flat slot of the directed edge ``sender -> receiver``, or -1."""
        info = self._edge_info.get((sender, receiver))
        return -1 if info is None else info[0]

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""
        slot = self._slot(u, v)
        if slot < 0:
            raise SimulationError(f"no edge between {u} and {v}")
        return self._nbr_weight[slot]

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Queue a message for delivery at the start of the next round.

        Enforces that the edge exists and that the cumulative number of
        words sent over the directed edge ``sender -> receiver`` in the
        current round stays within the bandwidth.
        """
        # Hot path: one table lookup, generation-packed bandwidth
        # counters, and a raw tuple.__new__ (the generated NamedTuple
        # constructor adds a Python frame per message).
        try:
            slot, bucket, receiver_index = self._edge_info[sender, receiver]
        except (KeyError, TypeError):
            raise SimulationError(
                f"cannot send {kind!r}: ({sender}, {receiver}) is not an edge of the graph"
            ) from None
        if words < 1:
            raise ValueError(f"a message must carry at least one word, got {words}")
        base = self._gen_base
        packed = self._edge_packed
        value = packed[slot]
        used = value - base if value > base else 0
        if used + words > self.bandwidth:
            raise BandwidthExceededError(
                f"edge {sender}->{receiver}: {used} word(s) already sent this round, "
                f"adding {words} exceeds bandwidth {self.bandwidth} (message kind {kind!r})"
            )
        packed[slot] = base + used + words
        if not bucket:
            self._touched.append(receiver_index)
        bucket.append(
            tuple.__new__(
                FastMessage, (sender, receiver, kind, payload, words, self._round_value)
            )
        )

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round over the directed edge ``sender -> receiver``."""
        slot = self._slot(sender, receiver)
        if slot < 0:
            return self.bandwidth
        base = self._gen_base
        value = self._edge_packed[slot]
        used = value - base if value > base else 0
        return self.bandwidth - used

    def pending_count(self) -> int:
        """Number of messages queued for delivery in the next round."""
        buckets = self._buckets
        return sum(len(buckets[i]) for i in self._touched)

    def deliver_round(self) -> Dict[VertexId, List[FastMessage]]:
        """Advance the clock by one round and deliver all queued messages.

        Same contract as the reference kernel: receivers appear in
        first-message order, per-receiver lists preserve send order, and
        counters are charged at delivery time -- here in bulk updates
        per round (C-level counting) rather than one call per message.
        """
        metrics = self.metrics
        metrics.record_round()
        self._round_value = metrics.rounds
        self._generation += 1
        self._gen_base = self._generation * self._band_span

        inboxes: Dict[VertexId, List[FastMessage]] = {}
        buckets = self._buckets
        vertex_of = self._vertex_of
        kind_counter = metrics.messages_by_kind
        message_total = 0
        word_total = 0
        for receiver_index in self._touched:
            bucket = buckets[receiver_index]
            inboxes[vertex_of[receiver_index]] = bucket[:]
            message_total += len(bucket)
            word_total += sum(map(_WORDS_OF, bucket))
            kind_counter.update(map(_KIND_OF, bucket))
            # Clear in place: the _edge_info bucket aliases must stay
            # attached to these exact list objects.
            bucket.clear()
        self._touched = []

        metrics.messages += message_total
        metrics.words += word_total
        return inboxes

    def idle_rounds(self, count: int) -> None:
        """Advance the clock by ``count`` silent rounds (no messages)."""
        if count < 0:
            raise SimulationError(f"cannot advance the clock by {count} rounds")
        if self._touched:
            raise SimulationError("cannot declare idle rounds while messages are pending")
        for _ in range(count):
            self.metrics.record_round()
        self._round_value = self.metrics.rounds
        self._generation += count
        self._gen_base = self._generation * self._band_span


register_engine("fast", FastNetwork)
