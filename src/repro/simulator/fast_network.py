"""The batched fast kernel (``engine="fast"``).

:class:`FastNetwork` implements the exact same CONGEST(b log n) model as
the reference :class:`~repro.simulator.network.SyncNetwork` -- same
round semantics, same bandwidth enforcement, same cost accounting -- but
restructures the hot path for throughput:

* vertex identities are mapped to dense integer indices once, at
  construction, and adjacency plus edge weights live in flat CSR-style
  arrays (``_indptr`` / ``_nbr_vertex`` / ``_nbr_weight``); each
  directed edge ``u -> v`` owns the flat slot at ``v``'s position in
  ``u``'s adjacency run, and a single precomputed table resolves
  ``(u, v)`` to (slot, receiver bucket, receiver index) in one lookup;
* in-flight messages are plain tuples (:class:`FastMessage`, a
  ``NamedTuple``) appended to per-receiver buckets -- no per-message
  dataclass allocation and no global pending list to re-partition at
  delivery time;
* per-edge bandwidth accounting uses one flat counter array whose
  entries pack ``generation * (bandwidth + 1) + words_used``: advancing
  the round bumps the generation, which makes every stored value stale
  (it reads as zero words used) without touching the array -- per-round
  reset by generation stamping instead of reallocating dictionaries;
* metrics are charged in bulk per round: message and word totals as one
  addition each, the per-kind histogram through C-level
  ``Counter.update`` over the delivered buckets.

The equivalence suite (``tests/test_engine_equivalence.py``) pins down
that both kernels report identical MST edges, round counts, message
counts and per-kind histograms on every algorithm in the library: the
fast kernel buys wall-clock time only, never different numbers.

:class:`BatchedEngine` extends the same machinery to *many scenarios at
once*: a whole sweep's graphs are packed into one dense index space
(arena-wide CSR adjacency, weights and bandwidth counters built in a
single pass), and per-scenario *lanes* -- real :class:`FastNetwork`
instances over arena slices -- are vended with an O(n) generation reset
between cells instead of being reconstructed.  The batched campaign
executor (``repro.campaign.executor``) steps a zoo-scale sweep through
these lanes; ``tests/test_batched.py`` pins byte-identity with
standalone execution.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Dict, Iterable, List, NamedTuple, Tuple

import networkx as nx

from ..exceptions import BandwidthExceededError, SimulationError
from ..graphs.properties import validate_weighted_graph
from ..types import VertexId
from .engine import Engine, register_engine
from .metrics import Metrics
from .node import NodeState

#: C-level field extractors for bulk accounting at delivery time.
_KIND_OF = itemgetter(2)
_WORDS_OF = itemgetter(4)


class FastMessage(NamedTuple):
    """One message in flight, as a plain tuple.

    Field-compatible with :class:`~repro.simulator.message.Message`
    (``sender`` / ``receiver`` / ``kind`` / ``payload`` / ``words`` /
    ``sent_in_round``), so protocol code written against the reference
    kernel consumes fast-kernel inboxes unchanged.  Being a tuple
    subclass, construction costs one C-level allocation; the word-count
    invariant is checked by :meth:`FastNetwork.send` instead of a
    ``__post_init__`` hook.
    """

    sender: VertexId
    receiver: VertexId
    kind: str
    payload: Tuple[Any, ...] = ()
    words: int = 1
    sent_in_round: int = 0

    def describe(self) -> str:
        """Human-readable one-line description (used in error messages and logs)."""
        return (
            f"{self.kind}: {self.sender} -> {self.receiver} "
            f"({self.words} word(s), round {self.sent_in_round})"
        )


def _node_states(graph: nx.Graph, order: List[VertexId]) -> Dict[VertexId, NodeState]:
    """Sorted-neighbor :class:`NodeState` table for ``order``.

    Shared by :class:`FastNetwork` and :class:`BatchedEngine` so the
    neighbor ordering and weight extraction -- the parts that must never
    diverge between standalone and arena-lane construction -- exist in
    exactly one place.
    """
    nodes: Dict[VertexId, NodeState] = {}
    for vertex in order:
        neighbors = tuple(sorted(graph.neighbors(vertex)))
        weights = {u: graph[vertex][u]["weight"] for u in neighbors}
        nodes[vertex] = NodeState(
            vertex=vertex, neighbors=neighbors, edge_weights=weights
        )
    return nodes


class FastNetwork(Engine):
    """Batched synchronous message-passing kernel over a weighted graph.

    Drop-in replacement for :class:`~repro.simulator.network.SyncNetwork`
    (same constructor signature, same :class:`~repro.simulator.engine.Engine`
    contract, same error types and messages).

    Args:
        graph: connected undirected :class:`networkx.Graph` whose edges
            carry a ``weight`` attribute.
        bandwidth: the ``b`` of CONGEST(b log n); maximum number of words
            per directed edge per round.
        validate: run input validation (disable only in tight loops where
            the caller has already validated the graph).
    """

    __slots__ = (
        "graph",
        "bandwidth",
        "metrics",
        "_n",
        "_m",
        "_vertex_of",
        "_index",
        "_nodes",
        "_indptr",
        "_nbr_vertex",
        "_nbr_weight",
        "_edge_info",
        "_edge_packed",
        "_band_span",
        "_gen_base",
        "_generation",
        "_buckets",
        "_touched",
        "_round_value",
    )

    def __init__(self, graph: nx.Graph, bandwidth: int = 1, validate: bool = True) -> None:
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        if validate:
            validate_weighted_graph(graph, require_unique_weights=False)
        self.graph = graph
        self.bandwidth = bandwidth
        self.metrics = Metrics()
        self._n = graph.number_of_nodes()
        self._m = graph.number_of_edges()

        order = sorted(graph.nodes())
        self._vertex_of: List[VertexId] = order
        self._index: Dict[VertexId, int] = {vertex: i for i, vertex in enumerate(order)}
        self._nodes: Dict[VertexId, NodeState] = _node_states(graph, order)
        self._buckets: List[List[FastMessage]] = [[] for _ in order]

        # CSR-style adjacency: vertex i's neighbours occupy the flat range
        # [_indptr[i], _indptr[i+1]); that range position is the directed
        # edge's slot in the bandwidth-accounting array.
        indptr: List[int] = [0]
        nbr_vertex: List[VertexId] = []
        nbr_weight: List[float] = []
        for vertex in order:
            node = self._nodes[vertex]
            nbr_vertex.extend(node.neighbors)
            nbr_weight.extend(node.edge_weights[u] for u in node.neighbors)
            indptr.append(indptr[-1] + len(node.neighbors))
        self._indptr = indptr
        self._nbr_vertex = nbr_vertex
        self._nbr_weight = nbr_weight

        # One lookup per send: (sender, receiver) -> (slot, receiver's
        # bucket object, receiver's dense index).  Buckets are never
        # replaced (delivery copies and clears them in place), so the
        # bucket aliases stay valid for the lifetime of the engine.
        index = self._index
        buckets = self._buckets
        edge_info: Dict[Tuple[VertexId, VertexId], Tuple[int, List[FastMessage], int]] = {}
        for i, vertex in enumerate(order):
            base = indptr[i]
            for j, neighbor in enumerate(self._nodes[vertex].neighbors):
                receiver_index = index[neighbor]
                edge_info[(vertex, neighbor)] = (
                    base + j,
                    buckets[receiver_index],
                    receiver_index,
                )
        self._edge_info = edge_info

        # Bandwidth accounting: one flat entry per directed edge packing
        # ``generation * span + words_used``; see the module docstring.
        self._band_span = bandwidth + 1
        self._edge_packed: List[int] = [0] * indptr[-1]
        self._generation = 0
        self._gen_base = 0

        self._touched: List[int] = []
        self._round_value = 0

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices (cached; the graph never changes mid-run)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (cached; the graph never changes mid-run)."""
        return self._m

    def vertices(self) -> Iterable[VertexId]:
        """Iterate over vertex identities in sorted order."""
        return self._nodes.keys()

    def node(self, vertex: VertexId) -> NodeState:
        """Return the :class:`NodeState` of ``vertex``."""
        try:
            return self._nodes[vertex]
        except KeyError as exc:
            raise SimulationError(f"unknown vertex {vertex}") from exc

    def _slot(self, sender: VertexId, receiver: VertexId) -> int:
        """Flat slot of the directed edge ``sender -> receiver``, or -1."""
        info = self._edge_info.get((sender, receiver))
        return -1 if info is None else info[0]

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""
        slot = self._slot(u, v)
        if slot < 0:
            raise SimulationError(f"no edge between {u} and {v}")
        return self._nbr_weight[slot]

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Queue a message for delivery at the start of the next round.

        Enforces that the edge exists and that the cumulative number of
        words sent over the directed edge ``sender -> receiver`` in the
        current round stays within the bandwidth.
        """
        # Hot path: one table lookup, generation-packed bandwidth
        # counters, and a raw tuple.__new__ (the generated NamedTuple
        # constructor adds a Python frame per message).
        try:
            slot, bucket, receiver_index = self._edge_info[sender, receiver]
        except (KeyError, TypeError):
            raise SimulationError(
                f"cannot send {kind!r}: ({sender}, {receiver}) is not an edge of the graph"
            ) from None
        if words < 1:
            raise ValueError(f"a message must carry at least one word, got {words}")
        base = self._gen_base
        packed = self._edge_packed
        value = packed[slot]
        used = value - base if value > base else 0
        if used + words > self.bandwidth:
            raise BandwidthExceededError(
                f"edge {sender}->{receiver}: {used} word(s) already sent this round, "
                f"adding {words} exceeds bandwidth {self.bandwidth} (message kind {kind!r})"
            )
        packed[slot] = base + used + words
        if not bucket:
            self._touched.append(receiver_index)
        bucket.append(
            tuple.__new__(
                FastMessage, (sender, receiver, kind, payload, words, self._round_value)
            )
        )

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round over the directed edge ``sender -> receiver``."""
        slot = self._slot(sender, receiver)
        if slot < 0:
            return self.bandwidth
        base = self._gen_base
        value = self._edge_packed[slot]
        used = value - base if value > base else 0
        return self.bandwidth - used

    def pending_count(self) -> int:
        """Number of messages queued for delivery in the next round."""
        buckets = self._buckets
        return sum(len(buckets[i]) for i in self._touched)

    def deliver_round(self) -> Dict[VertexId, List[FastMessage]]:
        """Advance the clock by one round and deliver all queued messages.

        Same contract as the reference kernel: receivers appear in
        first-message order, per-receiver lists preserve send order, and
        counters are charged at delivery time -- here in bulk updates
        per round (C-level counting) rather than one call per message.
        """
        metrics = self.metrics
        metrics.record_round()
        self._round_value = metrics.rounds
        self._generation += 1
        self._gen_base = self._generation * self._band_span

        inboxes: Dict[VertexId, List[FastMessage]] = {}
        buckets = self._buckets
        vertex_of = self._vertex_of
        kind_counter = metrics.messages_by_kind
        message_total = 0
        word_total = 0
        for receiver_index in self._touched:
            bucket = buckets[receiver_index]
            inboxes[vertex_of[receiver_index]] = bucket[:]
            message_total += len(bucket)
            word_total += sum(map(_WORDS_OF, bucket))
            kind_counter.update(map(_KIND_OF, bucket))
            # Clear in place: the _edge_info bucket aliases must stay
            # attached to these exact list objects.
            bucket.clear()
        self._touched = []

        metrics.record_bulk(message_total, word_total)
        return inboxes

    def idle_rounds(self, count: int) -> None:
        """Advance the clock by ``count`` silent rounds (no messages)."""
        if count < 0:
            raise SimulationError(f"cannot advance the clock by {count} rounds")
        if self._touched:
            raise SimulationError("cannot declare idle rounds while messages are pending")
        for _ in range(count):
            self.metrics.record_round()
        self._round_value = self.metrics.rounds
        self._generation += count
        self._gen_base = self._generation * self._band_span


register_engine("fast", FastNetwork)


# ---------------------------------------------------------------------- #
# the batched multi-scenario arena
# ---------------------------------------------------------------------- #


class _ArenaPiece(NamedTuple):
    """One scenario graph's share of the arena's dense index space.

    ``slot_base`` is the graph's offset into the arena-wide flat edge
    arrays: directed edge ``j`` of this graph lives at arena slot
    ``slot_base + j``.  ``flat`` precomputes, once per graph, everything
    a lane's per-``(sender, receiver)`` routing table needs except the
    lane-local inbox buckets.
    """

    graph: nx.Graph
    order: List[VertexId]
    index: Dict[VertexId, int]
    nodes: Dict[VertexId, NodeState]
    flat: List[Tuple[VertexId, VertexId, int, int]]
    slot_base: int
    slot_count: int
    edge_count: int


class _ArenaLane(FastNetwork):
    """A :class:`FastNetwork` view over one scenario of a :class:`BatchedEngine`.

    Identical kernel semantics (it *is* a FastNetwork: every method but
    construction is inherited); only the expensive construction work is
    replaced by slicing the arena's shared, immutable structures.  A
    lane is reused across the cells of a batched sweep that simulate the
    same (graph, bandwidth): :meth:`_reset` restores the
    freshly-constructed state in O(n) without rebuilding the adjacency,
    the routing table or the node states.
    """

    __slots__ = ()

    def __init__(
        self, piece: _ArenaPiece, bandwidth: int, counters: List[int], arena: "BatchedEngine"
    ) -> None:
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        self.graph = piece.graph
        self.bandwidth = bandwidth
        self.metrics = Metrics()
        self._n = len(piece.order)
        self._m = piece.edge_count
        self._vertex_of = piece.order
        self._index = piece.index
        self._nodes = piece.nodes
        self._indptr = arena._indptr
        # Neighbor *identities* are served by the NodeStates; only the
        # slot-indexed weight array is consulted post-construction (the
        # edge_weight contract), so the arena does not build a
        # neighbor-identity array at all.
        self._nbr_vertex = ()
        self._nbr_weight = arena._nbr_weight
        buckets: List[List[FastMessage]] = [[] for _ in piece.order]
        self._buckets = buckets
        self._edge_info = {
            (sender, receiver): (slot, buckets[receiver_index], receiver_index)
            for sender, receiver, slot, receiver_index in piece.flat
        }
        self._band_span = bandwidth + 1
        self._edge_packed = counters
        self._generation = 0
        self._gen_base = 0
        self._touched = []
        self._round_value = 0

    def _reset(self) -> None:
        """Restore freshly-constructed state (start of a new cell).

        Bandwidth counters are invalidated by bumping the generation
        (every stored value goes stale, exactly as between rounds), the
        per-vertex scratch memories are dropped, and any messages a
        crashed previous run left in flight are discarded.
        """
        self.metrics = Metrics()
        self._round_value = 0
        self._generation += 1
        self._gen_base = self._generation * self._band_span
        if self._touched:
            for receiver_index in self._touched:
                self._buckets[receiver_index].clear()
            self._touched = []
        for node in self._nodes.values():
            node.memory.clear()


class BatchedEngine:
    """Many small scenario graphs packed into one dense index space.

    The arena maps every directed edge of a batch to one dense global
    slot in a single construction pass: slot-indexed edge weights live
    in one arena-wide flat array (serving the ``edge_weight`` contract
    of every lane), and every directed edge owns one slot in a shared
    flat bandwidth-counter array (one array per bandwidth value in use;
    scenarios occupy disjoint slot ranges, and each lane invalidates its
    range by generation stamping, so no per-cell zeroing is needed).
    Neighbor identities are carried by the per-graph
    :class:`~repro.simulator.node.NodeState` tables, shared across the
    lanes of a graph.

    :meth:`lane` vends a :class:`FastNetwork`-compatible engine for one
    scenario: the batched executor steps through a sweep's cells
    re-using these lanes, so per-cell cost shrinks to the simulation
    itself -- graph adjacency, node states, routing tables and counter
    storage are built once per batch instead of once per cell.  Lanes
    are real ``FastNetwork`` instances, so a batched cell reports
    byte-identical rounds, messages and MST edges to a standalone run
    (``tests/test_batched.py`` pins this down).

    Args:
        graphs: the scenario graphs to pack (deduplicated by identity).
        validate: validate each distinct graph once at packing time.
    """

    def __init__(self, graphs: Iterable[nx.Graph], validate: bool = True) -> None:
        self._pieces: Dict[int, _ArenaPiece] = {}
        self._indptr: List[int] = [0]
        self._nbr_weight: List[float] = []
        self._counters: Dict[int, List[int]] = {}
        self._lanes: Dict[Tuple[int, int], _ArenaLane] = {}
        # Array-kernel lane state (allocated lazily on the first
        # array_lane() call; see repro.simulator.array_network):
        # per-bandwidth arena-wide numpy counter arrays and one shared
        # triple of numeric message-column arrays that lanes slice.
        self._array_lanes: Dict[Tuple[int, int], FastNetwork] = {}
        self._array_counters: Dict[int, Any] = {}
        self._array_columns: Any = None
        for graph in graphs:
            self.add_graph(graph, validate=validate)

    # -- packing ---------------------------------------------------------

    def add_graph(self, graph: nx.Graph, validate: bool = True) -> None:
        """Pack one scenario graph into the arena (idempotent by identity)."""
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        if id(graph) in self._pieces:
            return
        if validate:
            validate_weighted_graph(graph, require_unique_weights=False)
        indptr = self._indptr
        nbr_weight = self._nbr_weight
        slot_base = indptr[-1]
        order = sorted(graph.nodes())
        index = {vertex: i for i, vertex in enumerate(order)}
        nodes = _node_states(graph, order)
        flat: List[Tuple[VertexId, VertexId, int, int]] = []
        for vertex in order:
            node = nodes[vertex]
            base = indptr[-1]
            for j, neighbor in enumerate(node.neighbors):
                flat.append((vertex, neighbor, base + j, index[neighbor]))
            nbr_weight.extend(node.edge_weights[u] for u in node.neighbors)
            indptr.append(base + len(node.neighbors))
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        self._pieces[id(graph)] = _ArenaPiece(
            graph=graph,
            order=order,
            index=index,
            nodes=nodes,
            flat=flat,
            slot_base=slot_base,
            slot_count=indptr[-1] - slot_base,
            edge_count=graph.number_of_edges(),
        )
        # Already-allocated counter arrays must cover the new slots.
        for counters in self._counters.values():
            counters.extend([0] * (indptr[-1] - len(counters)))

    # -- queries ---------------------------------------------------------

    @property
    def graph_count(self) -> int:
        """Number of distinct scenario graphs packed into the arena."""
        return len(self._pieces)

    @property
    def total_vertices(self) -> int:
        """Vertices across all packed scenarios (the dense index space)."""
        return sum(len(piece.order) for piece in self._pieces.values())

    @property
    def total_slots(self) -> int:
        """Directed-edge slots across all packed scenarios."""
        return self._indptr[-1]

    def has_graph(self, graph: nx.Graph) -> bool:
        """True when ``graph`` (by identity) is packed into the arena."""
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        return id(graph) in self._pieces

    # -- lanes -----------------------------------------------------------

    def lane(self, graph: nx.Graph, bandwidth: int = 1) -> FastNetwork:
        """A fresh-state :class:`FastNetwork` for one scenario of the batch.

        The lane for a given (graph, bandwidth) is constructed once and
        reset on every subsequent vend; callers must not interleave two
        simulations on the same lane.
        """
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        piece = self._pieces.get(id(graph))
        if piece is None:
            raise SimulationError(
                "graph is not part of this batch; pack it with add_graph() first"
            )
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        key = (id(graph), bandwidth)
        lane = self._lanes.get(key)
        if lane is None:
            counters = self._counters.get(bandwidth)
            if counters is None:
                counters = [0] * self.total_slots
                self._counters[bandwidth] = counters
            lane = _ArenaLane(piece, bandwidth, counters, self)
            self._lanes[key] = lane
        lane._reset()
        return lane

    def array_lane(self, graph: nx.Graph, bandwidth: int = 1):
        """A fresh-state array-kernel engine for one scenario of the batch.

        The numpy counterpart of :meth:`lane`: the vended engine is a
        real :class:`~repro.simulator.array_network.ArrayNetwork` whose
        bandwidth counters and numeric message columns are slices of
        arena-wide arrays (disjoint per scenario, shared per batch).
        Requires numpy; raises
        :class:`~repro.exceptions.ConfigurationError` without it.
        """
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        piece = self._pieces.get(id(graph))
        if piece is None:
            raise SimulationError(
                "graph is not part of this batch; pack it with add_graph() first"
            )
        # repro: allow[DET204] arena keyed by live graph identity, never emitted
        key = (id(graph), bandwidth)
        lane = self._array_lanes.get(key)
        if lane is None:
            from .array_network import make_arena_lane

            lane = make_arena_lane(self, piece, bandwidth)
            self._array_lanes[key] = lane
        lane._reset()
        return lane
