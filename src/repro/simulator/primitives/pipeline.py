"""Pipelined upcast and downcast over a rooted tree.

These are the two workhorses of the paper's second phase:

* **Pipelined upcast** ("pipelined convergecast" in the paper): every
  vertex holds a set of keyed items (e.g. "the lightest edge leaving
  coarse fragment ``F_hat`` that my base fragment found"); the root must
  learn, for every key, the minimum item.  Intermediate vertices filter
  -- they forward only the lightest item per key -- and stream items in
  increasing key order, which is what makes the cost
  ``O(height + #keys / b)`` rounds and ``O(height * #keys)`` messages
  instead of ``height * #keys`` rounds (Peleg, Ch. 3).

* **Pipelined downcast**: the root holds a batch of point-to-point
  messages, each addressed to a target vertex; messages are routed along
  the unique root-to-target path using the interval labels, with at most
  ``b`` words per edge per round.  Cost ``O(height + #messages / b)``
  rounds and ``O(sum of path lengths)`` messages.

Conventions: one keyed item / one routed message occupies one machine
word (a constant-size record), matching the paper's accounting where one
such record fits in one ``O(log n)``-bit message.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol
from .intervals import IntervalRouting
from .trees import RootedForest

Key = Hashable
NextHop = Callable[[VertexId, VertexId], VertexId]


class _PipelinedUpcastProtocol(NodeProtocol):
    """Ordered, filtered streaming of keyed items towards the roots."""

    name = "upcast"

    def __init__(
        self,
        network: Engine,
        forest: RootedForest,
        items: Dict[VertexId, Dict[Key, Any]],
    ) -> None:
        super().__init__(forest.vertices)
        for child, parent in forest.edges():
            if not network.has_edge(child, parent):
                raise ProtocolError(
                    f"pipelined_upcast: tree edge ({child}, {parent}) is not a graph edge"
                )
        self._forest = forest
        self._best: Dict[VertexId, Dict[Key, Any]] = {
            v: dict(items.get(v, {})) for v in self.participants
        }
        self._emitted: Dict[VertexId, set] = {v: set() for v in self.participants}
        self._last_emitted: Dict[VertexId, Optional[Key]] = {v: None for v in self.participants}
        self._child_last: Dict[VertexId, Dict[VertexId, Key]] = {v: {} for v in self.participants}
        self._child_done: Dict[VertexId, set] = {v: set() for v in self.participants}
        self._done_sent: set = set()

    # -------------------------------------------------------------- #

    def _absorb(self, vertex: VertexId, key: Key, value: Any) -> None:
        best = self._best[vertex]
        if key not in best or value < best[key]:
            best[key] = value

    def _eligible(self, vertex: VertexId, key: Key) -> bool:
        """True when no child can still contribute an item with this key."""
        for child in self._forest.children[vertex]:
            if child in self._child_done[vertex]:
                continue
            last = self._child_last[vertex].get(child)
            if last is None or last < key:
                return False
        return True

    def _all_children_done(self, vertex: VertexId) -> bool:
        return len(self._child_done[vertex]) == len(self._forest.children[vertex])

    def _pending_keys(self, vertex: VertexId) -> List[Key]:
        emitted = self._emitted[vertex]
        return sorted(key for key in self._best[vertex] if key not in emitted)

    def _step(self, vertex: VertexId, api: ProtocolApi) -> None:
        parent = self._forest.parent[vertex]
        if parent is None:
            if self._all_children_done(vertex):
                api.finish(vertex)
            return
        if vertex in self._done_sent:
            return
        budget = api.bandwidth
        while budget > 0:
            pending = self._pending_keys(vertex)
            if not pending:
                break
            key = pending[0]
            if not self._eligible(vertex, key):
                break
            api.send(
                vertex, parent, "item", payload=(key, self._best[vertex][key]), words=1
            )
            self._emitted[vertex].add(key)
            self._last_emitted[vertex] = key
            budget -= 1
        if (
            budget > 0
            and not self._pending_keys(vertex)
            and self._all_children_done(vertex)
        ):
            api.send(vertex, parent, "done", words=1)
            self._done_sent.add(vertex)
            api.finish(vertex)

    # -------------------------------------------------------------- #

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        self._step(vertex, api)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            if message.kind.endswith(":item"):
                key, value = message.payload
                previous = self._child_last[vertex].get(message.sender)
                if previous is not None and key <= previous:
                    raise ProtocolError(
                        f"child {message.sender} sent keys out of order ({key!r} after {previous!r})"
                    )
                self._child_last[vertex][message.sender] = key
                self._absorb(vertex, key, value)
            elif message.kind.endswith(":done"):
                self._child_done[vertex].add(message.sender)
        self._step(vertex, api)

    def result(self, network: Engine) -> Dict[VertexId, Dict[Key, Any]]:
        return {root: dict(self._best[root]) for root in self._forest.roots}


def pipelined_upcast(
    network: Engine,
    tree: RootedForest,
    items: Dict[VertexId, Dict[Key, Any]],
) -> Dict[VertexId, Dict[Key, Any]]:
    """Upcast keyed items to the root(s) of ``tree``, keeping the minimum per key.

    Args:
        network: the simulated network.
        tree: rooted tree (or forest) whose edges are graph edges.
        items: per-vertex mapping ``key -> value``; values must be
            totally ordered (tuples work well) and the minimum per key is
            what reaches the root.

    Returns:
        For every root, the mapping ``key -> minimum value over its tree``.
    """
    protocol = _PipelinedUpcastProtocol(network, tree, items)
    return run_protocol(network, protocol)


class _PipelinedDowncastProtocol(NodeProtocol):
    """Route a batch of root-originated messages to their target vertices."""

    name = "downcast"

    def __init__(
        self,
        network: Engine,
        tree: RootedForest,
        payloads: List[Tuple[VertexId, Any]],
        next_hop: NextHop,
    ) -> None:
        super().__init__(tree.vertices)
        if len(tree.roots) != 1:
            raise ProtocolError("pipelined_downcast requires a single-rooted tree")
        for child, parent in tree.edges():
            if not network.has_edge(child, parent):
                raise ProtocolError(
                    f"pipelined_downcast: tree edge ({child}, {parent}) is not a graph edge"
                )
        unknown = [target for target, _ in payloads if target not in tree.parent]
        if unknown:
            raise ProtocolError(
                f"pipelined_downcast: {len(unknown)} targets are not tree vertices, e.g. {unknown[0]}"
            )
        self._tree = tree
        self._root = tree.roots[0]
        self._payloads = list(payloads)
        self._next_hop = next_hop
        self._queues: Dict[VertexId, Dict[VertexId, deque]] = {
            v: {} for v in self.participants
        }
        self._delivered: Dict[VertexId, List[Any]] = {}

    def _enqueue(self, vertex: VertexId, target: VertexId, payload: Any) -> None:
        if target == vertex:
            self._delivered.setdefault(vertex, []).append(payload)
            return
        child = self._next_hop(vertex, target)
        self._queues[vertex].setdefault(child, deque()).append((target, payload))

    def _pump(self, vertex: VertexId, api: ProtocolApi) -> None:
        queues = self._queues[vertex]
        for child, queue in queues.items():
            budget = api.bandwidth
            while queue and budget > 0:
                target, payload = queue.popleft()
                api.send(vertex, child, "route", payload=(target, payload), words=1)
                budget -= 1
        if all(not queue for queue in queues.values()):
            api.finish(vertex)
        else:
            api.unfinish(vertex)

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        if vertex == self._root:
            for target, payload in self._payloads:
                self._enqueue(vertex, target, payload)
        self._pump(vertex, api)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            if not message.kind.endswith(":route"):
                continue
            target, payload = message.payload
            self._enqueue(vertex, target, payload)
        self._pump(vertex, api)

    def result(self, network: Engine) -> Dict[VertexId, List[Any]]:
        return {target: list(values) for target, values in self._delivered.items()}


def pipelined_downcast(
    network: Engine,
    tree: RootedForest,
    payloads: List[Tuple[VertexId, Any]],
    routing: Optional[IntervalRouting] = None,
    next_hop: Optional[NextHop] = None,
) -> Dict[VertexId, List[Any]]:
    """Deliver ``payloads`` (a list of ``(target, payload)`` pairs) from the root.

    Routing decisions use either an :class:`IntervalRouting` (the paper's
    mechanism) or an explicit ``next_hop`` callable.  Returns the payloads
    received by each target.
    """
    if routing is None and next_hop is None:
        raise ProtocolError("pipelined_downcast needs either an IntervalRouting or a next_hop")
    hop = next_hop if next_hop is not None else routing.next_hop
    protocol = _PipelinedDowncastProtocol(network, tree, payloads, hop)
    return run_protocol(network, protocol)
