"""Distributed BFS tree construction.

The paper's algorithm starts by building an auxiliary BFS tree ``tau`` of
the whole graph rooted at a vertex ``rt`` -- O(D) rounds and O(|E|)
messages.  This module implements the textbook synchronous BFS flood as a
real per-node protocol: the root announces itself, every vertex joins the
tree the first round a wave reaches it (breaking ties towards the
smallest sender identity so the construction is deterministic), and then
propagates the wave to its other neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol
from .trees import RootedForest


@dataclass
class BFSTree:
    """Result of a BFS construction: a spanning tree with hop distances."""

    root: VertexId
    forest: RootedForest
    distance: Dict[VertexId, int]

    @property
    def depth(self) -> int:
        """Eccentricity of the root (<= hop diameter D of the graph)."""
        return self.forest.height

    def parent_of(self, vertex: VertexId) -> Optional[VertexId]:
        """Parent of ``vertex`` in the tree (``None`` for the root)."""
        return self.forest.parent[vertex]


class _BFSProtocol(NodeProtocol):
    """Synchronous BFS flood from a designated root."""

    name = "bfs"

    def __init__(self, network: Engine, root: VertexId) -> None:
        super().__init__(network.vertices())
        if root not in network.graph:
            raise ProtocolError(f"BFS root {root} is not a vertex of the graph")
        self.root = root
        self._parent: Dict[VertexId, Optional[VertexId]] = {}
        self._distance: Dict[VertexId, int] = {}

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        if vertex != self.root:
            return
        self._parent[vertex] = None
        self._distance[vertex] = 0
        api.send_to_neighbors(vertex, "explore", payload=(0,), words=1)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        if vertex in self._parent:
            # Already in the tree; late explore waves carry no new information.
            api.finish(vertex)
            return
        explores = [message for message in inbox if message.kind.endswith(":explore")]
        if not explores:
            return
        chosen = min(explores, key=lambda message: message.sender)
        self._parent[vertex] = chosen.sender
        self._distance[vertex] = int(chosen.payload[0]) + 1
        api.send_to_neighbors(
            vertex,
            "explore",
            payload=(self._distance[vertex],),
            words=1,
            exclude=chosen.sender,
        )
        api.finish(vertex)

    def result(self, network: Engine) -> BFSTree:
        if len(self._parent) != len(self.participants):
            missing = set(self.participants) - set(self._parent)
            raise ProtocolError(
                f"BFS did not reach {len(missing)} vertices (graph disconnected?), e.g. {next(iter(missing))}"
            )
        forest = RootedForest(parent=dict(self._parent))
        return BFSTree(root=self.root, forest=forest, distance=dict(self._distance))


def build_bfs_tree(network: Engine, root: Optional[VertexId] = None) -> BFSTree:
    """Build a BFS tree of the whole communication graph.

    Args:
        network: the simulated network.
        root: the root vertex ``rt``; defaults to the smallest identity,
            which is how the examples pick a canonical root.

    Returns:
        The constructed :class:`BFSTree`.  Cost: at most ``D + 1`` rounds
        and at most ``2 |E|`` messages, charged to ``network``.
    """
    chosen_root = root if root is not None else min(network.vertices())
    protocol = _BFSProtocol(network, chosen_root)
    return run_protocol(network, protocol)
