"""Rooted forests: the shared tree representation used by the primitives.

A :class:`RootedForest` is a set of vertex-disjoint rooted trees given by
parent pointers.  BFS trees, MST fragment trees and the auxiliary tree
``tau`` of the paper are all instances; the broadcast, convergecast and
pipelining primitives operate on any of them.  The structure is validated
eagerly (no cycles, parents are present, edges are consistent) because a
malformed forest would silently corrupt cost accounting.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ...exceptions import ProtocolError
from ...types import VertexId


@dataclass
class RootedForest:
    """A forest described by parent pointers.

    Attributes:
        parent: maps every vertex of the forest to its parent, or ``None``
            for roots.  The key set defines the vertex set of the forest.
    """

    parent: Dict[VertexId, Optional[VertexId]]
    children: Dict[VertexId, Tuple[VertexId, ...]] = field(init=False)
    roots: Tuple[VertexId, ...] = field(init=False)
    depth: Dict[VertexId, int] = field(init=False)

    def __post_init__(self) -> None:
        if not self.parent:
            raise ProtocolError("a rooted forest needs at least one vertex")
        children: Dict[VertexId, List[VertexId]] = defaultdict(list)
        roots: List[VertexId] = []
        for vertex, parent in self.parent.items():
            if parent is None:
                roots.append(vertex)
                continue
            if parent not in self.parent:
                raise ProtocolError(
                    f"vertex {vertex} has parent {parent} which is not in the forest"
                )
            if parent == vertex:
                raise ProtocolError(f"vertex {vertex} is its own parent")
            children[parent].append(vertex)
        if not roots:
            raise ProtocolError("forest has no roots (parent pointers form a cycle)")
        self.children = {v: tuple(sorted(children.get(v, ()))) for v in self.parent}
        self.roots = tuple(sorted(roots))

        # Depth by BFS from the roots; detects unreachable vertices (cycles).
        depth: Dict[VertexId, int] = {}
        queue: deque[VertexId] = deque()
        for root in self.roots:
            depth[root] = 0
            queue.append(root)
        while queue:
            vertex = queue.popleft()
            for child in self.children[vertex]:
                depth[child] = depth[vertex] + 1
                queue.append(child)
        if len(depth) != len(self.parent):
            missing = set(self.parent) - set(depth)
            raise ProtocolError(
                f"{len(missing)} vertices unreachable from any root (cycle?), e.g. {next(iter(missing))}"
            )
        self.depth = depth

    # ------------------------------------------------------------------ #

    @property
    def vertices(self) -> Tuple[VertexId, ...]:
        """Vertices of the forest in sorted order."""
        return tuple(sorted(self.parent))

    @property
    def size(self) -> int:
        """Number of vertices in the forest."""
        return len(self.parent)

    @property
    def height(self) -> int:
        """Maximum depth over all vertices (0 for a forest of singletons)."""
        return max(self.depth.values())

    def is_root(self, vertex: VertexId) -> bool:
        """True when ``vertex`` is a root of its tree."""
        return self.parent[vertex] is None

    def is_leaf(self, vertex: VertexId) -> bool:
        """True when ``vertex`` has no children."""
        return not self.children[vertex]

    def root_of(self, vertex: VertexId) -> VertexId:
        """Root of the tree containing ``vertex``."""
        current = vertex
        while self.parent[current] is not None:
            current = self.parent[current]
        return current

    def tree_vertices(self, root: VertexId) -> List[VertexId]:
        """All vertices of the tree rooted at ``root``, in BFS order."""
        if root not in self.parent or self.parent[root] is not None:
            raise ProtocolError(f"{root} is not a root of this forest")
        order: List[VertexId] = []
        queue: deque[VertexId] = deque([root])
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            queue.extend(self.children[vertex])
        return order

    def path_to_root(self, vertex: VertexId) -> List[VertexId]:
        """Vertices on the path from ``vertex`` up to (and including) its root."""
        path = [vertex]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def edges(self) -> List[Tuple[VertexId, VertexId]]:
        """Tree edges as (child, parent) pairs."""
        return [(v, p) for v, p in self.parent.items() if p is not None]

    def bottom_up_order(self) -> List[VertexId]:
        """Vertices sorted by decreasing depth (children before parents)."""
        return sorted(self.parent, key=lambda v: -self.depth[v])

    def top_down_order(self) -> List[VertexId]:
        """Vertices sorted by increasing depth (parents before children)."""
        return sorted(self.parent, key=lambda v: self.depth[v])

    @staticmethod
    def single_tree(parent: Dict[VertexId, Optional[VertexId]]) -> "RootedForest":
        """Build a forest and check that it consists of exactly one tree."""
        forest = RootedForest(parent=dict(parent))
        if len(forest.roots) != 1:
            raise ProtocolError(f"expected a single tree, found {len(forest.roots)} roots")
        return forest

    @staticmethod
    def from_parent_pairs(pairs: Iterable[Tuple[VertexId, Optional[VertexId]]]) -> "RootedForest":
        """Build a forest from (vertex, parent-or-None) pairs."""
        return RootedForest(parent=dict(pairs))
