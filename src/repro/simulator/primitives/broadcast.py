"""Broadcast over a rooted forest.

Each root holds a value; every vertex of its tree learns it.  Running the
broadcast over an MST forest models the paper's "every root vertex of a
base fragment broadcasts the identity of its new fragment to all vertices
of the fragment" step: O(max fragment diameter) rounds and O(n) messages,
because all trees of the forest run in parallel.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol
from .trees import RootedForest


class _ForestBroadcastProtocol(NodeProtocol):
    """Top-down dissemination of one word per tree of a rooted forest."""

    name = "bcast"

    def __init__(
        self,
        network: Engine,
        forest: RootedForest,
        root_values: Dict[VertexId, Any],
    ) -> None:
        super().__init__(forest.vertices)
        missing = [root for root in forest.roots if root not in root_values]
        if missing:
            raise ProtocolError(
                f"forest_broadcast: {len(missing)} roots have no value to broadcast, e.g. {missing[0]}"
            )
        for child, parent in forest.edges():
            if not network.has_edge(child, parent):
                raise ProtocolError(
                    f"forest_broadcast: tree edge ({child}, {parent}) is not a graph edge"
                )
        self._forest = forest
        self._root_values = root_values
        self._value: Dict[VertexId, Any] = {}

    def _forward(self, vertex: VertexId, api: ProtocolApi) -> None:
        for child in self._forest.children[vertex]:
            api.send(vertex, child, "value", payload=(self._value[vertex],), words=1)

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        if not self._forest.is_root(vertex):
            return
        self._value[vertex] = self._root_values[vertex]
        self._forward(vertex, api)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        if vertex in self._value:
            api.finish(vertex)
            return
        values = [message for message in inbox if message.kind.endswith(":value")]
        if not values:
            return
        if len(values) > 1:
            raise ProtocolError(f"vertex {vertex} received {len(values)} broadcast values")
        self._value[vertex] = values[0].payload[0]
        self._forward(vertex, api)
        api.finish(vertex)

    def result(self, network: Engine) -> Dict[VertexId, Any]:
        if len(self._value) != len(self.participants):
            missing = set(self.participants) - set(self._value)
            raise ProtocolError(f"broadcast did not reach {len(missing)} vertices")
        return dict(self._value)


def forest_broadcast(
    network: Engine, forest: RootedForest, root_values: Dict[VertexId, Any]
) -> Dict[VertexId, Any]:
    """Broadcast ``root_values[r]`` from every root ``r`` to its whole tree.

    Returns the value learnt by each vertex of the forest.  Cost: at most
    ``height(forest) + 1`` rounds and exactly ``size(forest) - #roots``
    messages (all trees proceed in parallel).
    """
    protocol = _ForestBroadcastProtocol(network, forest, root_values)
    return run_protocol(network, protocol)
