"""Classical CONGEST building blocks implemented as per-node protocols.

These are the primitives the paper composes (see Peleg, *Distributed
Computing: A Locality-Sensitive Approach*, chapters 3-5): BFS tree
construction, broadcast and convergecast over rooted forests, pipelined
upcast and downcast over a BFS tree, subtree interval labelling for
routing, and the one-round exchange of values between graph neighbours.

Every primitive charges its communication through an
:class:`~repro.simulator.engine.Engine` kernel (the reference
:class:`~repro.simulator.network.SyncNetwork` or the batched
:class:`~repro.simulator.fast_network.FastNetwork`), so the round and
message totals of an algorithm are the sums of what its primitives
actually did.
"""

from .bfs import BFSTree, build_bfs_tree
from .broadcast import forest_broadcast
from .convergecast import ConvergecastResult, forest_convergecast
from .flooding import flood_value
from .intervals import assign_intervals, IntervalRouting
from .neighbor_exchange import neighbor_exchange
from .pipeline import pipelined_downcast, pipelined_upcast
from .trees import RootedForest

__all__ = [
    "RootedForest",
    "BFSTree",
    "build_bfs_tree",
    "forest_broadcast",
    "ConvergecastResult",
    "forest_convergecast",
    "neighbor_exchange",
    "flood_value",
    "IntervalRouting",
    "assign_intervals",
    "pipelined_downcast",
    "pipelined_upcast",
]
