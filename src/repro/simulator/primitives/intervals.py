"""Subtree interval labelling and interval-based routing on a tree.

The paper routes messages from the BFS root to the roots of base
fragments by giving every vertex ``v`` of the auxiliary tree ``tau`` an
interval ``I(v)`` such that intervals of different branches are disjoint
and the interval of an ancestor contains the interval of each of its
descendants.  A vertex then forwards a message addressed to position
``p`` to the unique child whose interval contains ``p``.

The labelling is computed distributively exactly as in the paper: a
convergecast establishes subtree sizes, then a top-down wave hands every
child the first position of its block (one word per tree edge -- the
child can reconstruct its interval because it knows its own subtree
size).  Total cost: O(height) rounds and O(n) messages.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol
from .convergecast import forest_convergecast
from .trees import RootedForest


@dataclass
class IntervalRouting:
    """Interval labels of a rooted tree plus the routing rule they induce."""

    forest: RootedForest
    intervals: Dict[VertexId, Tuple[int, int]]

    def position(self, vertex: VertexId) -> int:
        """Routing position of ``vertex`` (the first element of its interval)."""
        return self.intervals[vertex][0]

    def contains(self, ancestor: VertexId, descendant: VertexId) -> bool:
        """True when the interval of ``ancestor`` contains that of ``descendant``."""
        alo, ahi = self.intervals[ancestor]
        dlo, dhi = self.intervals[descendant]
        return alo <= dlo and dhi <= ahi

    def next_hop(self, vertex: VertexId, target: VertexId) -> VertexId:
        """Child of ``vertex`` on the tree path towards ``target``.

        This decision uses only information the vertex holds locally in
        the distributed implementation: the intervals of its children and
        the position of the target (which travels with the message).
        """
        if vertex == target:
            raise ProtocolError(f"vertex {vertex} is the target; no next hop exists")
        goal = self.position(target)
        for child in self.forest.children[vertex]:
            lo, hi = self.intervals[child]
            if lo <= goal <= hi:
                return child
        raise ProtocolError(
            f"target {target} (position {goal}) is not in the subtree of vertex {vertex}"
        )


class _IntervalAssignProtocol(NodeProtocol):
    """Top-down wave assigning each vertex the start of its interval block."""

    name = "ival"

    def __init__(
        self,
        network: Engine,
        forest: RootedForest,
        subtree_size: Dict[VertexId, int],
    ) -> None:
        super().__init__(forest.vertices)
        self._forest = forest
        self._size = subtree_size
        self._interval: Dict[VertexId, Tuple[int, int]] = {}

    def _assign_children(self, vertex: VertexId, api: ProtocolApi) -> None:
        lo, _ = self._interval[vertex]
        cursor = lo + 1
        for child in self._forest.children[vertex]:
            api.send(vertex, child, "start", payload=(cursor,), words=1)
            cursor += self._size[child]

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        if not self._forest.is_root(vertex):
            return
        self._interval[vertex] = (1, self._size[vertex])
        self._assign_children(vertex, api)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        if vertex in self._interval:
            api.finish(vertex)
            return
        starts = [message for message in inbox if message.kind.endswith(":start")]
        if not starts:
            return
        if len(starts) > 1:
            raise ProtocolError(f"vertex {vertex} received {len(starts)} interval starts")
        start = int(starts[0].payload[0])
        self._interval[vertex] = (start, start + self._size[vertex] - 1)
        self._assign_children(vertex, api)
        api.finish(vertex)

    def result(self, network: Engine) -> Dict[VertexId, Tuple[int, int]]:
        if len(self._interval) != len(self.participants):
            missing = set(self.participants) - set(self._interval)
            raise ProtocolError(f"interval assignment did not reach {len(missing)} vertices")
        return dict(self._interval)


def assign_intervals(network: Engine, tree: RootedForest) -> IntervalRouting:
    """Compute the interval labelling of ``tree`` and the induced routing.

    ``tree`` is usually the BFS tree ``tau``; a forest with several roots
    is also supported (each tree is labelled independently starting at 1).
    Cost: one convergecast plus one top-down wave, i.e. O(height) rounds
    and O(n) messages.
    """
    sizes = forest_convergecast(
        network, tree, values={v: 1 for v in tree.vertices}, combiner=operator.add
    )
    protocol = _IntervalAssignProtocol(network, tree, subtree_size=sizes.per_vertex)
    intervals = run_protocol(network, protocol)
    return IntervalRouting(forest=tree, intervals=intervals)
