"""One-round point-to-point messages over explicit edges.

Several steps of the paper send a single message over a specific edge --
for example, "a message is sent over the MWOE edge, and the receiver
writes down the sender as a foreign-fragment child".  This helper sends a
batch of such messages (each over a distinct directed edge) in one round
and returns what every receiver got.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol

EdgeMessage = Tuple[VertexId, VertexId, Any]


class _EdgeMessagesProtocol(NodeProtocol):
    """Send each (sender, receiver, payload) in the batch in a single round."""

    name = "edgemsg"

    def __init__(self, network: Engine, messages: List[EdgeMessage]) -> None:
        participants = set(network.vertices())
        super().__init__(participants)
        seen: Dict[Tuple[VertexId, VertexId], int] = {}
        for sender, receiver, _ in messages:
            if not network.has_edge(sender, receiver):
                raise ProtocolError(f"edge message over non-edge ({sender}, {receiver})")
            seen[(sender, receiver)] = seen.get((sender, receiver), 0) + 1
            if seen[(sender, receiver)] > network.bandwidth:
                raise ProtocolError(
                    f"{seen[(sender, receiver)]} messages over directed edge "
                    f"({sender}, {receiver}) exceed bandwidth {network.bandwidth}"
                )
        self._by_sender: Dict[VertexId, List[EdgeMessage]] = {}
        for message in messages:
            self._by_sender.setdefault(message[0], []).append(message)
        self._received: Dict[VertexId, List[Tuple[VertexId, Any]]] = {}

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        for sender, receiver, payload in self._by_sender.get(vertex, []):
            api.send(sender, receiver, "direct", payload=(payload,), words=1)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            if message.kind.endswith(":direct"):
                self._received.setdefault(vertex, []).append(
                    (message.sender, message.payload[0])
                )

    def result(self, network: Engine) -> Dict[VertexId, List[Tuple[VertexId, Any]]]:
        return self._received


def send_over_edges(
    network: Engine, messages: List[EdgeMessage]
) -> Dict[VertexId, List[Tuple[VertexId, Any]]]:
    """Send a batch of single-word messages, each over one specified edge.

    Returns ``received[v]`` = list of ``(sender, payload)`` pairs.  Cost:
    one round and ``len(messages)`` messages.  An empty batch costs
    nothing.
    """
    if not messages:
        return {}
    protocol = _EdgeMessagesProtocol(network, messages)
    return run_protocol(network, protocol)
