"""One-round exchange of a value between every pair of graph neighbours.

The paper repeatedly needs every vertex to tell all of its neighbours the
identity of the fragment it currently belongs to ("every vertex updates
its neighbors with the identity of its fragment", O(1) time and O(|E|)
messages).  :func:`neighbor_exchange` is exactly that primitive.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol


class _NeighborExchangeProtocol(NodeProtocol):
    """Every vertex sends one word to each neighbour; takes exactly one round."""

    name = "nbrx"

    def __init__(self, network: Engine, values: Dict[VertexId, Any]) -> None:
        super().__init__(network.vertices())
        missing = [v for v in self.participants if v not in values]
        if missing:
            raise ProtocolError(f"neighbor_exchange: {len(missing)} vertices have no value, e.g. {missing[0]}")
        self._values = values
        self._received: Dict[VertexId, Dict[VertexId, Any]] = {v: {} for v in self.participants}

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        api.send_to_neighbors(vertex, "value", payload=(self._values[vertex],), words=1)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            self._received[vertex][message.sender] = message.payload[0]

    def result(self, network: Engine) -> Dict[VertexId, Dict[VertexId, Any]]:
        return self._received


def neighbor_exchange(
    network: Engine, values: Dict[VertexId, Any]
) -> Dict[VertexId, Dict[VertexId, Any]]:
    """Send ``values[v]`` from every vertex ``v`` to all of its neighbours.

    Returns a nested mapping ``received[v][u]`` = value sent by neighbour
    ``u`` to ``v``.  Cost: 1 round and ``2 |E|`` messages.
    """
    protocol = _NeighborExchangeProtocol(network, values)
    return run_protocol(network, protocol)
