"""Flooding a value over the whole graph.

A one-source flood is the simplest dissemination primitive: the source
sends a value to all neighbours, and every vertex forwards it the first
time it hears it.  It costs O(D) rounds and O(|E|) messages and is used
for wake-up / "computation finished" announcements in the examples.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol


class _FloodProtocol(NodeProtocol):
    """Forward a single value along every edge once."""

    name = "flood"

    def __init__(self, network: Engine, source: VertexId, value: Any) -> None:
        super().__init__(network.vertices())
        if source not in network.graph:
            raise ProtocolError(f"flood source {source} is not a vertex of the graph")
        self._source = source
        self._value = value
        self._learned: Dict[VertexId, Any] = {}

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        if vertex != self._source:
            return
        self._learned[vertex] = self._value
        api.send_to_neighbors(vertex, "flood", payload=(self._value,), words=1)
        api.finish(vertex)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        if vertex in self._learned:
            api.finish(vertex)
            return
        flood_messages = [message for message in inbox if message.kind.endswith(":flood")]
        if not flood_messages:
            return
        origin = min(message.sender for message in flood_messages)
        self._learned[vertex] = flood_messages[0].payload[0]
        api.send_to_neighbors(
            vertex, "flood", payload=(self._learned[vertex],), words=1, exclude=origin
        )
        api.finish(vertex)

    def result(self, network: Engine) -> Dict[VertexId, Any]:
        if len(self._learned) != len(self.participants):
            missing = set(self.participants) - set(self._learned)
            raise ProtocolError(f"flood did not reach {len(missing)} vertices")
        return dict(self._learned)


def flood_value(network: Engine, source: VertexId, value: Any) -> Dict[VertexId, Any]:
    """Flood ``value`` from ``source`` to every vertex of the graph.

    Returns the value each vertex learnt (identical for all vertices).
    Cost: at most ``D + 1`` rounds and at most ``2 |E|`` messages.
    """
    protocol = _FloodProtocol(network, source, value)
    return run_protocol(network, protocol)
