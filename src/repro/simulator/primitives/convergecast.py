"""Convergecast (bottom-up aggregation) over a rooted forest.

Every vertex holds a local value; an associative combiner folds the
values of each tree towards its root.  This primitive implements the
paper's per-fragment computations: the minimum-weight outgoing edge of a
fragment, subtree sizes for the interval labelling, and the "does my
subtree still contain an unmatched child" predicate of the maximal
matching procedure.  All trees of the forest aggregate in parallel, so
the cost is O(max tree height) rounds and exactly one message per
non-root vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ...exceptions import ProtocolError
from ...types import VertexId
from ..engine import Engine
from ..message import Message
from ..node import NodeState
from ..protocol import NodeProtocol, ProtocolApi, run_protocol
from .trees import RootedForest

Combiner = Callable[[Any, Any], Any]


@dataclass
class ConvergecastResult:
    """Output of a convergecast.

    Attributes:
        root_values: aggregate of every tree, keyed by its root.
        per_vertex: aggregate of the subtree of every vertex (the value
            the vertex sent, or would send, to its parent).
        child_values: for every vertex, the aggregate received from each
            of its children; used e.g. by the interval labelling, where a
            parent must know the subtree size of each child separately.
    """

    root_values: Dict[VertexId, Any]
    per_vertex: Dict[VertexId, Any]
    child_values: Dict[VertexId, Dict[VertexId, Any]]


class _ForestConvergecastProtocol(NodeProtocol):
    """Bottom-up aggregation with an associative combiner (one word per value)."""

    name = "cvgc"

    def __init__(
        self,
        network: Engine,
        forest: RootedForest,
        values: Dict[VertexId, Any],
        combiner: Combiner,
    ) -> None:
        super().__init__(forest.vertices)
        missing = [v for v in self.participants if v not in values]
        if missing:
            raise ProtocolError(
                f"forest_convergecast: {len(missing)} vertices have no input value, e.g. {missing[0]}"
            )
        for child, parent in forest.edges():
            if not network.has_edge(child, parent):
                raise ProtocolError(
                    f"forest_convergecast: tree edge ({child}, {parent}) is not a graph edge"
                )
        self._forest = forest
        self._combiner = combiner
        self._accumulated: Dict[VertexId, Any] = dict(values)
        self._expected: Dict[VertexId, int] = {
            v: len(forest.children[v]) for v in self.participants
        }
        self._received_from: Dict[VertexId, Dict[VertexId, Any]] = {
            v: {} for v in self.participants
        }
        self._sent: set[VertexId] = set()

    def _maybe_send_up(self, vertex: VertexId, api: ProtocolApi) -> None:
        if vertex in self._sent:
            return
        if len(self._received_from[vertex]) < self._expected[vertex]:
            return
        self._sent.add(vertex)
        parent = self._forest.parent[vertex]
        if parent is not None:
            api.send(vertex, parent, "aggregate", payload=(self._accumulated[vertex],), words=1)
        api.finish(vertex)

    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        self._maybe_send_up(vertex, api)

    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        for message in inbox:
            if not message.kind.endswith(":aggregate"):
                continue
            if message.sender in self._received_from[vertex]:
                raise ProtocolError(
                    f"vertex {vertex} received two aggregates from child {message.sender}"
                )
            child_value = message.payload[0]
            self._received_from[vertex][message.sender] = child_value
            self._accumulated[vertex] = self._combiner(self._accumulated[vertex], child_value)
        self._maybe_send_up(vertex, api)

    def result(self, network: Engine) -> ConvergecastResult:
        unfinished = [v for v in self.participants if v not in self._sent]
        if unfinished:
            raise ProtocolError(f"convergecast incomplete at {len(unfinished)} vertices")
        root_values = {root: self._accumulated[root] for root in self._forest.roots}
        return ConvergecastResult(
            root_values=root_values,
            per_vertex=dict(self._accumulated),
            child_values=self._received_from,
        )


def forest_convergecast(
    network: Engine,
    forest: RootedForest,
    values: Dict[VertexId, Any],
    combiner: Combiner,
) -> ConvergecastResult:
    """Aggregate ``values`` towards the root of every tree of ``forest``.

    ``combiner`` must be associative and commutative and its results must
    fit in O(1) words (e.g. ``min``, ``+``, logical or).  Cost: at most
    ``height(forest) + 1`` rounds and one message per non-root vertex.
    """
    protocol = _ForestConvergecastProtocol(network, forest, values, combiner)
    return run_protocol(network, protocol)
