"""Per-vertex state container.

The kernel keeps one :class:`NodeState` per vertex.  It stores the static
local knowledge a vertex has in the clean network model at the start of a
computation -- its identity and its incident edges with their weights --
plus a free-form ``memory`` dictionary protocols use for their local
variables.  Protocols should only read and write state of the vertex
currently being processed; this is how the simulation preserves the
locality of the model even though it runs in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..types import VertexId


@dataclass
class NodeState:
    """Local state of one simulated vertex.

    Attributes:
        vertex: the vertex identity (``Id(v)`` in the paper).
        neighbors: identities of adjacent vertices, in sorted order.
        edge_weights: weight of the edge to each neighbour.  In the clean
            network model a vertex knows the weights of its incident
            edges but not the identities beyond its direct neighbours.
        memory: scratch space for protocol-local variables, keyed by
            protocol name to avoid collisions between composed protocols.
    """

    vertex: VertexId
    neighbors: tuple[VertexId, ...]
    edge_weights: Dict[VertexId, float]
    memory: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def scratch(self, protocol_name: str) -> Dict[str, Any]:
        """Return (creating if needed) the scratch dict for ``protocol_name``."""
        return self.memory.setdefault(protocol_name, {})

    def clear_scratch(self, protocol_name: str) -> None:
        """Drop the scratch dict for ``protocol_name`` (frees memory between phases)."""
        self.memory.pop(protocol_name, None)

    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)
