"""The simulation-engine abstraction and the engine registry.

Every algorithm in the library talks to the network through the
:class:`Engine` contract: queue messages with :meth:`Engine.send`,
advance the global clock with :meth:`Engine.deliver_round` /
:meth:`Engine.idle_rounds`, and read costs through the shared
:class:`~repro.simulator.metrics.Metrics` helpers.  Two implementations
ship with the package:

* ``"reference"`` -- :class:`~repro.simulator.network.SyncNetwork`, the
  readable kernel whose code mirrors the model definition (one
  :class:`~repro.simulator.message.Message` object per transmission,
  explicit per-edge dictionaries);
* ``"fast"`` -- :class:`~repro.simulator.fast_network.FastNetwork`, a
  batched kernel with dense vertex indexing, CSR-style adjacency, flat
  per-edge bandwidth counters and bulk metric charging;
* ``"array"`` -- :class:`~repro.simulator.array_network.ArrayNetwork`,
  a numpy structure-of-arrays kernel (CSR adjacency as arrays,
  vectorized neighbourhood broadcasts, array-reduction accounting);
  registered only when numpy is importable, otherwise selecting it
  raises an actionable :class:`~repro.exceptions.ConfigurationError`.

All engines implement the same model, round for round and message for
message: switching engines changes wall-clock time only, never the
reported complexity numbers (``tests/test_engine_equivalence.py``
asserts this on a matrix of algorithms and graph families).

Engines are selected by name through :func:`create_engine`, which is
what :class:`~repro.config.RunConfig.engine` and the CLI's ``--engine``
flag feed into.  Third-party kernels can join via
:func:`register_engine`.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..exceptions import ConfigurationError
from ..types import CostReport, normalize_edge, VertexId
from .metrics import Metrics, MetricsSnapshot
from .node import NodeState


class Engine(abc.ABC):
    """Contract every simulation kernel implements.

    Concrete engines own the communication graph, the global round
    clock, the in-flight message queues and the cost counters.  The
    accounting helpers (checkpointing, totals, edge enumeration) are
    shared here so that every engine reports costs identically.

    Required instance attributes (set by concrete ``__init__``):

    * ``graph`` -- the :class:`networkx.Graph` being simulated;
    * ``bandwidth`` -- the ``b`` of CONGEST(b log n);
    * ``metrics`` -- the kernel-owned :class:`Metrics` counters.
    """

    # Empty slots keep the base abstract; concrete engines may opt into
    # __slots__ for faster attribute access on the send hot path.
    __slots__ = ()

    graph: nx.Graph
    bandwidth: int
    metrics: Metrics

    # ------------------------------------------------------------------ #
    # shared queries (identical across engines)
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.number_of_nodes()

    @property
    def m(self) -> int:
        """Number of edges."""
        return self.graph.number_of_edges()

    @property
    def round(self) -> int:
        """Current value of the global round clock."""
        return self.metrics.rounds

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """True when ``{u, v}`` is an edge of the communication graph."""
        return self.graph.has_edge(u, v)

    def sorted_edges(self) -> List[Tuple[float, VertexId, VertexId]]:
        """All edges as (weight, u, v) triples sorted by the unique-MST order."""
        triples = [
            (data["weight"], *normalize_edge(u, v)) for u, v, data in self.graph.edges(data=True)
        ]
        return sorted(triples)

    # ------------------------------------------------------------------ #
    # shared accounting helpers
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> MetricsSnapshot:
        """Snapshot the cost counters (see :meth:`cost_since`)."""
        return self.metrics.checkpoint()

    def cost_since(self, snapshot: MetricsSnapshot) -> CostReport:
        """Cost accumulated since ``snapshot``."""
        return self.metrics.since(snapshot)

    def total_cost(self) -> CostReport:
        """Total cost accumulated since the engine was created."""
        return self.metrics.as_report()

    # ------------------------------------------------------------------ #
    # kernel contract
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def vertices(self) -> Iterable[VertexId]:
        """Iterate over vertex identities in sorted order."""

    @abc.abstractmethod
    def node(self, vertex: VertexId) -> NodeState:
        """Return the :class:`NodeState` of ``vertex``."""

    @abc.abstractmethod
    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""

    @abc.abstractmethod
    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Queue a message for delivery at the start of the next round.

        Must enforce that ``(sender, receiver)`` is a graph edge and that
        the words sent over the directed edge in the current round stay
        within the bandwidth (raising
        :class:`~repro.exceptions.BandwidthExceededError` otherwise).
        """

    def send_to_neighbors(
        self,
        sender: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
        exclude: Optional[VertexId] = None,
    ) -> int:
        """Queue one copy of a message to every neighbour of ``sender``.

        Semantically exactly equivalent to calling :meth:`send` once per
        neighbour of ``sender`` in sorted-neighbour order, skipping
        ``exclude`` -- including the partial-commit behaviour on a
        bandwidth violation (messages to earlier neighbours stay queued,
        the offending send raises).  Engines with vectorized internals
        override this with a bulk implementation; this default keeps the
        reference semantics in exactly one obvious loop.  Returns the
        number of messages queued.
        """
        send = self.send
        count = 0
        for neighbor in self.node(sender).neighbors:
            if neighbor == exclude:
                continue
            send(sender, neighbor, kind, payload, words)
            count += 1
        return count

    @abc.abstractmethod
    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round over the directed edge ``sender -> receiver``."""

    @abc.abstractmethod
    def pending_count(self) -> int:
        """Number of messages queued for delivery in the next round."""

    @abc.abstractmethod
    def deliver_round(self) -> Dict[VertexId, List[Any]]:
        """Advance the clock by one round and deliver all queued messages.

        Returns a mapping from receiver vertex to the list of messages it
        receives at the start of the new round (receivers with an empty
        inbox are omitted).  Delivered messages expose the
        :class:`~repro.simulator.message.Message` attribute interface
        (``sender`` / ``receiver`` / ``kind`` / ``payload`` / ``words`` /
        ``sent_in_round``); per-receiver lists preserve global send
        order, and receivers appear in first-message order.
        """

    @abc.abstractmethod
    def idle_rounds(self, count: int) -> None:
        """Advance the clock by ``count`` silent rounds (no messages).

        Must raise :class:`~repro.exceptions.SimulationError` when
        messages are pending or ``count`` is negative.
        """


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #

#: An engine factory: ``factory(graph, bandwidth=..., validate=...) -> Engine``.
EngineFactory = Callable[..., Engine]

_REGISTRY: Dict[str, EngineFactory] = {}

#: Engines that exist but cannot run in this environment (name -> why).
#: Selecting one raises a :class:`ConfigurationError` carrying the
#: recorded reason instead of the generic unknown-engine message.
_UNAVAILABLE: Dict[str, str] = {}

#: Name of the engine used when none is requested explicitly.
DEFAULT_ENGINE = "reference"


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register ``factory`` under ``name`` for :func:`create_engine`.

    Registering a name twice replaces the previous factory, which lets
    tests substitute instrumented kernels.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"engine name must be a non-empty string, got {name!r}")
    _UNAVAILABLE.pop(name, None)
    _REGISTRY[name] = factory


def register_unavailable_engine(name: str, reason: str) -> None:
    """Record that engine ``name`` exists but cannot run here.

    Used by optional-dependency kernels (the ``array`` engine needs
    numpy): the name stays out of :func:`available_engines`, and
    selecting it raises an actionable error instead of "unknown engine".
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"engine name must be a non-empty string, got {name!r}")
    _REGISTRY.pop(name, None)
    _UNAVAILABLE[name] = reason


def _ensure_builtin_engines() -> None:
    """Import the built-in kernels so they self-register (idempotent)."""
    from . import array_network as _array_network  # noqa: F401
    from . import fast_network as _fast_network  # noqa: F401
    from . import network as _network  # noqa: F401


def available_engines() -> List[str]:
    """Names accepted by :func:`create_engine` (and the CLI's ``--engine``)."""
    _ensure_builtin_engines()
    return sorted(_REGISTRY)


def unavailable_engines() -> Dict[str, str]:
    """Engines that exist but cannot run here, mapped to the reason.

    The ``array`` kernel without numpy is the canonical entry; the CLI's
    ``engines`` subcommand surfaces this mapping so a missing optional
    dependency is diagnosable without triggering the selection error.
    """
    _ensure_builtin_engines()
    return dict(_UNAVAILABLE)


def registered_factory(name: str) -> Optional[EngineFactory]:
    """The factory currently registered under ``name`` (``None`` when absent).

    Lets callers that special-case a kernel (the batched executor only
    hands out arena lanes for the stock ``"fast"`` engine) detect when a
    test or plugin has re-registered the name with something else.
    """
    _ensure_builtin_engines()
    return _REGISTRY.get(name)


#: A provider intercepting :func:`create_engine`: returns a prepared
#: engine for ``(graph, bandwidth, engine_name)``, or ``None`` to fall
#: through to the registry.
EngineProvider = Callable[[nx.Graph, int, str], Optional[Engine]]

_PROVIDERS: List[EngineProvider] = []


@contextlib.contextmanager
def engine_provider(provider: EngineProvider) -> Iterator[None]:
    """Intercept :func:`create_engine` calls within the ``with`` block.

    This is the seam the batched executor uses to hand algorithms
    pre-packed :class:`~repro.simulator.fast_network.BatchedEngine`
    lanes without changing the runner contract: algorithms keep calling
    ``create_engine(graph, ...)``, and the innermost active provider may
    answer with a prepared engine for that exact graph.  A provider
    returning ``None`` falls through (to outer providers, then to the
    registry), so interception is always safe.  Providers stack; the
    mechanism is intentionally not thread-safe (the executors are
    process-parallel, never thread-parallel).
    """
    _PROVIDERS.append(provider)
    try:
        yield
    finally:
        _PROVIDERS.pop()


def active_provider_count() -> int:
    """Number of :func:`engine_provider` interceptors currently installed.

    Providers live in process-local state: ``fork``-started workers
    inherit them, ``spawn``-started workers do not.  The jobs>1
    scheduler consults this count to fail loudly instead of silently
    running worker cells without the parent's provider.
    """
    return len(_PROVIDERS)


#: A wrapper decorating engines :func:`create_engine` hands out:
#: ``wrapper(engine, graph, bandwidth, engine_name) -> Engine``.
EngineWrapper = Callable[[Engine, nx.Graph, int, str], Engine]

_WRAPPERS: List[EngineWrapper] = []


@contextlib.contextmanager
def engine_wrapper(wrapper: EngineWrapper) -> Iterator[None]:
    """Decorate every engine :func:`create_engine` returns in this block.

    Where :func:`engine_provider` *replaces* construction (vending a
    prepared kernel), a wrapper *decorates* whatever construction
    produced -- a registry-built kernel or a provider-vended arena lane
    alike.  This is the seam :mod:`repro.conditions` installs its
    condition-applying proxy through: algorithms keep calling
    ``create_engine`` and receive the wrapped engine, so no kernel and
    no algorithm knows conditions exist.  Wrappers stack (installation
    order, innermost-installed applied last) and, like providers, are
    intentionally not thread-safe.
    """
    _WRAPPERS.append(wrapper)
    try:
        yield
    finally:
        _WRAPPERS.pop()


def _apply_wrappers(engine_obj: Engine, graph: nx.Graph, bandwidth: int, name: str) -> Engine:
    for wrapper in _WRAPPERS:
        engine_obj = wrapper(engine_obj, graph, bandwidth, name)
    return engine_obj


def create_engine(
    graph: nx.Graph,
    bandwidth: int = 1,
    validate: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> Engine:
    """Instantiate the simulation kernel named ``engine`` over ``graph``.

    Args:
        graph: connected undirected weighted :class:`networkx.Graph`.
        bandwidth: the ``b`` of CONGEST(b log n).
        validate: run input validation (disable in tight loops where the
            caller has already validated the graph).
        engine: registered engine name (``"reference"``, ``"fast"`` or
            -- with numpy installed -- ``"array"`` out of the box).

    Raises:
        ConfigurationError: when ``engine`` is not a registered name.
    """
    if _PROVIDERS:
        for provider in reversed(_PROVIDERS):
            provided = provider(graph, bandwidth, engine)
            if provided is not None:
                return _apply_wrappers(provided, graph, bandwidth, engine)
    _ensure_builtin_engines()
    try:
        factory = _REGISTRY[engine]
    except KeyError:
        reason = _UNAVAILABLE.get(engine)
        if reason is not None:
            raise ConfigurationError(
                f"engine {engine!r} is not available: {reason}"
            ) from None
        raise ConfigurationError(
            f"unknown engine {engine!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    built = factory(graph, bandwidth=bandwidth, validate=validate)
    if _WRAPPERS:
        built = _apply_wrappers(built, graph, bandwidth, engine)
    return built
