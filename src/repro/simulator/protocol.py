"""Per-node protocol abstraction and the synchronous round driver.

A :class:`NodeProtocol` describes what every participating vertex does in
each round: an initialisation step (:meth:`NodeProtocol.on_start`) and a
per-round step (:meth:`NodeProtocol.on_round`) that receives the messages
delivered to the vertex at the beginning of the round.  The driver
(:func:`run_protocol`) executes the protocol on a
:class:`~repro.simulator.engine.Engine` (either kernel), advancing the global clock
once per round, until every participant has declared itself finished and
no messages remain in flight.

Protocols keep their per-vertex variables in the vertex's scratch space
(:meth:`~repro.simulator.node.NodeState.scratch`), so composed protocols
do not interfere with one another.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, List, Optional, Set, Tuple

from ..exceptions import ConvergenceError, ProtocolError
from ..types import VertexId
from .engine import Engine
from .message import Message
from .node import NodeState


class ProtocolApi:
    """Restricted view of the network handed to protocol callbacks.

    Protocols use it to send messages and to mark vertices as finished;
    they never touch the kernel's queues or counters directly.
    """

    def __init__(self, network: Engine, protocol_name: str) -> None:
        self._network = network
        self._protocol_name = protocol_name
        self._finished: Set[VertexId] = set()

    @property
    def bandwidth(self) -> int:
        """The ``b`` of the CONGEST(b log n) model."""
        return self._network.bandwidth

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Send a message from ``sender`` to its neighbour ``receiver``."""
        self._network.send(sender, receiver, f"{self._protocol_name}:{kind}", payload, words)

    def send_to_neighbors(
        self,
        sender: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
        exclude: Optional[VertexId] = None,
    ) -> int:
        """Send one copy of a message to every neighbour of ``sender``.

        Equivalent to calling :meth:`send` once per neighbour in
        sorted-neighbour order (skipping ``exclude``), but the kind is
        namespaced once and array-backed kernels broadcast with a single
        vectorized scatter.  Returns the number of messages queued.
        """
        return self._network.send_to_neighbors(
            sender, f"{self._protocol_name}:{kind}", payload, words, exclude
        )

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round on the directed edge ``sender -> receiver``."""
        return self._network.remaining_capacity(sender, receiver)

    def node(self, vertex: VertexId) -> NodeState:
        """Local state of ``vertex`` (protocols must only touch the current vertex)."""
        return self._network.node(vertex)

    def finish(self, vertex: VertexId) -> None:
        """Declare that ``vertex`` has completed its part of the protocol."""
        self._finished.add(vertex)

    def unfinish(self, vertex: VertexId) -> None:
        """Re-activate a vertex (used when a new message re-engages it)."""
        self._finished.discard(vertex)

    def is_finished(self, vertex: VertexId) -> bool:
        """True when ``vertex`` has declared completion."""
        return vertex in self._finished

    def finished_count(self) -> int:
        """Number of vertices that have declared completion."""
        return len(self._finished)


class NodeProtocol(abc.ABC):
    """Base class for synchronous per-node protocols.

    Subclasses define ``name`` (used to namespace scratch space and
    message kinds), the set of participating vertices, the two callbacks,
    and a :meth:`result` extractor that assembles the protocol's output
    after the driver stops.
    """

    #: short identifier; must be unique among concurrently-run protocols
    name: str = "protocol"

    def __init__(self, participants: Iterable[VertexId]) -> None:
        self.participants: Tuple[VertexId, ...] = tuple(sorted(set(participants)))
        if not self.participants:
            raise ProtocolError(f"{type(self).__name__} needs at least one participant")

    def max_rounds_hint(self, network: Engine) -> int:
        """Upper bound on rounds; exceeding it raises :class:`ConvergenceError`.

        The default is intentionally generous (it exists to catch
        non-terminating protocol bugs, not to enforce the theorems; the
        theorem bounds are checked separately by the verification layer).
        """
        return 20 * (network.n + network.m) + 100

    @abc.abstractmethod
    def on_start(self, vertex: VertexId, node: NodeState, api: ProtocolApi) -> None:
        """Initialisation before the first round (may send messages)."""

    @abc.abstractmethod
    def on_round(
        self, vertex: VertexId, node: NodeState, api: ProtocolApi, inbox: List[Message]
    ) -> None:
        """One synchronous round at ``vertex`` with the freshly delivered ``inbox``."""

    @abc.abstractmethod
    def result(self, network: Engine) -> Any:
        """Assemble the protocol output after termination."""


def run_protocol(
    network: Engine,
    protocol: NodeProtocol,
    max_rounds: Optional[int] = None,
) -> Any:
    """Execute ``protocol`` on ``network`` until quiescence and return its result.

    Termination condition: every participant has called
    :meth:`ProtocolApi.finish` *and* no messages are in flight.  Each
    delivered batch of messages advances the global round clock by one,
    so the rounds charged to the enclosing execution are exactly the
    rounds this protocol used.

    This loop is the hottest frame of every simulation (it runs once per
    vertex per round across every protocol of every phase), so the body
    trades a little transparency for speed: node states are resolved
    once per protocol rather than once per visit, and the per-round scan
    skips finished vertices with plain set/dict lookups.  Vertices are
    still visited in sorted-participant order every round, which is what
    keeps message emission -- and therefore every reported metric --
    deterministic.
    """
    api = ProtocolApi(network, protocol.name)
    if max_rounds is not None:
        limit = max_rounds
    else:
        # Condition-applying proxies advertise a round_limit_stretch so
        # the convergence guard scales with the injected asynchrony
        # (deferred/retransmitted traffic legitimately needs more
        # rounds); explicit caller limits are never stretched.
        stretch = int(getattr(network, "round_limit_stretch", 1) or 1)
        limit = protocol.max_rounds_hint(network) * max(stretch, 1)
    participants = protocol.participants
    total = len(participants)
    states = [(vertex, network.node(vertex)) for vertex in participants]
    finished = api._finished
    on_round = protocol.on_round
    # Bound methods resolved once per protocol, not once per round: the
    # attribute walks (instance dict / slots, then class) are pure
    # overhead inside the hottest loop of every simulation.
    deliver_round = network.deliver_round
    pending_count = network.pending_count

    for vertex, node in states:
        protocol.on_start(vertex, node, api)

    rounds_used = 0
    while True:
        if len(finished) == total and pending_count() == 0:
            break
        if rounds_used >= limit:
            error = ConvergenceError(
                f"protocol {protocol.name!r} did not terminate within {limit} rounds "
                f"({api.finished_count()}/{len(protocol.participants)} vertices finished, "
                f"{pending_count()} messages pending)"
            )
            error.rounds_limit = limit
            error.finished_participants = api.finished_count()
            error.pending_messages = pending_count()
            raise error
        inboxes = deliver_round()
        rounds_used += 1
        get_inbox = inboxes.get
        for vertex, node in states:
            inbox = get_inbox(vertex)
            if inbox is None:
                if vertex in finished:
                    continue
                # Fresh empty list per quiet unfinished vertex: a shared
                # sentinel would let a mutating protocol poison every
                # later round, and quiet-but-unfinished vertices are the
                # rare case now that finished ones are skipped above.
                inbox = []
            on_round(vertex, node, api, inbox)

    outcome = protocol.result(network)
    for vertex, node in states:
        node.clear_scratch(protocol.name)
    return outcome


def run_protocols_sequentially(
    network: Engine, protocols: Iterable[NodeProtocol]
) -> List[Any]:
    """Run several protocols one after another, returning their results in order."""
    return [run_protocol(network, protocol) for protocol in protocols]
