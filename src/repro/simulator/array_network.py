"""The numpy structure-of-arrays kernel (``engine="array"``).

:class:`ArrayNetwork` implements the exact same CONGEST(b log n) model
as the reference kernel and :class:`~repro.simulator.fast_network.FastNetwork`
-- same round semantics, same bandwidth enforcement, same cost
accounting, byte-identical reported numbers -- but restructures the data
plane around flat arrays instead of per-message Python objects:

* CSR adjacency (``indptr`` / dense neighbour indices / edge weights)
  is built once per *graph content* and cached in a small LRU keyed by
  a content hash (:func:`csr_layout`), so repeated cells on the same
  instance -- the common sweep case -- skip the rebuild entirely;
* in-flight messages live in preallocated structure-of-arrays columns
  (numpy ``sender`` / ``receiver`` / ``words`` columns plus Python-list
  ``kind`` / ``payload`` columns, advanced by one shared fill counter)
  instead of per-message tuples;
* a whole-neighbourhood broadcast (:meth:`Engine.send_to_neighbors`,
  the dominant operation of flooding-style protocols) is one vectorized
  scatter: a slice fill of the bandwidth counters, a slice copy of the
  CSR receiver run into the message columns, and two C-level list slice
  assignments -- O(1) numpy calls per broadcast instead of O(degree)
  Python ``send`` frames;
* single-target sends are *staged* in plain Python lists (three list
  appends instead of three numpy scalar stores per message) and flushed
  into the numpy columns with one vectorized slice assignment per
  column -- at the next broadcast, to preserve global send order, or at
  delivery; a round consisting only of point sends builds its inboxes
  straight from the staged lists and never touches numpy at all, so
  point-send-heavy protocol rounds pay the fast kernel's cost shape
  rather than numpy's scalar-indexing overhead;
* per-edge bandwidth accounting uses the same generation-stamped
  packing as the fast kernel (``generation * (bandwidth+1) + words``),
  held in one numpy array so a broadcast checks a whole neighbourhood
  with one array reduction;
* round delivery charges metrics as array reductions (one ``sum`` for
  words, one C-level ``Counter.update`` for the per-kind histogram) and
  returns *lazily materialized* inboxes: receivers and per-inbox
  lengths are computed by vectorized grouping, while the per-message
  :class:`~repro.simulator.fast_network.FastMessage` tuples are only
  built if a consumer actually iterates or indexes an inbox.  Protocols
  that read every message pay exactly the fast kernel's materialization
  cost; aggregate consumers (count/len-style synchronizer patterns)
  skip it entirely.

Semantics stay byte-identical because every observable decision point is
shared with the fast kernel: vertices and neighbours are ordered by the
same sorts, a broadcast emits in sorted-neighbour order exactly like the
default per-neighbour loop, a bandwidth violation inside a broadcast
replays the whole broadcast through the sequential loop (committing the
same prefix and raising the same error at the same neighbour), and
delivery preserves global send order per receiver with receivers keyed
in first-message order.  ``tests/test_engine_equivalence.py`` and the
golden-regression fixture pin this down across the full algorithm x
graph matrix.

numpy is an optional dependency (the ``[fast]`` extra).  When it is not
importable this module still imports cleanly: the engine registry simply
does not advertise ``"array"``, and selecting it raises an actionable
:class:`~repro.exceptions.ConfigurationError` instead of an ImportError.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from itertools import repeat
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

import networkx as nx

try:  # pragma: no cover - exercised via tests that stub np to None
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..exceptions import BandwidthExceededError, ConfigurationError, SimulationError
from ..graphs.properties import validate_weighted_graph
from ..types import VertexId
from .engine import Engine, register_engine, register_unavailable_engine
from .fast_network import FastMessage
from .metrics import Metrics
from .node import NodeState

#: Why the engine is unavailable without numpy (surfaced by the registry).
_NUMPY_MISSING_REASON = (
    "numpy is not installed; install the optional extra: "
    "pip install 'repro-elkin-mst[fast]'"
)

#: Broadcasts below this degree take the plain per-neighbour loop: the
#: fixed cost of a handful of numpy slice operations only amortizes once
#: a neighbourhood has a few entries.
_VECTOR_DEGREE_FLOOR = 4

#: Deliveries at or below this many messages build plain dict-of-list
#: inboxes eagerly (point-send-heavy algorithm rounds), skipping the
#: vectorized grouping whose numpy fixed cost would dominate.
_EAGER_DELIVERY_LIMIT = 32


# ---------------------------------------------------------------------- #
# CSR layout, content-hashed and LRU-cached
# ---------------------------------------------------------------------- #


class _CSRLayout(NamedTuple):
    """Immutable per-graph-content adjacency structures.

    Shared by every :class:`ArrayNetwork` (and arena lane) simulating a
    graph with this content; nothing in here may ever be mutated.  The
    per-vertex ``edge_weights`` dicts are handed to
    :class:`~repro.simulator.node.NodeState` by reference -- protocols
    treat node weight tables as read-only, which is the same invariant
    the fast kernel's shared arena pieces already rely on.
    """

    n: int
    m: int
    order: List[VertexId]
    index: Dict[VertexId, int]
    neighbors: Dict[VertexId, Tuple[VertexId, ...]]
    edge_weights: Dict[VertexId, Dict[VertexId, float]]
    indptr: List[int]
    indptr_np: Any  # np.ndarray[int64], n + 1
    nbr_dense: Any  # np.ndarray[int64], one dense receiver index per slot
    weights_np: Any  # np.ndarray[float64], one weight per slot
    weights: List[float]
    edge_info: Dict[Tuple[VertexId, VertexId], Tuple[int, int, int]]
    slot_count: int


_LAYOUT_CACHE: "OrderedDict[Tuple, _CSRLayout]" = OrderedDict()
_LAYOUT_CACHE_MAXSIZE = 32
_layout_stats = {"hits": 0, "misses": 0}


def _graph_signature(graph: nx.Graph) -> Tuple:
    """Order-independent content hash of a weighted graph.

    Two graphs with the same vertex set and the same weighted edge set
    map to the same signature regardless of object identity or
    insertion order, so sweep cells re-drawing the same deterministic
    instance share one cached layout.
    """
    edge_sum = 0
    edge_xor = 0
    for u, v, weight in graph.edges(data="weight"):
        pair = hash((u, v, weight)) ^ hash((v, u, weight))
        edge_sum = (edge_sum + pair) & 0xFFFFFFFFFFFFFFFF
        edge_xor ^= pair
    node_xor = 0
    for vertex in graph.nodes():
        node_xor ^= hash(vertex)
    return (
        graph.number_of_nodes(),
        graph.number_of_edges(),
        edge_sum,
        edge_xor,
        node_xor,
    )


def _build_layout(graph: nx.Graph) -> _CSRLayout:
    order = sorted(graph.nodes())
    index = {vertex: i for i, vertex in enumerate(order)}
    neighbors: Dict[VertexId, Tuple[VertexId, ...]] = {}
    edge_weights: Dict[VertexId, Dict[VertexId, float]] = {}
    indptr: List[int] = [0]
    nbr_dense: List[int] = []
    weights: List[float] = []
    edge_info: Dict[Tuple[VertexId, VertexId], Tuple[int, int, int]] = {}
    for i, vertex in enumerate(order):
        nbrs = tuple(sorted(graph.neighbors(vertex)))
        neighbors[vertex] = nbrs
        row = graph[vertex]
        table = {u: row[u]["weight"] for u in nbrs}
        edge_weights[vertex] = table
        base = indptr[-1]
        for j, neighbor in enumerate(nbrs):
            receiver_index = index[neighbor]
            edge_info[(vertex, neighbor)] = (base + j, i, receiver_index)
            nbr_dense.append(receiver_index)
            weights.append(table[neighbor])
        indptr.append(base + len(nbrs))
    return _CSRLayout(
        n=len(order),
        m=graph.number_of_edges(),
        order=order,
        index=index,
        neighbors=neighbors,
        edge_weights=edge_weights,
        indptr=indptr,
        indptr_np=np.asarray(indptr, dtype=np.int64),
        nbr_dense=np.asarray(nbr_dense, dtype=np.int64),
        weights_np=np.asarray(weights, dtype=np.float64),
        weights=weights,
        edge_info=edge_info,
        slot_count=indptr[-1],
    )


def csr_layout(graph: nx.Graph) -> _CSRLayout:
    """The CSR adjacency layout for ``graph``, cached by content hash.

    The cache is a small LRU shared between standalone
    :class:`ArrayNetwork` construction and the
    :class:`~repro.simulator.fast_network.BatchedEngine` arena lanes:
    repeated cells on the same instance (the common sweep case) skip
    the O(n + m) rebuild.
    """
    if np is None:
        raise ConfigurationError(f"cannot build a CSR layout: {_NUMPY_MISSING_REASON}")
    key = _graph_signature(graph)
    layout = _LAYOUT_CACHE.get(key)
    if layout is not None:
        _layout_stats["hits"] += 1
        _LAYOUT_CACHE.move_to_end(key)
        return layout
    _layout_stats["misses"] += 1
    layout = _build_layout(graph)
    _LAYOUT_CACHE[key] = layout
    while len(_LAYOUT_CACHE) > _LAYOUT_CACHE_MAXSIZE:
        _LAYOUT_CACHE.popitem(last=False)
    return layout


def layout_cache_info() -> Dict[str, int]:
    """Hit/miss/size statistics of the layout LRU (for tests and tuning)."""
    return {
        "hits": _layout_stats["hits"],
        "misses": _layout_stats["misses"],
        "size": len(_LAYOUT_CACHE),
        "maxsize": _LAYOUT_CACHE_MAXSIZE,
    }


def clear_layout_cache() -> None:
    """Drop every cached layout and reset the statistics."""
    _LAYOUT_CACHE.clear()
    _layout_stats["hits"] = 0
    _layout_stats["misses"] = 0


# ---------------------------------------------------------------------- #
# lazily materialized inboxes
# ---------------------------------------------------------------------- #

_ARANGE: Any = None


def _ascending(fill: int) -> Any:
    """A reusable ``arange(fill)`` (grown on demand, never shrunk)."""
    global _ARANGE
    if _ARANGE is None or len(_ARANGE) < fill:
        _ARANGE = np.arange(max(fill, 1024), dtype=np.int64)
    return _ARANGE[:fill]


class _InboxView(Sequence):
    """One receiver's inbox, materialized on first per-message access.

    ``len`` and truthiness come straight from the vectorized group
    counts; iterating or indexing triggers the parent's one-shot
    materialization of every inbox of the round.  Messages are the same
    :class:`~repro.simulator.fast_network.FastMessage` tuples the fast
    kernel delivers, in the same global send order.
    """

    __slots__ = ("_parent", "_count", "_list")

    def __init__(self, parent: "_LazyInboxes", count: int) -> None:
        self._parent = parent
        self._count = count
        self._list: Optional[List[FastMessage]] = None

    def _materialized(self) -> List[FastMessage]:
        messages = self._list
        if messages is None:
            self._parent._force()
            messages = self._list
        return messages

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self._materialized())

    def __getitem__(self, item):
        return self._materialized()[item]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _InboxView):
            other = other._materialized()
        if isinstance(other, (list, tuple)):
            return self._materialized() == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable-equivalent container, like list

    def __repr__(self) -> str:
        return repr(self._materialized())


class _LazyInboxes(dict):
    """The delivery mapping: receiver vertex -> :class:`_InboxView`.

    A real ``dict`` (so ``.get`` / iteration / membership run at native
    speed in the protocol driver) whose keys are inserted in
    first-message order, exactly like the eager kernels.  The message
    columns snapshotted from the engine stay untouched until a consumer
    forces materialization.
    """

    __slots__ = (
        "_senders",
        "_recv",
        "_kinds",
        "_payloads",
        "_words",
        "_round",
        "_vertex_of",
        "_order",
        "_forced",
    )

    def __init__(
        self,
        senders: Any,
        recv: Any,
        kinds: List[str],
        payloads: List[Tuple[Any, ...]],
        words: Any,
        round_value: int,
        vertex_of: List[VertexId],
    ) -> None:
        dict.__init__(self)
        self._senders = senders
        self._recv = recv
        self._kinds = kinds
        self._payloads = payloads
        self._words = words
        self._round = round_value
        self._vertex_of = vertex_of
        self._forced = False
        n = len(vertex_of)
        fill = len(recv)
        if fill >= (n >> 2):
            # Dense delivery (broadcast storms): O(n + fill) grouping.
            # The reversed fancy assignment leaves, for every receiver,
            # the index of its *first* message (later writes win, and the
            # sequence is reversed), giving first-message key order
            # without sorting all `fill` entries like np.unique would.
            counts = np.bincount(recv, minlength=n)
            present = np.nonzero(counts)[0]
            first = np.empty(n, dtype=np.int64)
            first[recv[::-1]] = _ascending(fill)[::-1]
            positions = np.argsort(first[present], kind="stable")
            order = present[positions].tolist()
            counts_in_order = counts[present[positions]].tolist()
        else:
            unique, first, counts = np.unique(recv, return_index=True, return_counts=True)
            positions = np.argsort(first, kind="stable")
            order = unique[positions].tolist()
            counts_in_order = counts[positions].tolist()
        setitem = dict.__setitem__
        for receiver_index, count in zip(order, counts_in_order):
            setitem(self, vertex_of[receiver_index], _InboxView(self, count))
        self._order = order

    def _force(self) -> None:
        if self._forced:
            return
        self._forced = True
        vertex_of = self._vertex_of
        recv_list = self._recv.tolist()
        sender_vertices = [vertex_of[i] for i in self._senders.tolist()]
        receiver_vertices = [vertex_of[i] for i in recv_list]
        messages = list(
            map(
                FastMessage._make,
                zip(
                    sender_vertices,
                    receiver_vertices,
                    self._kinds,
                    self._payloads,
                    self._words.tolist(),
                    repeat(self._round),
                ),
            )
        )
        buckets: Dict[int, List[FastMessage]] = {index: [] for index in self._order}
        for receiver_index, message in zip(recv_list, messages):
            buckets[receiver_index].append(message)
        # Views were inserted in ``_order`` order, so dict order matches.
        for receiver_index, view in zip(self._order, self.values()):
            view._list = buckets[receiver_index]


# ---------------------------------------------------------------------- #
# the kernel
# ---------------------------------------------------------------------- #


class ArrayNetwork(Engine):
    """numpy structure-of-arrays synchronous message-passing kernel.

    Drop-in replacement for the other kernels (same constructor
    signature, same :class:`~repro.simulator.engine.Engine` contract,
    same error types and messages).  Point sends cost about the same as
    the fast kernel; whole-neighbourhood broadcasts and delivery
    accounting are vectorized (see the module docstring).

    Args:
        graph: connected undirected :class:`networkx.Graph` whose edges
            carry a ``weight`` attribute.
        bandwidth: the ``b`` of CONGEST(b log n); maximum number of
            words per directed edge per round.
        validate: run input validation (disable only in tight loops
            where the caller has already validated the graph).

    Raises:
        ConfigurationError: when numpy is not installed.
    """

    __slots__ = (
        "graph",
        "bandwidth",
        "metrics",
        "_layout",
        "_n",
        "_m",
        "_vertex_of",
        "_index",
        "_nodes",
        "_indptr",
        "_nbr_dense",
        "_nbr_weight",
        "_edge_info",
        "_band",
        "_band_span",
        "_generation",
        "_gen_base",
        "_out_gen",
        "_col_sender",
        "_col_receiver",
        "_col_words",
        "_col_kind",
        "_col_payload",
        "_pt_sender",
        "_pt_receiver",
        "_pt_words",
        "_pt_kind",
        "_pt_payload",
        "_cap",
        "_fill",
        "_round_value",
        "_round_kind",
    )

    def __init__(self, graph: nx.Graph, bandwidth: int = 1, validate: bool = True) -> None:
        if np is None:
            raise ConfigurationError(
                f"the 'array' engine needs numpy: {_NUMPY_MISSING_REASON}"
            )
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        if validate:
            validate_weighted_graph(graph, require_unique_weights=False)
        layout = csr_layout(graph)
        self._attach(
            graph,
            layout,
            bandwidth,
            band=np.zeros(layout.slot_count, dtype=np.int64),
            columns=None,
        )

    def _attach(
        self,
        graph: nx.Graph,
        layout: _CSRLayout,
        bandwidth: int,
        band: Any,
        columns: Optional[Tuple[Any, Any, Any]],
    ) -> None:
        """Shared initialisation for standalone engines and arena lanes."""
        self.graph = graph
        self.bandwidth = bandwidth
        self.metrics = Metrics()
        self._layout = layout
        self._n = layout.n
        self._m = layout.m
        self._vertex_of = layout.order
        self._index = layout.index
        self._nodes = {
            vertex: NodeState(
                vertex=vertex,
                neighbors=layout.neighbors[vertex],
                edge_weights=layout.edge_weights[vertex],
            )
            for vertex in layout.order
        }
        self._indptr = layout.indptr
        self._nbr_dense = layout.nbr_dense
        self._nbr_weight = layout.weights
        self._edge_info = layout.edge_info
        self._band = band
        self._band_span = bandwidth + 1
        self._generation = 0
        self._gen_base = 0
        # Last generation in which each vertex charged any of its
        # outgoing slots; lets a broadcast from an untouched vertex skip
        # the per-slot bandwidth reduction entirely.
        self._out_gen = [-1] * layout.n
        if columns is None:
            cap = max(layout.slot_count, 16)
            self._col_sender = np.empty(cap, dtype=np.int64)
            self._col_receiver = np.empty(cap, dtype=np.int64)
            self._col_words = np.empty(cap, dtype=np.int64)
        else:
            self._col_sender, self._col_receiver, self._col_words = columns
            cap = len(self._col_sender)
        self._col_kind: List[Any] = [None] * cap
        self._col_payload: List[Any] = [None] * cap
        # Point-send staging: single-target sends append to these plain
        # Python lists (three list appends instead of three numpy scalar
        # stores) and are flushed into the numpy columns in one
        # vectorized slice assignment -- at the next whole-neighbourhood
        # broadcast (so global send order is preserved) or at delivery.
        # A round made up entirely of point sends never touches the
        # numpy columns at all: its inboxes are built straight from the
        # staged lists, exactly like the fast kernel.
        self._pt_sender: List[int] = []
        self._pt_receiver: List[int] = []
        self._pt_words: List[int] = []
        self._pt_kind: List[Any] = []
        self._pt_payload: List[Any] = []
        self._cap = cap
        self._fill = 0
        self._round_value = 0
        # The round's single message kind, ``None`` before the first
        # send of a round, ``False`` once two kinds mix; lets delivery
        # charge the per-kind histogram in O(1) for uniform rounds
        # (broadcast storms) instead of a counting pass over the fill.
        self._round_kind: Any = None

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of vertices (cached; the graph never changes mid-run)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges (cached; the graph never changes mid-run)."""
        return self._m

    def vertices(self):
        """Iterate over vertex identities in sorted order."""
        return self._nodes.keys()

    def node(self, vertex: VertexId) -> NodeState:
        """Return the :class:`NodeState` of ``vertex``."""
        try:
            return self._nodes[vertex]
        except KeyError as exc:
            raise SimulationError(f"unknown vertex {vertex}") from exc

    def edge_weight(self, u: VertexId, v: VertexId) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""
        info = self._edge_info.get((u, v))
        if info is None:
            raise SimulationError(f"no edge between {u} and {v}")
        return self._nbr_weight[info[0]]

    # ------------------------------------------------------------------ #
    # communication
    # ------------------------------------------------------------------ #

    def send(
        self,
        sender: VertexId,
        receiver: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
    ) -> None:
        """Queue a message for delivery at the start of the next round.

        Enforces that the edge exists and that the cumulative number of
        words sent over the directed edge ``sender -> receiver`` in the
        current round stays within the bandwidth.
        """
        try:
            slot, sender_index, receiver_index = self._edge_info[sender, receiver]
        except (KeyError, TypeError):
            raise SimulationError(
                f"cannot send {kind!r}: ({sender}, {receiver}) is not an edge of the graph"
            ) from None
        if words < 1:
            raise ValueError(f"a message must carry at least one word, got {words}")
        base = self._gen_base
        band = self._band
        value = int(band[slot])
        used = value - base if value > base else 0
        if used + words > self.bandwidth:
            raise BandwidthExceededError(
                f"edge {sender}->{receiver}: {used} word(s) already sent this round, "
                f"adding {words} exceeds bandwidth {self.bandwidth} (message kind {kind!r})"
            )
        band[slot] = base + used + words
        self._out_gen[sender_index] = self._generation
        round_kind = self._round_kind
        if round_kind is None:
            self._round_kind = kind
        elif round_kind is not False and round_kind != kind:
            self._round_kind = False
        self._pt_sender.append(sender_index)
        self._pt_receiver.append(receiver_index)
        self._pt_words.append(words)
        self._pt_kind.append(kind)
        self._pt_payload.append(payload)

    def send_to_neighbors(
        self,
        sender: VertexId,
        kind: str,
        payload: Tuple[Any, ...] = (),
        words: int = 1,
        exclude: Optional[VertexId] = None,
    ) -> int:
        """Vectorized whole-neighbourhood broadcast.

        Semantically identical to the base-class per-neighbour loop
        (sorted-neighbour emission order, partial-commit-then-raise on a
        bandwidth violation): small neighbourhoods and every error path
        delegate to that loop, so the vectorized path only ever commits
        a broadcast it has proven entirely within bandwidth.
        """
        try:
            sender_index = self._index[sender]
        except (KeyError, TypeError):
            # Unknown vertex: the loop raises the canonical error.
            return Engine.send_to_neighbors(self, sender, kind, payload, words, exclude)
        indptr = self._indptr
        start = indptr[sender_index]
        end = indptr[sender_index + 1]
        degree = end - start
        if degree < _VECTOR_DEGREE_FLOOR:
            return Engine.send_to_neighbors(self, sender, kind, payload, words, exclude)
        if words < 1:
            raise ValueError(f"a message must carry at least one word, got {words}")
        excluded_pos = -1
        if exclude is not None:
            info = self._edge_info.get((sender, exclude))
            if info is not None:
                excluded_pos = info[0] - start
        count = degree - 1 if excluded_pos >= 0 else degree

        band = self._band
        base = self._gen_base
        generation = self._generation
        bandwidth = self.bandwidth
        if self._out_gen[sender_index] != generation:
            # Nothing charged from this vertex this round: every slot
            # reads as zero used, so the whole broadcast fits iff one
            # message does.  One slice fill stamps the new counters.
            if words > bandwidth:
                return Engine.send_to_neighbors(self, sender, kind, payload, words, exclude)
            if excluded_pos >= 0:
                preserved = int(band[start + excluded_pos])
            band[start:end] = base + words
            if excluded_pos >= 0:
                band[start + excluded_pos] = preserved
            self._out_gen[sender_index] = generation
        else:
            used = band[start:end] - base
            np.maximum(used, 0, out=used)
            over = used + words > bandwidth
            if excluded_pos >= 0:
                over[excluded_pos] = False
            if over.any():
                # Replay sequentially: commits the same prefix and
                # raises the same error at the same neighbour as the
                # reference semantics demand.
                return Engine.send_to_neighbors(self, sender, kind, payload, words, exclude)
            stamped = used + (base + words)
            if excluded_pos >= 0:
                stamped[excluded_pos] = band[start + excluded_pos]
            band[start:end] = stamped

        round_kind = self._round_kind
        if round_kind is None:
            self._round_kind = kind
        elif round_kind is not False and round_kind != kind:
            self._round_kind = False
        if self._pt_sender:
            # Staged point sends precede this broadcast in global send
            # order; commit them to the columns before the block write.
            self._flush_staged()
        fill = self._fill
        need = fill + count
        if need > self._cap:
            self._grow(need)
        nbr_dense = self._nbr_dense
        col_receiver = self._col_receiver
        if excluded_pos < 0:
            col_receiver[fill:need] = nbr_dense[start:end]
        else:
            split = fill + excluded_pos
            col_receiver[fill:split] = nbr_dense[start : start + excluded_pos]
            col_receiver[split:need] = nbr_dense[start + excluded_pos + 1 : end]
        self._col_sender[fill:need] = sender_index
        self._col_words[fill:need] = words
        self._col_kind[fill:need] = [kind] * count
        self._col_payload[fill:need] = [payload] * count
        self._fill = need
        return count

    def _flush_staged(self) -> None:
        """Commit staged point sends into the numpy message columns.

        One vectorized slice assignment per column (numpy converts the
        whole Python-int list at C speed) instead of one scalar store
        per send; the staged run keeps its send order, so the columns
        read exactly as if every ``send`` had written them directly.
        """
        staged = len(self._pt_sender)
        if not staged:
            return
        fill = self._fill
        need = fill + staged
        if need > self._cap:
            self._grow(need)
        self._col_sender[fill:need] = self._pt_sender
        self._col_receiver[fill:need] = self._pt_receiver
        self._col_words[fill:need] = self._pt_words
        self._col_kind[fill:need] = self._pt_kind
        self._col_payload[fill:need] = self._pt_payload
        self._fill = need
        self._pt_sender.clear()
        self._pt_receiver.clear()
        self._pt_words.clear()
        self._pt_kind.clear()
        self._pt_payload.clear()

    def _grow(self, need: int) -> None:
        """Geometrically grow the message columns to hold ``need`` entries."""
        cap = max(need, self._cap * 2, 16)
        for name in ("_col_sender", "_col_receiver", "_col_words"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=np.int64)
            grown[: len(old)] = old
            setattr(self, name, grown)
        self._col_kind.extend([None] * (cap - len(self._col_kind)))
        self._col_payload.extend([None] * (cap - len(self._col_payload)))
        self._cap = cap

    def remaining_capacity(self, sender: VertexId, receiver: VertexId) -> int:
        """Words still available this round over the directed edge ``sender -> receiver``."""
        info = self._edge_info.get((sender, receiver))
        if info is None:
            return self.bandwidth
        base = self._gen_base
        value = int(self._band[info[0]])
        used = value - base if value > base else 0
        return self.bandwidth - used

    def pending_count(self) -> int:
        """Number of messages queued for delivery in the next round."""
        return self._fill + len(self._pt_sender)

    def deliver_round(self) -> Dict[VertexId, List[FastMessage]]:
        """Advance the clock by one round and deliver all queued messages.

        Same contract as the other kernels: receivers appear in
        first-message order, per-receiver lists preserve global send
        order, and counters are charged at delivery time -- here as
        array reductions over the structure-of-arrays columns.
        """
        metrics = self.metrics
        metrics.record_round()
        sent_round = self._round_value
        self._round_value = metrics.rounds
        self._generation += 1
        self._gen_base = self._generation * self._band_span
        staged = len(self._pt_sender)
        if not self._fill and not staged:
            return {}
        round_kind = self._round_kind
        self._round_kind = None
        vertex_of = self._vertex_of
        if not self._fill and staged <= _EAGER_DELIVERY_LIMIT:
            # Pure point-send round: the staged Python lists already hold
            # everything in send order, so the inboxes are built without
            # touching numpy at all (the fast kernel's exact cost shape).
            if round_kind is False:
                metrics.record_bulk(staged, sum(self._pt_words), kinds=self._pt_kind)
            else:
                metrics.record_bulk(staged, sum(self._pt_words), kind=round_kind)
            inboxes: Dict[VertexId, List[FastMessage]] = {}
            tuple_new = tuple.__new__
            for s, r, k, p, w in zip(
                self._pt_sender,
                self._pt_receiver,
                self._pt_kind,
                self._pt_payload,
                self._pt_words,
            ):
                receiver = vertex_of[r]
                bucket = inboxes.get(receiver)
                if bucket is None:
                    inboxes[receiver] = bucket = []
                bucket.append(
                    tuple_new(
                        FastMessage, (vertex_of[s], receiver, k, p, w, sent_round)
                    )
                )
            self._pt_sender.clear()
            self._pt_receiver.clear()
            self._pt_words.clear()
            self._pt_kind.clear()
            self._pt_payload.clear()
            return inboxes
        self._flush_staged()
        fill = self._fill
        self._fill = 0
        if fill <= _EAGER_DELIVERY_LIMIT:
            # Small round: the columns are consumed into message tuples
            # right here, so no snapshot of any buffer is needed.
            words_list = self._col_words[:fill].tolist()
            kinds = self._col_kind[:fill]
            if round_kind is False:
                metrics.record_bulk(fill, sum(words_list), kinds=kinds)
            else:
                metrics.record_bulk(fill, sum(words_list), kind=round_kind)
            inboxes: Dict[VertexId, List[FastMessage]] = {}
            tuple_new = tuple.__new__
            for s, r, k, p, w in zip(
                self._col_sender[:fill].tolist(),
                self._col_receiver[:fill].tolist(),
                kinds,
                self._col_payload,
                words_list,
            ):
                receiver = vertex_of[r]
                bucket = inboxes.get(receiver)
                if bucket is None:
                    inboxes[receiver] = bucket = []
                bucket.append(
                    tuple_new(
                        FastMessage, (vertex_of[s], receiver, k, p, w, sent_round)
                    )
                )
            return inboxes
        # Large round: hand the filled buffers to the inboxes object
        # outright and start the next round on fresh ones -- O(1) numpy
        # allocations instead of O(fill) snapshot copies.
        senders = self._col_sender[:fill]
        recv = self._col_receiver[:fill]
        words = self._col_words[:fill]
        kinds = self._col_kind
        payloads = self._col_payload
        cap = self._cap
        self._col_sender = np.empty(cap, dtype=np.int64)
        self._col_receiver = np.empty(cap, dtype=np.int64)
        self._col_words = np.empty(cap, dtype=np.int64)
        self._col_kind = [None] * cap
        self._col_payload = [None] * cap
        if round_kind is False:
            metrics.record_bulk(fill, int(words.sum()), kinds=kinds[:fill])
        else:
            metrics.record_bulk(fill, int(words.sum()), kind=round_kind)
        return _LazyInboxes(senders, recv, kinds, payloads, words, sent_round, vertex_of)

    def idle_rounds(self, count: int) -> None:
        """Advance the clock by ``count`` silent rounds (no messages)."""
        if count < 0:
            raise SimulationError(f"cannot advance the clock by {count} rounds")
        if self._fill or self._pt_sender:
            raise SimulationError("cannot declare idle rounds while messages are pending")
        for _ in range(count):
            self.metrics.record_round()
        self._round_value = self.metrics.rounds
        self._generation += count
        self._gen_base = self._generation * self._band_span


# ---------------------------------------------------------------------- #
# arena lanes (BatchedEngine integration)
# ---------------------------------------------------------------------- #


class _ArrayArenaLane(ArrayNetwork):
    """An :class:`ArrayNetwork` over one scenario of a batched arena.

    The bandwidth counters and the numeric message columns are *views*
    into arena-wide arrays (one shared allocation per batch), sliced at
    the scenario's disjoint slot range; a vend between cells restores
    freshly-constructed state in O(n) via :meth:`_reset` instead of
    rebuilding anything.  If a cell outgrows its slice (bandwidth > 1
    broadcasts stacking messages), :meth:`ArrayNetwork._grow` quietly
    replaces the views with private arrays -- correctness never depends
    on staying inside the shared buffer.
    """

    __slots__ = ()

    def __init__(
        self,
        graph: nx.Graph,
        layout: _CSRLayout,
        bandwidth: int,
        band: Any,
        columns: Tuple[Any, Any, Any],
    ) -> None:
        if bandwidth < 1:
            raise SimulationError(f"bandwidth must be >= 1, got {bandwidth}")
        self._attach(graph, layout, bandwidth, band, columns)

    def _reset(self) -> None:
        """Restore freshly-constructed state (start of a new cell).

        Bandwidth counters go stale by generation bump (their slot range
        is private to this lane), the fill counter rewinds, and the
        per-vertex scratch memories are dropped.
        """
        self.metrics = Metrics()
        self._round_value = 0
        self._generation += 1
        self._gen_base = self._generation * self._band_span
        self._fill = 0
        self._round_kind = None
        self._pt_sender.clear()
        self._pt_receiver.clear()
        self._pt_words.clear()
        self._pt_kind.clear()
        self._pt_payload.clear()
        for node in self._nodes.values():
            node.memory.clear()


def make_arena_lane(arena, piece, bandwidth: int) -> _ArrayArenaLane:
    """Construct an array lane over ``piece``'s slice of ``arena``.

    Called (lazily) by
    :meth:`~repro.simulator.fast_network.BatchedEngine.array_lane`; the
    per-bandwidth counter arrays and the three numeric message-column
    arrays span the whole arena and are allocated here on first use.
    Growing the arena afterwards reallocates them -- existing lanes keep
    views of the old (still valid, disjoint) buffers, new lanes slice
    the new ones.
    """
    if np is None:
        raise ConfigurationError(
            f"the 'array' engine needs numpy: {_NUMPY_MISSING_REASON}"
        )
    layout = csr_layout(piece.graph)
    total = arena._indptr[-1]
    stop = piece.slot_base + layout.slot_count
    counters = arena._array_counters.get(bandwidth)
    if counters is None or len(counters) < total:
        counters = np.zeros(total, dtype=np.int64)
        arena._array_counters[bandwidth] = counters
    columns = arena._array_columns
    if columns is None or len(columns[0]) < total:
        columns = tuple(np.empty(total, dtype=np.int64) for _ in range(3))
        arena._array_columns = columns
    return _ArrayArenaLane(
        piece.graph,
        layout,
        bandwidth,
        counters[piece.slot_base : stop],
        tuple(column[piece.slot_base : stop] for column in columns),
    )


# ---------------------------------------------------------------------- #
# registration
# ---------------------------------------------------------------------- #


def _register() -> None:
    """(Re-)register the engine according to numpy's availability."""
    if np is not None:
        register_engine("array", ArrayNetwork)
    else:
        register_unavailable_engine("array", _NUMPY_MISSING_REASON)


_register()
