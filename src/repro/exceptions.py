"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses signal
which subsystem rejected the input or detected an inconsistency.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GraphError(ReproError):
    """The input graph violates a requirement (connectivity, weights, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph received a disconnected one."""


class WeightError(GraphError):
    """Edge weights are missing, non-positive, or not unique when required."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class BandwidthExceededError(SimulationError):
    """A protocol attempted to push more words over an edge than the model allows."""


class ProtocolError(SimulationError):
    """A distributed protocol reached an inconsistent local state."""


class ConvergenceError(SimulationError):
    """A protocol failed to terminate within its proven round bound.

    The round driver annotates instances with ``rounds_limit`` (the
    limit that fired), ``finished_participants`` and
    ``pending_messages`` so callers can report *how* a protocol stalled
    without parsing the message.
    """

    rounds_limit: int = 0
    finished_participants: int = 0
    pending_messages: int = 0


class NonTerminationError(SimulationError):
    """A run under an injected network condition failed to terminate.

    Raised instead of hanging when a fault schedule (node crashes,
    unbounded message loss) prevents an algorithm from reaching
    quiescence: either the conditioned engine's global round cap fired,
    or a protocol-level :class:`ConvergenceError` was converted because
    a :class:`~repro.conditions.NetworkCondition` was active.  Carries
    the cap and the costs observed up to the abort so campaign rows can
    record the partial execution.
    """

    def __init__(
        self,
        message: str,
        round_cap: "int | None" = None,
        rounds: "int | None" = None,
        messages: "int | None" = None,
        words: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.round_cap = round_cap
        self.rounds = rounds
        self.messages = messages
        self.words = words


class FragmentError(ReproError):
    """An MST fragment or forest violates a structural invariant."""


class VerificationError(ReproError):
    """A verification check failed (wrong MST, broken invariant, bound violation)."""


class ConfigurationError(ReproError):
    """An algorithm was configured with invalid parameters."""
