"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses signal
which subsystem rejected the input or detected an inconsistency.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class GraphError(ReproError):
    """The input graph violates a requirement (connectivity, weights, ...)."""


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph received a disconnected one."""


class WeightError(GraphError):
    """Edge weights are missing, non-positive, or not unique when required."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class BandwidthExceededError(SimulationError):
    """A protocol attempted to push more words over an edge than the model allows."""


class ProtocolError(SimulationError):
    """A distributed protocol reached an inconsistent local state."""


class ConvergenceError(SimulationError):
    """A protocol failed to terminate within its proven round bound."""


class FragmentError(ReproError):
    """An MST fragment or forest violates a structural invariant."""


class VerificationError(ReproError):
    """A verification check failed (wrong MST, broken invariant, bound violation)."""


class ConfigurationError(ReproError):
    """An algorithm was configured with invalid parameters."""
