"""Registry of the distributed MST algorithms this package implements.

The experiment runners (:mod:`repro.analysis.experiments`) and the
campaign orchestration layer (:mod:`repro.campaign`) both need to turn
an algorithm *name* into a callable ``(graph, RunConfig) -> MSTRunResult``.
Keeping the registry in its own leaf module lets both layers share one
source of truth without importing each other.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import networkx as nx

from .baselines.ghs import ghs_style_mst
from .baselines.gkp import gkp_mst
from .baselines.prs import prs_style_mst
from .config import RunConfig
from .core.elkin_mst import compute_mst
from .core.results import MSTRunResult
from .exceptions import ConfigurationError

#: Algorithm name -> runner.  All runners share the RunConfig contract.
ALGORITHMS: Dict[str, Callable[[nx.Graph, RunConfig], MSTRunResult]] = {
    "elkin": compute_mst,
    "ghs": ghs_style_mst,
    "gkp": gkp_mst,
    "prs": prs_style_mst,
}


def available_algorithms() -> List[str]:
    """Sorted names accepted by ``algorithm`` arguments across the package."""
    return sorted(ALGORITHMS)


def run_algorithm(graph: nx.Graph, algorithm: str, config: RunConfig) -> MSTRunResult:
    """Run ``algorithm`` (by name) on ``graph`` under ``config``.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown
    names; the message lists the available algorithms so sweep typos are
    easy to diagnose.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(available_algorithms())}"
        )
    return ALGORITHMS[algorithm](graph, config)
