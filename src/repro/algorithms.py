"""Capability-aware registry of the MST algorithms this package implements.

Every runnable algorithm -- the paper's, the distributed baselines and
the sequential references -- is described by an :class:`AlgorithmInfo`:
the runner callable plus the capability metadata sweep tooling needs to
reason about it (is it distributed? does the CONGEST bandwidth affect
it? which complexity class do its round/message counts belong to?).

The experiment runners (:mod:`repro.analysis.experiments`), the campaign
layer (:mod:`repro.campaign`) and the scenario facade (:mod:`repro.api`)
all dispatch by *name* through :func:`run_algorithm`, so this module is
the single place where a name becomes a callable.  Keeping it a leaf
module lets every layer share one source of truth without importing each
other.

Third-party algorithms join via :func:`register_algorithm`; the
sequential references ride on the adapter in
:mod:`repro.baselines.sequential`, which is what makes ``kruskal`` /
``prim`` / ``boruvka_seq`` legal values everywhere an algorithm name is
accepted (``compare_algorithms``, ``repro-mst sweep --algorithms``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import networkx as nx

from .baselines.boruvka_seq import boruvka_mst
from .baselines.ghs import ghs_style_mst
from .baselines.gkp import gkp_mst
from .baselines.kruskal import kruskal_mst
from .baselines.prim import prim_dense_mst, prim_mst
from .baselines.prs import prs_style_mst
from .baselines.sequential import sequential_runner
from .conditions.proxy import condition_scope
from .config import RunConfig
from .core.elkin_mst import compute_mst
from .core.results import MSTRunResult
from .exceptions import (
    ConfigurationError,
    ConvergenceError,
    FragmentError,
    NonTerminationError,
    ProtocolError,
)

#: The runner contract every registered algorithm implements.
AlgorithmRunner = Callable[[nx.Graph, Optional[RunConfig]], MSTRunResult]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: the runner plus its capability metadata.

    Attributes:
        name: identifier accepted by every ``algorithm`` argument.
        runner: callable implementing the
            ``(graph, Optional[RunConfig]) -> MSTRunResult`` contract.
        family: coarse grouping for presentation -- ``"paper"``,
            ``"distributed-baseline"`` or ``"sequential-baseline"``.
        description: one-line human description.
        is_distributed: False for local (non-simulated) computations;
            such runners report ``rounds = messages = 0``.
        supports_bandwidth: True when the CONGEST(b log n) bandwidth
            parameter changes the runner's measured costs; sequential
            references record ``b`` but ignore it.
        round_bound: asymptotic round-complexity class (informational).
        message_bound: asymptotic message-complexity class (informational).
    """

    name: str
    runner: AlgorithmRunner
    family: str
    description: str = ""
    is_distributed: bool = True
    supports_bandwidth: bool = True
    round_bound: str = ""
    message_bound: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"algorithm name must be a non-empty string, got {self.name!r}"
            )
        if not callable(self.runner):
            raise ConfigurationError(f"runner of algorithm {self.name!r} is not callable")


_REGISTRY: Dict[str, AlgorithmInfo] = {}


def register_algorithm(info: AlgorithmInfo) -> None:
    """Register ``info`` under ``info.name``.

    Registering a name twice replaces the previous entry, which lets
    tests substitute instrumented runners.
    """
    _REGISTRY[info.name] = info


def algorithm_info(name: str) -> AlgorithmInfo:
    """The :class:`AlgorithmInfo` registered under ``name``.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown
    names; the message lists the available algorithms so sweep typos are
    easy to diagnose.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from None


def available_algorithms(distributed_only: bool = False) -> List[str]:
    """Sorted names accepted by ``algorithm`` arguments across the package."""
    return sorted(
        name
        for name, info in _REGISTRY.items()
        if info.is_distributed or not distributed_only
    )


def algorithm_registry() -> Mapping[str, AlgorithmInfo]:
    """Read-only snapshot of the registry (name -> info)."""
    return dict(_REGISTRY)


def run_algorithm(
    graph: nx.Graph, algorithm: str, config: Optional[RunConfig] = None
) -> MSTRunResult:
    """Run ``algorithm`` (by name) on ``graph`` under ``config``.

    This is the single dispatch point every layer funnels through.  A
    generator seed threaded in via ``config.seed`` is recorded in
    ``result.details`` so provenance survives serialization regardless of
    which entrypoint assembled the config.
    """
    info = algorithm_info(algorithm)
    config = config if config is not None else RunConfig()
    condition = config.condition
    if condition is None or not info.is_distributed:
        # Sequential references never build an engine, so there is no
        # network for a condition to act on; they stay the free oracle
        # for whatever the conditioned distributed run produces.
        result = info.runner(graph, config)
    else:
        with condition_scope(condition, run_seed=config.seed) as scope:
            try:
                result = info.runner(graph, config)
            except NonTerminationError as error:
                telemetry = scope.telemetry()
                error.condition_telemetry = telemetry
                if error.rounds is None:
                    cost = scope.cost()
                    error.rounds = cost.rounds
                    error.messages = cost.messages
                    error.words = cost.words
                raise
            except ConvergenceError as error:
                # Under injected faults a blown protocol round limit is
                # an expected outcome (e.g. a crash-stop schedule), not
                # a protocol bug: surface it as the typed condition
                # result with the cap and partial costs recorded.
                cost = scope.cost()
                converted = NonTerminationError(
                    f"run under condition {condition.label()!r} did not "
                    f"terminate: {error}",
                    round_cap=getattr(error, "rounds_limit", 0) or None,
                    rounds=cost.rounds,
                    messages=cost.messages,
                    words=cost.words,
                )
                converted.condition_telemetry = scope.telemetry()
                raise converted from error
            except (FragmentError, ProtocolError) as error:
                # Crash omission windows legitimately break protocol
                # invariants (a crashed vertex's fragment never learns
                # its outgoing edge, so merging stalls in an
                # inconsistent state).  Only an active crash model gets
                # this conversion: under loss/delay/adversary -- which
                # preserve eventual delivery -- such errors still mean a
                # protocol bug and propagate unchanged.
                if condition.crash is None:
                    raise
                cost = scope.cost()
                converted = NonTerminationError(
                    f"run under condition {condition.label()!r} cannot "
                    f"terminate (crash-induced {type(error).__name__}): {error}",
                    rounds=cost.rounds,
                    messages=cost.messages,
                    words=cost.words,
                )
                converted.condition_telemetry = scope.telemetry()
                raise converted from error
        result.details["condition"] = scope.telemetry()
    if config.seed is not None:
        result.details.setdefault("seed", config.seed)
    return result


# -- built-in entries ----------------------------------------------------

register_algorithm(
    AlgorithmInfo(
        name="elkin",
        runner=compute_mst,
        family="paper",
        description="Elkin's deterministic MST (PODC 2017), diameter-sensitive base forest",
        round_bound="O((D + sqrt(n/b)) log n + log^2 n)",
        message_bound="O(|E| log n + n log n log* n)",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="ghs",
        runner=ghs_style_mst,
        family="distributed-baseline",
        description="GHS-style synchronous Boruvka (no fragment-diameter control)",
        supports_bandwidth=True,
        round_bound="O(n log n)",
        message_bound="O((|E| + n) log n)",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="gkp",
        runner=gkp_mst,
        family="distributed-baseline",
        description="Garay-Kutten-Peleg: Controlled-GHS with k = sqrt(n) + Pipeline-MST",
        round_bound="O(D + sqrt(n) log* n)",
        message_bound="Theta(|E| + n^(3/2))",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="prs",
        runner=prs_style_mst,
        family="distributed-baseline",
        description="PRS16-style second phase over a forced sqrt(n) base forest",
        round_bound="O((D + sqrt(n)) log n)",
        message_bound="Theta(D sqrt(n)) per phase on high-D graphs",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="kruskal",
        runner=sequential_runner("kruskal", kruskal_mst),
        family="sequential-baseline",
        description="Sequential Kruskal (union-find); verification ground truth",
        is_distributed=False,
        supports_bandwidth=False,
        round_bound="0 (local computation)",
        message_bound="0 (local computation)",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="prim",
        runner=sequential_runner("prim", prim_mst),
        family="sequential-baseline",
        description="Sequential Prim (binary heap); second independent reference",
        is_distributed=False,
        supports_bandwidth=False,
        round_bound="0 (local computation)",
        message_bound="0 (local computation)",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="prim_dense",
        runner=sequential_runner("prim_dense", prim_dense_mst),
        family="sequential-baseline",
        description="Array-based O(n^2) Jarnik-Prim; dense-graph reference for the zoo",
        is_distributed=False,
        supports_bandwidth=False,
        round_bound="0 (local computation)",
        message_bound="0 (local computation)",
    )
)
register_algorithm(
    AlgorithmInfo(
        name="boruvka_seq",
        runner=sequential_runner("boruvka_seq", boruvka_mst),
        family="sequential-baseline",
        description="Sequential Boruvka phases; simulator-free mirror of the distributed shape",
        is_distributed=False,
        supports_bandwidth=False,
        round_bound="0 (local computation)",
        message_bound="0 (local computation)",
    )
)


def _algorithms_view() -> Dict[str, AlgorithmRunner]:
    """Legacy ``ALGORITHMS`` mapping (name -> bare runner)."""
    return {name: info.runner for name, info in _REGISTRY.items()}


#: Deprecated compatibility view of the registry.  Computed once at
#: import; use :func:`algorithm_registry` / :func:`register_algorithm`
#: to observe or mutate the live registry.
ALGORITHMS: Dict[str, AlgorithmRunner] = _algorithms_view()
