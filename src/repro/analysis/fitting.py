"""Scaling-law fitting helpers.

The reproduction does not try to match absolute constants (our substrate
is a simulator, not the authors' model network); what must match is the
*shape* of the curves: message counts growing near-linearly in ``m`` for
the paper's algorithm versus ``n^{3/2}`` for GKP, round counts growing
like ``sqrt(n) log n`` versus ``n log n`` for GHS, and so on.  The
helpers here fit power laws on log-log scales and compute ratio series,
which is what the benchmark output and EXPERIMENTS.md report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

try:  # numpy is the optional [fast] extra; fitting falls back without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from ..exceptions import ReproError


@dataclass(frozen=True)
class PowerLawFit:
    """A least-squares fit of ``y ~= scale * x ** exponent``."""

    exponent: float
    scale: float
    residual: float

    def predict(self, x: float) -> float:
        return self.scale * (x**self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = scale * x^exponent`` by linear regression in log-log space.

    Requires at least two strictly positive points.  The ``residual`` is
    the mean squared error of the fit in log space (useful for judging
    whether a power law is a reasonable description at all).
    """
    if len(xs) != len(ys):
        raise ReproError(f"mismatched series lengths: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ReproError("need at least two points to fit a power law")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ReproError("power-law fitting requires strictly positive values")
    if np is not None:
        log_x = np.log(np.asarray(xs, dtype=float))
        log_y = np.log(np.asarray(ys, dtype=float))
        design = np.vstack([log_x, np.ones_like(log_x)]).T
        (slope, intercept), residuals, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
        if residuals.size:
            mse = float(residuals[0]) / len(xs)
        else:
            mse = float(np.mean((design @ np.array([slope, intercept]) - log_y) ** 2))
        return PowerLawFit(
            exponent=float(slope), scale=float(np.exp(intercept)), residual=mse
        )
    # Pure-Python ordinary least squares (the closed form for one
    # predictor plus intercept is mathematically the lstsq solution).
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    count = len(log_x)
    mean_x = sum(log_x) / count
    mean_y = sum(log_y) / count
    variance = sum((lx - mean_x) ** 2 for lx in log_x)
    if variance == 0:
        raise ReproError("power-law fitting requires at least two distinct x values")
    slope = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)
    ) / variance
    intercept = mean_y - slope * mean_x
    mse = sum(
        (slope * lx + intercept - ly) ** 2 for lx, ly in zip(log_x, log_y)
    ) / count
    return PowerLawFit(
        exponent=slope, scale=math.exp(intercept), residual=mse
    )


def ratio_series(numerators: Sequence[float], denominators: Sequence[float]) -> list[float]:
    """Element-wise ratios, used for "who wins by what factor" summaries."""
    if len(numerators) != len(denominators):
        raise ReproError(
            f"mismatched series lengths: {len(numerators)} vs {len(denominators)}"
        )
    ratios = []
    for numerator, denominator in zip(numerators, denominators):
        if denominator == 0:
            raise ReproError("cannot compute a ratio with a zero denominator")
        ratios.append(numerator / denominator)
    return ratios
