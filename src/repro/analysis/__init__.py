"""Analysis utilities: bound formulas, scaling fits, tables, experiment runners.

The benchmark harness is intentionally thin; all of the logic that turns
algorithm runs into the rows and series the paper's claims predict lives
here so that the examples, the tests and the benchmarks share one code
path.
"""

from .bounds import (
    controlled_ghs_message_bound,
    controlled_ghs_time_bound,
    elkin_message_bound_formula,
    elkin_time_bound_formula,
    ghs_time_bound,
    gkp_message_bound,
    log2_ceil,
    log_star,
)
from .experiments import (
    compare_algorithms,
    ExperimentRow,
    run_single,
    sweep_bandwidth,
    sweep_graphs,
)
from .fitting import fit_power_law, ratio_series
from .incremental import MaterializedAnalytics, PowerLawStats
from .report import (
    analyze_rows,
    analyze_store,
    BoundViolation,
    CampaignAnalysis,
    render_markdown,
    ScalingFit,
    write_report,
)
from .tables import format_table

__all__ = [
    "controlled_ghs_message_bound",
    "controlled_ghs_time_bound",
    "elkin_message_bound_formula",
    "elkin_time_bound_formula",
    "ghs_time_bound",
    "gkp_message_bound",
    "log2_ceil",
    "log_star",
    "fit_power_law",
    "ratio_series",
    "MaterializedAnalytics",
    "PowerLawStats",
    "format_table",
    "BoundViolation",
    "CampaignAnalysis",
    "ScalingFit",
    "analyze_rows",
    "analyze_store",
    "render_markdown",
    "write_report",
    "ExperimentRow",
    "compare_algorithms",
    "run_single",
    "sweep_bandwidth",
    "sweep_graphs",
]
