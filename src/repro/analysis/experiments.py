"""Legacy experiment runners (deprecated shims over :mod:`repro.api`).

These entrypoints predate the scenario facade and are kept working for
existing notebooks, benchmarks and examples.  New code should build
:class:`~repro.api.Scenario` objects and execute them through a
:class:`~repro.api.Runner` (see the README's Migration section for the
exact mapping); the shims here construct those scenarios internally, so
both spellings share one execution path and produce identical rows.

``run_single`` is the one exception: it is not a shim but the package's
*single-execution contract* -- the campaign executor (and therefore the
facade) calls it for every cell, so a direct call and a sweep cell can
never diverge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from ..algorithms import available_algorithms, run_algorithm
from ..config import RunConfig
from ..core.results import MSTRunResult
from ..graphs.generators import GraphSpec
from ..simulator.engine import DEFAULT_ENGINE

#: One row of experiment output (column name -> value).
ExperimentRow = Dict[str, object]

__all__ = [
    "ExperimentRow",
    "available_algorithms",
    "run_single",
    "sweep_graphs",
    "compare_algorithms",
    "sweep_bandwidth",
]


def run_single(
    graph: nx.Graph,
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    base_forest_k: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
    seed: Optional[int] = None,
    collect_telemetry: bool = True,
    strict_bounds: bool = False,
    condition: Optional[object] = None,
) -> MSTRunResult:
    """Run one MST algorithm on ``graph`` and (optionally) verify it.

    This is the bottom of every execution path: the campaign executor
    drives each cell through this function, and the :mod:`repro.api`
    facade routes through the campaign executor.  ``seed`` (provenance
    of the generator that produced ``graph``), ``collect_telemetry``,
    ``strict_bounds`` and ``condition`` (a
    :class:`~repro.conditions.NetworkCondition` or anything
    ``normalize_condition`` accepts) are threaded into the
    :class:`~repro.config.RunConfig` verbatim; a provided seed is
    recorded in ``result.details`` by the registry dispatch, so it is
    captured whether it arrives via this argument or via a caller-built
    config.
    """
    config = RunConfig(
        bandwidth=bandwidth,
        base_forest_k=base_forest_k,
        engine=engine,
        seed=seed,
        collect_telemetry=collect_telemetry,
        strict_bounds=strict_bounds,
        condition=condition,
    )
    result = run_algorithm(graph, algorithm, config)
    # Workload-zoo instances that plant a known MST (see
    # repro.verify.planted_checks) surface it in the result details for
    # provenance, and verification checks the run against it -- an
    # oracle independent of the sequential references.
    from ..verify.planted_checks import assert_matches_planted_mst, planted_mst_edges

    planted = planted_mst_edges(graph)
    if planted is not None:
        result.details.setdefault(
            "planted_mst", [list(edge) for edge in sorted(planted)]
        )
    if verify:
        from ..verify.mst_checks import verify_mst_result

        verify_mst_result(graph, result)
        if planted is not None:
            assert_matches_planted_mst(graph, result, expected=planted)
    return result


def _facade_rows(
    graphs: Sequence[object],
    algorithms: Sequence[str],
    bandwidths: Sequence[int],
    engine: str,
    verify: bool,
    compute_diameter: bool,
    label: Optional[str] = None,
) -> List[ExperimentRow]:
    """Expand the axes into scenarios and run them through one Runner."""
    from ..api import Runner, Scenario
    from ..campaign.spec import inline_graph_spec

    # Normalize each distinct graph once, not once per expanded cell:
    # serializing a prebuilt graph into an edge_list spec is O(m).
    graphs = [
        graph if isinstance(graph, GraphSpec) else inline_graph_spec(graph)
        for graph in graphs
    ]
    scenarios = [
        Scenario(
            graph=graph,
            algorithm=algorithm,
            config=RunConfig(bandwidth=bandwidth, engine=engine),
            verify=verify,
            label=label,
        )
        for graph in graphs
        for algorithm in algorithms
        for bandwidth in bandwidths
    ]
    runner = Runner(compute_diameter=compute_diameter)
    return [outcome.row for outcome in runner.run_many(scenarios)]


def sweep_graphs(
    specs: Sequence[GraphSpec],
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run ``algorithm`` on every spec and report one row per instance.

    .. deprecated:: 1.3
        Shim over :class:`repro.api.Runner`; build scenarios directly in
        new code.

    Rows include the measured rounds/messages and, for the paper's
    algorithm, the theorem bounds evaluated on the same instance together
    with the measured/bound ratios (values below 1.0 mean the bound
    holds with the calibrated constants).
    """
    return _facade_rows(
        list(specs), (algorithm,), (bandwidth,), engine, verify, compute_diameter
    )


def compare_algorithms(
    graph: nx.Graph,
    algorithms: Iterable[str] = ("elkin", "ghs", "gkp"),
    bandwidth: int = 1,
    verify: bool = True,
    label: str = "",
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run several algorithms on the same instance (the head-to-head experiments).

    .. deprecated:: 1.3
        Shim over :class:`repro.api.Runner`; build scenarios directly in
        new code.

    The prebuilt ``graph`` is serialized into an ``edge_list`` spec, so
    the instance description (including the hop-diameter) is computed
    once and shared across all algorithm cells via the run store's
    graph-description cache.  Sequential references (``kruskal``,
    ``prim``, ``boruvka_seq``) are valid algorithm names; their rows
    report zero rounds and messages.
    """
    return _facade_rows(
        [graph],
        tuple(algorithms),
        (bandwidth,),
        engine,
        verify,
        compute_diameter,
        label=label or "instance",
    )


def sweep_bandwidth(
    graph: nx.Graph,
    bandwidths: Sequence[int] = (1, 2, 4, 8, 16),
    algorithm: str = "elkin",
    verify: bool = True,
    label: str = "",
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run the same instance under several CONGEST(b log n) bandwidths (Theorem 3.2).

    .. deprecated:: 1.3
        Shim over :class:`repro.api.Runner`; build scenarios directly in
        new code.
    """
    return _facade_rows(
        [graph],
        (algorithm,),
        tuple(bandwidths),
        engine,
        verify,
        compute_diameter=True,
        label=label or "instance",
    )
