"""Experiment runners shared by the benchmark harness and the examples.

Each runner takes declarative input (graph specs, algorithm names,
bandwidths), executes the corresponding simulated runs, verifies the
output against the sequential oracles, and returns flat row dictionaries
ready for :func:`repro.analysis.tables.format_table` or for
pytest-benchmark's ``extra_info``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import networkx as nx

from ..baselines.ghs import ghs_style_mst
from ..baselines.gkp import gkp_mst
from ..baselines.prs import prs_style_mst
from ..config import RunConfig
from ..core.elkin_mst import compute_mst
from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError
from ..graphs.generators import GraphSpec
from ..simulator.engine import DEFAULT_ENGINE
from ..graphs.properties import hop_diameter
from .bounds import elkin_message_bound_formula, elkin_time_bound_formula

#: One row of experiment output (column name -> value).
ExperimentRow = Dict[str, object]

_ALGORITHMS: Dict[str, Callable[[nx.Graph, RunConfig], MSTRunResult]] = {
    "elkin": lambda graph, config: compute_mst(graph, config),
    "ghs": lambda graph, config: ghs_style_mst(graph, config),
    "gkp": lambda graph, config: gkp_mst(graph, config),
    "prs": lambda graph, config: prs_style_mst(graph, config),
}


def available_algorithms() -> List[str]:
    """Names accepted by the ``algorithm`` arguments below."""
    return sorted(_ALGORITHMS)


def run_single(
    graph: nx.Graph,
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    base_forest_k: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> MSTRunResult:
    """Run one distributed MST algorithm on ``graph`` and (optionally) verify it."""
    if algorithm not in _ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(available_algorithms())}"
        )
    config = RunConfig(bandwidth=bandwidth, base_forest_k=base_forest_k, engine=engine)
    result = _ALGORITHMS[algorithm](graph, config)
    if verify:
        from ..verify.mst_checks import verify_mst_result

        verify_mst_result(graph, result)
    return result


def _describe(graph: nx.Graph, compute_diameter: bool) -> Dict[str, object]:
    row: Dict[str, object] = {
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
    }
    if compute_diameter:
        row["D"] = hop_diameter(graph)
    return row


def sweep_graphs(
    specs: Sequence[GraphSpec],
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run ``algorithm`` on every spec and report one row per instance.

    Rows include the measured rounds/messages and, for the paper's
    algorithm, the theorem bounds evaluated on the same instance together
    with the measured/bound ratios (values below 1.0 mean the bound
    holds with the calibrated constants).
    """
    rows: List[ExperimentRow] = []
    for spec in specs:
        graph = spec.build()
        row: ExperimentRow = {"graph": spec.label()}
        row.update(_describe(graph, compute_diameter))
        result = run_single(
            graph, algorithm=algorithm, bandwidth=bandwidth, verify=verify, engine=engine
        )
        row.update(
            {
                "algorithm": algorithm,
                "bandwidth": bandwidth,
                "rounds": result.rounds,
                "messages": result.messages,
            }
        )
        if algorithm == "elkin":
            diameter = int(row.get("D", result.details.get("bfs_depth", 0)))
            time_bound = elkin_time_bound_formula(result.n, diameter, bandwidth)
            message_bound = elkin_message_bound_formula(result.n, result.m)
            row.update(
                {
                    "k": result.details.get("k"),
                    "round_bound": round(time_bound),
                    "round_ratio": round(result.rounds / time_bound, 3),
                    "message_bound": round(message_bound),
                    "message_ratio": round(result.messages / message_bound, 3),
                }
            )
        rows.append(row)
    return rows


def compare_algorithms(
    graph: nx.Graph,
    algorithms: Iterable[str] = ("elkin", "ghs", "gkp"),
    bandwidth: int = 1,
    verify: bool = True,
    label: str = "",
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run several algorithms on the same instance (the head-to-head experiments)."""
    description = _describe(graph, compute_diameter)
    rows: List[ExperimentRow] = []
    for algorithm in algorithms:
        result = run_single(
            graph, algorithm=algorithm, bandwidth=bandwidth, verify=verify, engine=engine
        )
        row: ExperimentRow = {"graph": label or "instance"}
        row.update(description)
        row.update(
            {
                "algorithm": algorithm,
                "rounds": result.rounds,
                "messages": result.messages,
                "weight": round(result.total_weight, 3),
            }
        )
        rows.append(row)
    return rows


def sweep_bandwidth(
    graph: nx.Graph,
    bandwidths: Sequence[int] = (1, 2, 4, 8, 16),
    algorithm: str = "elkin",
    verify: bool = True,
    label: str = "",
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run the same instance under several CONGEST(b log n) bandwidths (Theorem 3.2)."""
    rows: List[ExperimentRow] = []
    description = _describe(graph, compute_diameter=True)
    for bandwidth in bandwidths:
        result = run_single(
            graph, algorithm=algorithm, bandwidth=bandwidth, verify=verify, engine=engine
        )
        row: ExperimentRow = {"graph": label or "instance", "bandwidth": bandwidth}
        row.update(description)
        row.update(
            {
                "k": result.details.get("k"),
                "rounds": result.rounds,
                "messages": result.messages,
            }
        )
        rows.append(row)
    return rows
