"""Experiment runners shared by the benchmark harness and the examples.

Since the campaign refactor these runners are thin wrappers over
:mod:`repro.campaign`: each call is expressed as a one-shot
:class:`~repro.campaign.spec.Campaign` and executed serially against an
in-memory run store, so the examples, the benchmarks and the
``repro-mst sweep`` CLI all share one execution path.  The historical
signatures are preserved; output rows are a superset of the historical
columns (``engine`` and ``seed`` are now recorded for provenance).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from ..algorithms import available_algorithms, run_algorithm
from ..config import RunConfig
from ..core.results import MSTRunResult
from ..graphs.generators import GraphSpec
from ..simulator.engine import DEFAULT_ENGINE

#: One row of experiment output (column name -> value).
ExperimentRow = Dict[str, object]

__all__ = [
    "ExperimentRow",
    "available_algorithms",
    "run_single",
    "sweep_graphs",
    "compare_algorithms",
    "sweep_bandwidth",
]


def run_single(
    graph: nx.Graph,
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    base_forest_k: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
    seed: Optional[int] = None,
    collect_telemetry: bool = True,
    strict_bounds: bool = False,
) -> MSTRunResult:
    """Run one distributed MST algorithm on ``graph`` and (optionally) verify it.

    ``seed`` (provenance of the generator that produced ``graph``),
    ``collect_telemetry`` and ``strict_bounds`` are threaded into the
    :class:`~repro.config.RunConfig` verbatim; a provided seed is also
    recorded in ``result.details`` so it survives serialization.
    """
    config = RunConfig(
        bandwidth=bandwidth,
        base_forest_k=base_forest_k,
        engine=engine,
        seed=seed,
        collect_telemetry=collect_telemetry,
        strict_bounds=strict_bounds,
    )
    result = run_algorithm(graph, algorithm, config)
    if seed is not None:
        result.details.setdefault("seed", seed)
    if verify:
        from ..verify.mst_checks import verify_mst_result

        verify_mst_result(graph, result)
    return result


def sweep_graphs(
    specs: Sequence[GraphSpec],
    algorithm: str = "elkin",
    bandwidth: int = 1,
    verify: bool = True,
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run ``algorithm`` on every spec and report one row per instance.

    Rows include the measured rounds/messages and, for the paper's
    algorithm, the theorem bounds evaluated on the same instance together
    with the measured/bound ratios (values below 1.0 mean the bound
    holds with the calibrated constants).
    """
    from ..campaign.executor import execute_campaign
    from ..campaign.spec import Campaign

    campaign = Campaign.from_grid(
        "sweep_graphs",
        graphs=list(specs),
        algorithms=(algorithm,),
        bandwidths=(bandwidth,),
        engines=(engine,),
        verify=verify,
    )
    return execute_campaign(campaign, jobs=1, compute_diameter=compute_diameter).rows


def compare_algorithms(
    graph: nx.Graph,
    algorithms: Iterable[str] = ("elkin", "ghs", "gkp"),
    bandwidth: int = 1,
    verify: bool = True,
    label: str = "",
    compute_diameter: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run several algorithms on the same instance (the head-to-head experiments).

    The prebuilt ``graph`` is serialized into an ``edge_list`` spec, so
    the instance description (including the hop-diameter) is computed
    once and shared across all algorithm cells via the run store's
    graph-description cache.
    """
    from ..campaign.executor import execute_campaign
    from ..campaign.spec import Campaign, inline_graph_spec

    campaign = Campaign.from_grid(
        "compare_algorithms",
        graphs=[inline_graph_spec(graph)],
        algorithms=tuple(algorithms),
        bandwidths=(bandwidth,),
        engines=(engine,),
        labels=[label or "instance"],
        verify=verify,
    )
    return execute_campaign(campaign, jobs=1, compute_diameter=compute_diameter).rows


def sweep_bandwidth(
    graph: nx.Graph,
    bandwidths: Sequence[int] = (1, 2, 4, 8, 16),
    algorithm: str = "elkin",
    verify: bool = True,
    label: str = "",
    engine: str = DEFAULT_ENGINE,
) -> List[ExperimentRow]:
    """Run the same instance under several CONGEST(b log n) bandwidths (Theorem 3.2)."""
    from ..campaign.executor import execute_campaign
    from ..campaign.spec import Campaign, inline_graph_spec

    campaign = Campaign.from_grid(
        "sweep_bandwidth",
        graphs=[inline_graph_spec(graph)],
        algorithms=(algorithm,),
        bandwidths=tuple(bandwidths),
        engines=(engine,),
        labels=[label or "instance"],
        verify=verify,
    )
    return execute_campaign(campaign, jobs=1).rows
