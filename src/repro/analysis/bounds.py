"""Closed-form versions of the paper's complexity bounds.

Each function evaluates one of the asymptotic bounds with an explicit
multiplicative constant (and a small additive slack that absorbs
low-order terms on tiny graphs).  The constants were calibrated once
against the simulator's accounting conventions and are deliberately
generous: the point of the bound checks is to catch *asymptotic*
regressions (a primitive suddenly costing a factor of ``n`` more), not to
re-prove the theorems' constants.
"""

from __future__ import annotations

import math


def log2_ceil(value: int) -> int:
    """``ceil(log2(value))`` with the convention that values <= 1 give 1."""
    if value <= 1:
        return 1
    return math.ceil(math.log2(value))


def log_star(value: float) -> int:
    """The iterated logarithm ``log* value`` (base 2), at least 1."""
    if value <= 2:
        return 1
    count = 0
    current = float(value)
    while current > 2:
        current = math.log2(current)
        count += 1
    return max(1, count)


def elkin_time_bound_formula(
    n: int, diameter: int, bandwidth: int = 1, constant: float = 12.0, slack: int = 80
) -> float:
    """Theorem 3.2 round bound: ``O((D + sqrt(n / b)) * log n)``."""
    return constant * (diameter + math.sqrt(n / bandwidth)) * log2_ceil(n) + slack


def elkin_message_bound_formula(
    n: int, m: int, constant: float = 12.0, slack: int = 300
) -> float:
    """Theorem 3.1/3.2 message bound: ``O(m log n + n log n log* n)``."""
    log_n = log2_ceil(n)
    return constant * (m * log_n + n * log_n * log_star(n)) + slack


def controlled_ghs_time_bound(
    n: int, k: int, constant: float = 30.0, slack: int = 60
) -> float:
    """Theorem 4.3 round bound: ``O(k log* n)``."""
    return constant * k * log_star(n) + slack


def controlled_ghs_message_bound(
    n: int, m: int, k: int, constant: float = 12.0, slack: int = 300
) -> float:
    """Theorem 4.3 message bound: ``O(m log k + n log k log* n)``."""
    log_k = log2_ceil(max(2, k))
    return constant * (m * log_k + n * log_k * log_star(n)) + slack


def gkp_message_bound(n: int, m: int, constant: float = 10.0, slack: int = 300) -> float:
    """Garay-Kutten-Peleg message bound: ``O(m + n^{3/2})`` (plus the phase-1 log factors)."""
    return constant * (m * log2_ceil(n) + n * math.sqrt(n) + n * log2_ceil(n) * log_star(n)) + slack


def ghs_time_bound(n: int, constant: float = 10.0, slack: int = 60) -> float:
    """Round bound of the GHS-style baseline: ``O(n log n)``."""
    return constant * n * log2_ceil(n) + slack


def pipeline_phase_time_bound(
    n: int, diameter: int, k: int, bandwidth: int = 1, constant: float = 12.0, slack: int = 40
) -> float:
    """Per-phase round bound of the second phase: ``O(D + k + n / (k b))`` (Equation (1))."""
    return constant * (diameter + k + n / (k * bandwidth)) + slack
