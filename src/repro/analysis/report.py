"""Campaign analysis: turn a run store into the paper's evidence tables.

The campaign layer can produce hundreds of rows per sweep; this module
is what consumes them at campaign scale.  :func:`analyze_rows` reduces
any collection of flat run rows (a :class:`~repro.campaign.store.RunStore`,
a ``CampaignReport``, a JSONL file) into a :class:`CampaignAnalysis`:

* per-family / per-algorithm result tables (rendered through
  :func:`~repro.analysis.tables.format_table`);
* power-law fits of rounds versus ``n`` and messages versus ``m`` per
  distributed algorithm (via :func:`~repro.analysis.fitting.fit_power_law`),
  annotated with the exponent the paper's Theorem 3.1/3.2 bounds
  predict;
* a theorem-bound audit of every row of the paper's algorithm -- the
  recorded bound columns when present, the
  :mod:`~repro.analysis.bounds` formulas re-evaluated on the row's
  instance description otherwise -- summarised as a violation count
  that should be **zero** on a faithful reproduction;
* the E9 head-to-head (paper versus the PRS16-style ``k = sqrt(n)``
  strategy) wherever a sweep ran both.

:func:`render_markdown` turns the analysis into an ``EXPERIMENTS.md``
document; ``repro-mst report`` and :meth:`repro.api.Runner.report` are
thin shims over these two calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ReproError
from .bounds import elkin_message_bound_formula, elkin_time_bound_formula
from .fitting import fit_power_law, PowerLawFit
from .tables import format_table

#: One flat run row, as produced by the campaign executor.
Row = Mapping[str, object]

#: Reference exponents predicted by the complexity classes: what the
#: fitted slope should be *at most* (modulo log factors, which log-log
#: fits absorb into a slowly drifting constant).
REFERENCE_EXPONENTS: Dict[Tuple[str, str], Tuple[float, str]] = {
    ("elkin", "messages"): (1.0, "Theorem 3.1: O(m log n + n log n log* n)"),
    ("elkin", "rounds"): (0.5, "Theorem 3.2: O((D + sqrt(n/b)) log n)"),
    ("prs", "messages"): (1.0, "Theta(D sqrt(n)) per phase on high-D graphs"),
    ("gkp", "messages"): (1.5, "Theta(m + n^(3/2))"),
    ("ghs", "messages"): (1.0, "O((m + n) log n)"),
    ("ghs", "rounds"): (1.0, "O(n log n)"),
}


@dataclass(frozen=True)
class ScalingFit:
    """One fitted scaling law: ``metric ~ scale * x_name ** exponent``."""

    algorithm: str
    metric: str
    x_name: str
    points: int
    fit: Optional[PowerLawFit]
    reference: str = ""
    note: str = ""


@dataclass(frozen=True)
class BoundViolation:
    """One row of the paper's algorithm that exceeded a theorem bound."""

    graph: str
    metric: str
    measured: float
    bound: float


@dataclass
class CampaignAnalysis:
    """Everything :func:`analyze_rows` distils from a sweep's rows."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    families: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    fits: List[ScalingFit] = field(default_factory=list)
    violations: List[BoundViolation] = field(default_factory=list)
    #: elkin rows audited against the bounds.  The message bound is
    #: audited for every one of them; violations ⊆ checked.
    bound_checked: int = 0
    #: elkin rows whose *round* bound could not be audited (no recorded
    #: bound and no D); their message bound was still checked.
    bound_skipped: int = 0
    #: E9 head-to-head rows: one per instance both elkin and prs ran on.
    crossover: List[Dict[str, object]] = field(default_factory=list)
    #: Degradation table: one row per conditioned cell, paired with its
    #: fault-free baseline when the sweep ran one on the same instance.
    degradation: List[Dict[str, object]] = field(default_factory=list)
    #: Rows executed under an injected network condition.  They are
    #: excluded from the scaling fits and the theorem-bound audit (the
    #: bounds assume a reliable synchronous network), so the audit can
    #: never flag fault-model artifacts as violations.
    conditioned: int = 0

    @property
    def bound_violations(self) -> int:
        return len(self.violations)


def family_of(row: Row) -> str:
    """The graph-family component of a row's ``graph`` label."""
    label = str(row.get("graph", ""))
    return label.split("(", 1)[0] or "unknown"


def _positive_series(
    rows: Sequence[Row], x_column: str, y_column: str
) -> Tuple[List[float], List[float]]:
    xs: List[float] = []
    ys: List[float] = []
    for row in rows:
        x, y = row.get(x_column), row.get(y_column)
        if isinstance(x, (int, float)) and isinstance(y, (int, float)) and x > 0 and y > 0:
            xs.append(float(x))
            ys.append(float(y))
    return xs, ys


def _fit_series(algorithm: str, rows: Sequence[Row], metric: str, x_name: str) -> ScalingFit:
    xs, ys = _positive_series(rows, x_name, metric)
    reference_exponent, reference = REFERENCE_EXPONENTS.get((algorithm, metric), (None, ""))
    if reference_exponent is not None:
        reference = f"<= ~{reference_exponent:g} ({reference})"
    if len(set(xs)) < 2:
        return ScalingFit(
            algorithm=algorithm,
            metric=metric,
            x_name=x_name,
            points=len(xs),
            fit=None,
            reference=reference,
            note=f"insufficient spread in {x_name} (need >= 2 distinct sizes)",
        )
    return ScalingFit(
        algorithm=algorithm,
        metric=metric,
        x_name=x_name,
        points=len(xs),
        fit=fit_power_law(xs, ys),
        reference=reference,
    )


def _audit_elkin_row(row: Row) -> Tuple[List[BoundViolation], bool]:
    """Check one elkin row against the Theorem 3.1/3.2 bounds.

    Prefers the bound columns the executor recorded with the row; falls
    back to re-evaluating the formulas on the row's instance
    description.  The message bound (Theorem 3.1) needs only ``n`` and
    ``m`` and is always audited; the round bound (Theorem 3.2) needs a
    diameter term, and a row carrying neither a recorded round bound
    nor the hop-diameter has its *round* check skipped -- never
    evaluated with a silent 0 diameter, which would tighten the bound
    (mirroring :func:`repro.verify.complexity_checks.elkin_time_bound`).
    Returns ``(violations, round_checked)``.
    """
    graph = str(row.get("graph", "?"))
    violations: List[BoundViolation] = []
    n, m = int(row["n"]), int(row["m"])
    bandwidth = int(row.get("bandwidth", 1))

    round_checked = True
    round_bound = row.get("round_bound")
    if round_bound is None:
        diameter = row.get("D")
        if diameter is None:
            round_checked = False
        else:
            round_bound = elkin_time_bound_formula(n, int(diameter), bandwidth)
    if round_checked and float(row["rounds"]) > float(round_bound):
        violations.append(
            BoundViolation(
                graph=graph,
                metric="rounds",
                measured=float(row["rounds"]),
                bound=float(round_bound),
            )
        )

    message_bound = row.get("message_bound")
    if message_bound is None:
        message_bound = elkin_message_bound_formula(n, m)
    if float(row["messages"]) > float(message_bound):
        violations.append(
            BoundViolation(
                graph=graph,
                metric="messages",
                measured=float(row["messages"]),
                bound=float(message_bound),
            )
        )
    return violations, round_checked


def _degradation_rows(rows: Sequence[Row]) -> List[Dict[str, object]]:
    """Pair every conditioned row with its fault-free baseline.

    Baselines are keyed by the full cell identity minus the condition
    (graph, algorithm, bandwidth, engine, seed), so a ``conditions=(None,
    "lossy", ...)`` sweep pairs each faulty cell with the clean run of
    the *same* instance.  Factors are measured/baseline; non-terminated
    cells report the rounds they burned before the cap with no factor
    (there is nothing meaningful to normalize).
    """
    baselines: Dict[Tuple[object, ...], Row] = {}
    for row in rows:
        if row.get("condition") is None:
            key = (
                row.get("graph"),
                row.get("algorithm"),
                row.get("bandwidth"),
                row.get("engine"),
                row.get("seed"),
            )
            baselines[key] = row
    table: List[Dict[str, object]] = []
    for row in rows:
        condition = row.get("condition")
        if condition is None:
            continue
        baseline = baselines.get(
            (
                row.get("graph"),
                row.get("algorithm"),
                row.get("bandwidth"),
                row.get("engine"),
                row.get("seed"),
            )
        )
        status = str(row.get("status", "ok"))
        entry: Dict[str, object] = {
            "condition": condition,
            "graph": row.get("graph"),
            "algorithm": row.get("algorithm"),
            "status": status,
            "rounds": row.get("rounds"),
            "messages": row.get("messages"),
            "dropped": row.get("dropped", 0),
            "retransmits": row.get("retransmits", 0),
        }
        if baseline is not None and status == "ok":
            base_rounds = float(baseline.get("rounds", 0) or 0)
            base_messages = float(baseline.get("messages", 0) or 0)
            entry["round_factor"] = (
                round(float(row.get("rounds", 0) or 0) / base_rounds, 3)
                if base_rounds
                else "-"
            )
            entry["message_factor"] = (
                round(float(row.get("messages", 0) or 0) / base_messages, 3)
                if base_messages
                else "-"
            )
        else:
            entry["round_factor"] = "-"
            entry["message_factor"] = "-"
        table.append(entry)
    table.sort(
        key=lambda entry: (
            str(entry["condition"]),
            str(entry["algorithm"]),
            str(entry["graph"]),
        )
    )
    return table


def _crossover_rows(rows: Sequence[Row]) -> List[Dict[str, object]]:
    """E9 head-to-head: message counts of elkin vs prs on shared instances."""
    # Keyed by the full cell identity minus the algorithm: a custom row
    # label may hide the seed, so the seed column is part of the key --
    # multi-seed sweeps must pair rows that actually ran together.
    by_instance: Dict[Tuple[object, ...], Dict[str, Row]] = {}
    for row in rows:
        algorithm = row.get("algorithm")
        if algorithm not in ("elkin", "prs"):
            continue
        key = (row.get("graph"), row.get("bandwidth"), row.get("engine"), row.get("seed"))
        by_instance.setdefault(key, {})[str(algorithm)] = row
    head_to_head = []
    for (graph, bandwidth, _engine, _seed), pair in by_instance.items():
        if "elkin" not in pair or "prs" not in pair:
            continue
        elkin_messages = float(pair["elkin"].get("messages", 0) or 0)
        prs_messages = float(pair["prs"].get("messages", 0) or 0)
        head_to_head.append(
            {
                "graph": graph,
                "n": pair["elkin"].get("n"),
                "D": pair["elkin"].get("D", "-"),
                "bandwidth": bandwidth,
                "elkin_messages": elkin_messages,
                "prs_messages": prs_messages,
                "prs/elkin": round(prs_messages / elkin_messages, 3)
                if elkin_messages
                else float("inf"),
            }
        )
    return head_to_head


def analyze_rows(rows: Iterable[Row]) -> CampaignAnalysis:
    """Reduce flat run rows into a :class:`CampaignAnalysis`."""
    analysis = CampaignAnalysis(rows=[dict(row) for row in rows])
    if not analysis.rows:
        raise ReproError("cannot analyze an empty campaign (no rows)")

    for row in analysis.rows:
        analysis.families.setdefault(family_of(row), []).append(row)

    # Conditioned rows measure degradation, not the theorems: the fits
    # and the bound audit run on the fault-free rows only, so injected
    # faults can never surface as false bound-violation flags.
    clean_rows = [row for row in analysis.rows if row.get("condition") is None]
    analysis.conditioned = len(analysis.rows) - len(clean_rows)

    by_algorithm: Dict[str, List[Dict[str, object]]] = {}
    for row in clean_rows:
        by_algorithm.setdefault(str(row.get("algorithm", "?")), []).append(row)
    for algorithm in sorted(by_algorithm):
        algorithm_rows = by_algorithm[algorithm]
        # Sequential references report zero rounds and messages; there
        # is no scaling law to fit for them.
        if not any(float(row.get("messages", 0) or 0) > 0 for row in algorithm_rows):
            continue
        analysis.fits.append(_fit_series(algorithm, algorithm_rows, "rounds", "n"))
        analysis.fits.append(_fit_series(algorithm, algorithm_rows, "messages", "m"))

    for row in by_algorithm.get("elkin", []):
        violations, round_checked = _audit_elkin_row(row)
        analysis.violations.extend(violations)
        analysis.bound_checked += 1
        if not round_checked:
            analysis.bound_skipped += 1

    # The E9 pairing key does not include the condition, so it also
    # runs on the fault-free rows only.
    analysis.crossover = _crossover_rows(clean_rows)
    analysis.degradation = _degradation_rows(analysis.rows)
    return analysis


def analyze_store(store: "RunStoreLike", full_rescan: bool = False) -> CampaignAnalysis:
    """:func:`analyze_rows` over everything a run store holds.

    The default path consumes ``store.iter_rows()`` -- for the columnar
    backend that is the materialized ``run_rows`` table, no result
    payloads touched -- and, when the store also maintains incremental
    analytics (``materialized_summary()``), cross-checks the
    materialized audit counters against the scan so drifted incremental
    state fails loudly instead of mis-reporting.  ``full_rescan=True``
    is the escape hatch: re-derive every row from the raw record
    payloads (``iter_rows_full_rescan``) and skip the materialized
    state entirely; tests assert both paths are byte-identical.
    """
    if full_rescan:
        rescan = getattr(store, "iter_rows_full_rescan", None)
        if rescan is not None:
            return analyze_rows(rescan())
        return analyze_rows(store.iter_rows())
    analysis = analyze_rows(store.iter_rows())
    summarize = getattr(store, "materialized_summary", None)
    if summarize is not None:
        from .incremental import verify_summary

        verify_summary(summarize(), analysis)
    return analysis


class RunStoreLike:
    """Typing stand-in: anything with ``iter_rows() -> Iterator[Row]``."""

    def iter_rows(self) -> Iterable[Row]:  # pragma: no cover - protocol only
        raise NotImplementedError


# -- rendering -----------------------------------------------------------


def _code_block(text: str) -> List[str]:
    return ["```", text, "```"]


def _fit_table(fits: Sequence[ScalingFit]) -> str:
    rows = []
    for entry in fits:
        rows.append(
            {
                "algorithm": entry.algorithm,
                "metric": entry.metric,
                "vs": entry.x_name,
                "points": entry.points,
                "exponent": round(entry.fit.exponent, 3) if entry.fit else "-",
                "scale": round(entry.fit.scale, 4) if entry.fit else "-",
                "log-mse": round(entry.fit.residual, 4) if entry.fit else "-",
                "reference": (entry.note if entry.fit is None else entry.reference) or "-",
            }
        )
    return format_table(rows)


def render_markdown(analysis: CampaignAnalysis, title: str = "EXPERIMENTS") -> str:
    """Render a :class:`CampaignAnalysis` as an ``EXPERIMENTS.md`` document."""
    algorithms = sorted({str(row.get("algorithm", "?")) for row in analysis.rows})
    lines: List[str] = [
        f"# {title}",
        "",
        "Campaign evidence tables generated by `repro-mst report` "
        "(see DESIGN.md, Section 11).",
        "",
        "## Summary",
        "",
        f"- rows: {len(analysis.rows)}",
        f"- graph families: {len(analysis.families)} "
        f"({', '.join(sorted(analysis.families))})",
        f"- algorithms: {', '.join(algorithms)}",
        f"- theorem-bound audit: {analysis.bound_checked} elkin rows checked, "
        f"{analysis.bound_violations} violations"
        + (
            f", {analysis.bound_skipped} round-bound unauditable (no D recorded)"
            if analysis.bound_skipped
            else ""
        )
        + (
            f" ({analysis.conditioned} conditioned rows excluded from the audit)"
            if analysis.conditioned
            else ""
        ),
        "",
        "## Scaling fits",
        "",
        "Least-squares power laws in log-log space; `reference` is the "
        "exponent the complexity class predicts (log factors drift the "
        "constant, not the slope).",
        "",
        *_code_block(_fit_table(analysis.fits) if analysis.fits else "(no distributed rows)"),
        "",
        "## Theorem 3.1/3.2 bound audit",
        "",
    ]
    if analysis.bound_checked == 0:
        lines.append("No rows of the paper's algorithm in this store.")
    elif not analysis.violations:
        lines.append(
            f"All {analysis.bound_checked} runs of the paper's algorithm stay "
            "within the Theorem 3.1/3.2 round and message bounds "
            "(bound-violation count: **0**)."
        )
    else:
        lines.append(
            f"**{analysis.bound_violations} violations** across "
            f"{analysis.bound_checked} checked rows:"
        )
        lines.append("")
        lines.extend(
            _code_block(
                format_table(
                    [
                        {
                            "graph": violation.graph,
                            "metric": violation.metric,
                            "measured": violation.measured,
                            "bound": round(violation.bound, 1),
                        }
                        for violation in analysis.violations
                    ]
                )
            )
        )
    if analysis.degradation:
        non_terminated = sum(
            1 for entry in analysis.degradation if entry["status"] != "ok"
        )
        lines += [
            "",
            "## Degradation under network conditions",
            "",
            "Rounds and messages relative to the fault-free baseline of the "
            "same instance (`round_factor` / `message_factor`; `-` means no "
            "baseline cell in this sweep or a non-terminated run).  These "
            "rows are excluded from the theorem-bound audit above: the "
            "bounds assume a reliable synchronous network.",
            "",
            f"- conditioned cells: {len(analysis.degradation)} "
            f"({non_terminated} non-terminated)",
            "",
            *_code_block(format_table(analysis.degradation)),
        ]
    if analysis.crossover:
        lines += [
            "",
            "## E9 head-to-head: paper vs PRS16-style k = sqrt(n)",
            "",
            "Message counts on instances both strategies ran on "
            "(`prs/elkin > 1` means the paper's diameter-sensitive base "
            "forest wins).",
            "",
            *_code_block(format_table(analysis.crossover)),
        ]
    lines += ["", "## Per-family results", ""]
    for family in sorted(analysis.families):
        family_rows = analysis.families[family]
        lines += [
            f"### {family} ({len(family_rows)} rows)",
            "",
            *_code_block(format_table(family_rows)),
            "",
        ]
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    source: Union[RunStoreLike, Iterable[Row]],
    output: Optional[str] = None,
    title: str = "EXPERIMENTS",
    full_rescan: bool = False,
) -> str:
    """Analyze ``source`` and render the markdown report.

    ``source`` is a run store (anything with ``iter_rows``) or an
    iterable of rows.  When ``output`` is given the document is also
    written there.  ``full_rescan`` forwards to :func:`analyze_store`
    (ignored for plain row iterables).  Returns the rendered markdown.
    """
    if hasattr(source, "iter_rows"):
        analysis = analyze_store(source, full_rescan=full_rescan)  # type: ignore[arg-type]
    else:
        analysis = analyze_rows(source)  # type: ignore[arg-type]
    document = render_markdown(analysis, title=title)
    if output is not None:
        from pathlib import Path

        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(document, encoding="utf-8")
    return document
