"""Incremental report materialization: analysis state updated on append.

ROADMAP item 5's second half.  A full :func:`~repro.analysis.report.analyze_rows`
pass re-derives everything from the raw rows; this module maintains the
same aggregates *incrementally*, one :meth:`MaterializedAnalytics.add_row`
per ``record_run`` append:

* per-(family, algorithm) row counts (including conditioned and
  non-terminated cells);
* power-law sufficient statistics per (algorithm, metric, x) series --
  ``count``, ``sum(log x)``, ``sum(log y)``, ``sum(log^2 x)``,
  ``sum(log x * log y)``, ``sum(log^2 y)`` -- from which the closed-form
  least-squares fit (exponent, scale, log-space MSE) is recovered
  without revisiting a single row;
* the Theorem 3.1/3.2 bound-audit counters (checked / round-skipped /
  the violation list itself), via the exact per-row audit the full
  analysis uses.

The columnar store (:class:`~repro.campaign.columnar.ColumnarStore`)
keeps one of these per store, persists it in its ``meta`` table, and
exposes it as ``materialized_summary()``;
:func:`~repro.analysis.report.analyze_store` cross-checks the
materialized counters against the scan on every report, so the
incremental state can never silently drift from the ground truth.
Fits are compared in tests with a float tolerance (the closed form is
algebraically identical to the lstsq solution but not bit-identical);
the counters and the violation list must match exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import ReproError
from .fitting import PowerLawFit
from .report import (
    _audit_elkin_row,
    BoundViolation,
    CampaignAnalysis,
    family_of,
    REFERENCE_EXPONENTS,
    ScalingFit,
)

#: One flat run row, as produced by the campaign executor.
Row = Mapping[str, object]

#: The (metric, x) series fitted per distributed algorithm, in the order
#: the full analysis emits them.
SERIES = (("rounds", "n"), ("messages", "m"))

_FORMAT_VERSION = 1


@dataclass
class PowerLawStats:
    """Sufficient statistics for one log-log least-squares series.

    Accumulates positive (x, y) pairs; :meth:`fit` recovers the same
    slope/intercept/MSE the mean-centered closed form in
    :func:`~repro.analysis.fitting.fit_power_law` produces, in O(1).
    """

    count: int = 0
    sum_log_x: float = 0.0
    sum_log_y: float = 0.0
    sum_log_xx: float = 0.0
    sum_log_xy: float = 0.0
    sum_log_yy: float = 0.0
    #: Spread tracking: a fit needs >= 2 distinct x values, so only the
    #: first x and a "saw a different one" flag are kept -- not the
    #: full distinct set, which would grow with the store.
    first_x: Optional[float] = None
    has_spread: bool = False

    def add(self, x: float, y: float) -> None:
        lx, ly = math.log(x), math.log(y)
        self.count += 1
        self.sum_log_x += lx
        self.sum_log_y += ly
        self.sum_log_xx += lx * lx
        self.sum_log_xy += lx * ly
        self.sum_log_yy += ly * ly
        if self.first_x is None:
            self.first_x = x
        elif x != self.first_x:
            self.has_spread = True

    def fit(self) -> Optional[PowerLawFit]:
        """The closed-form fit, or ``None`` without spread in x."""
        if not self.has_spread:
            return None
        n = float(self.count)
        mean_x = self.sum_log_x / n
        mean_y = self.sum_log_y / n
        sxx = self.sum_log_xx - n * mean_x * mean_x
        sxy = self.sum_log_xy - n * mean_x * mean_y
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        # mean((slope*x + intercept - y)^2), expanded over the sums.
        mse = (
            self.sum_log_yy
            + slope * slope * self.sum_log_xx
            + n * intercept * intercept
            + 2.0 * slope * intercept * self.sum_log_x
            - 2.0 * slope * self.sum_log_xy
            - 2.0 * intercept * self.sum_log_y
        ) / n
        return PowerLawFit(exponent=slope, scale=math.exp(intercept), residual=max(mse, 0.0))

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum_log_x": self.sum_log_x,
            "sum_log_y": self.sum_log_y,
            "sum_log_xx": self.sum_log_xx,
            "sum_log_xy": self.sum_log_xy,
            "sum_log_yy": self.sum_log_yy,
            "first_x": self.first_x,
            "has_spread": self.has_spread,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "PowerLawStats":
        return cls(
            count=int(payload["count"]),
            sum_log_x=float(payload["sum_log_x"]),
            sum_log_y=float(payload["sum_log_y"]),
            sum_log_xx=float(payload["sum_log_xx"]),
            sum_log_xy=float(payload["sum_log_xy"]),
            sum_log_yy=float(payload["sum_log_yy"]),
            first_x=None if payload["first_x"] is None else float(payload["first_x"]),
            has_spread=bool(payload["has_spread"]),
        )


def _positive_pair(row: Row, x_column: str, y_column: str) -> Optional[Tuple[float, float]]:
    """Mirror of ``report._positive_series`` for a single row."""
    x, y = row.get(x_column), row.get(y_column)
    if isinstance(x, (int, float)) and isinstance(y, (int, float)) and x > 0 and y > 0:
        return float(x), float(y)
    return None


@dataclass
class MaterializedAnalytics:
    """Every aggregate a report summary needs, maintained per append."""

    row_count: int = 0
    conditioned: int = 0
    #: (family, algorithm) -> {"rows", "conditioned", "non_terminated"}.
    groups: Dict[Tuple[str, str], Dict[str, int]] = field(default_factory=dict)
    #: Clean-row algorithms in first-seen order (fit enumeration order
    #: is ``sorted``, matching the full analysis).
    algorithms: List[str] = field(default_factory=list)
    #: Algorithms with at least one clean row of positive messages --
    #: the full analysis fits only those (sequential references report
    #: zero messages and have no scaling law).
    messages_seen: Dict[str, bool] = field(default_factory=dict)
    #: (algorithm, metric, x_name) -> sufficient statistics.
    series: Dict[Tuple[str, str, str], PowerLawStats] = field(default_factory=dict)
    bound_checked: int = 0
    bound_skipped: int = 0
    violations: List[BoundViolation] = field(default_factory=list)

    def add_row(self, row: Row) -> None:
        """Fold one run row in, mirroring ``analyze_rows`` exactly."""
        self.row_count += 1
        algorithm = str(row.get("algorithm", "?"))
        group = self.groups.setdefault(
            (family_of(row), algorithm),
            {"rows": 0, "conditioned": 0, "non_terminated": 0},
        )
        group["rows"] += 1
        if row.get("condition") is not None:
            self.conditioned += 1
            group["conditioned"] += 1
            if str(row.get("status", "ok")) != "ok":
                group["non_terminated"] += 1
            return  # conditioned rows are excluded from fits and audit
        if algorithm not in self.messages_seen:
            self.algorithms.append(algorithm)
            self.messages_seen[algorithm] = False
        if float(row.get("messages", 0) or 0) > 0:
            self.messages_seen[algorithm] = True
        for metric, x_name in SERIES:
            pair = _positive_pair(row, x_name, metric)
            if pair is not None:
                stats = self.series.setdefault(
                    (algorithm, metric, x_name), PowerLawStats()
                )
                stats.add(*pair)
        if algorithm == "elkin":
            row_violations, round_checked = _audit_elkin_row(row)
            self.violations.extend(row_violations)
            self.bound_checked += 1
            if not round_checked:
                self.bound_skipped += 1

    @classmethod
    def from_rows(cls, rows) -> "MaterializedAnalytics":
        analytics = cls()
        for row in rows:
            analytics.add_row(row)
        return analytics

    # -- derived views ---------------------------------------------------

    def fits(self) -> List[ScalingFit]:
        """The scaling-fit list the full analysis would produce."""
        entries: List[ScalingFit] = []
        for algorithm in sorted(self.algorithms):
            if not self.messages_seen.get(algorithm):
                continue
            for metric, x_name in SERIES:
                stats = self.series.get((algorithm, metric, x_name), PowerLawStats())
                reference_exponent, reference = REFERENCE_EXPONENTS.get(
                    (algorithm, metric), (None, "")
                )
                if reference_exponent is not None:
                    reference = f"<= ~{reference_exponent:g} ({reference})"
                fit = stats.fit()
                entries.append(
                    ScalingFit(
                        algorithm=algorithm,
                        metric=metric,
                        x_name=x_name,
                        points=stats.count,
                        fit=fit,
                        reference=reference,
                        note=(
                            ""
                            if fit is not None
                            else f"insufficient spread in {x_name} (need >= 2 distinct sizes)"
                        ),
                    )
                )
        return entries

    def summary(self) -> Dict[str, object]:
        """The materialized counters and fits as one plain dict."""
        return {
            "rows": self.row_count,
            "conditioned": self.conditioned,
            "bound_checked": self.bound_checked,
            "bound_skipped": self.bound_skipped,
            "bound_violations": len(self.violations),
            "violations": [
                {
                    "graph": violation.graph,
                    "metric": violation.metric,
                    "measured": violation.measured,
                    "bound": violation.bound,
                }
                for violation in self.violations
            ],
            "groups": {
                f"{family}/{algorithm}": dict(counts)
                for (family, algorithm), counts in sorted(self.groups.items())
            },
            "fits": [
                {
                    "algorithm": entry.algorithm,
                    "metric": entry.metric,
                    "x_name": entry.x_name,
                    "points": entry.points,
                    "exponent": entry.fit.exponent if entry.fit else None,
                    "scale": entry.fit.scale if entry.fit else None,
                    "residual": entry.fit.residual if entry.fit else None,
                }
                for entry in self.fits()
            ],
        }

    # -- persistence -----------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "version": _FORMAT_VERSION,
            "row_count": self.row_count,
            "conditioned": self.conditioned,
            "groups": [
                [family, algorithm, dict(counts)]
                for (family, algorithm), counts in self.groups.items()
            ],
            "algorithms": list(self.algorithms),
            "messages_seen": dict(self.messages_seen),
            "series": [
                [algorithm, metric, x_name, stats.to_json_dict()]
                for (algorithm, metric, x_name), stats in self.series.items()
            ],
            "bound_checked": self.bound_checked,
            "bound_skipped": self.bound_skipped,
            "violations": [
                [violation.graph, violation.metric, violation.measured, violation.bound]
                for violation in self.violations
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, object]) -> "MaterializedAnalytics":
        if payload.get("version") != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported materialized-analytics version {payload.get('version')!r}"
            )
        analytics = cls(
            row_count=int(payload["row_count"]),
            conditioned=int(payload["conditioned"]),
            bound_checked=int(payload["bound_checked"]),
            bound_skipped=int(payload["bound_skipped"]),
        )
        for family, algorithm, counts in payload["groups"]:
            analytics.groups[(str(family), str(algorithm))] = {
                key: int(value) for key, value in counts.items()
            }
        analytics.algorithms = [str(name) for name in payload["algorithms"]]
        analytics.messages_seen = {
            str(name): bool(flag) for name, flag in payload["messages_seen"].items()
        }
        for algorithm, metric, x_name, stats in payload["series"]:
            analytics.series[(str(algorithm), str(metric), str(x_name))] = (
                PowerLawStats.from_json_dict(stats)
            )
        analytics.violations = [
            BoundViolation(
                graph=str(graph),
                metric=str(metric),
                measured=float(measured),
                bound=float(bound),
            )
            for graph, metric, measured, bound in payload["violations"]
        ]
        return analytics


def verify_summary(summary: Mapping[str, object], analysis: CampaignAnalysis) -> None:
    """Assert the materialized counters agree with a full analysis.

    Called by :func:`~repro.analysis.report.analyze_store` on every
    report over a store that exposes ``materialized_summary()``: the
    exact-integer aggregates (row counts, audit counters, the violation
    list) must match the scan or the incremental state has drifted and
    the report cannot be trusted.  Fits are deliberately not compared
    here (closed form vs lstsq differ in the last ulps); tests compare
    them with a tolerance.
    """
    mismatches = []
    expected = {
        "rows": len(analysis.rows),
        "conditioned": analysis.conditioned,
        "bound_checked": analysis.bound_checked,
        "bound_skipped": analysis.bound_skipped,
        "bound_violations": analysis.bound_violations,
    }
    for name, value in expected.items():
        if summary.get(name) != value:
            mismatches.append(f"{name}: materialized={summary.get(name)!r} scan={value!r}")
    recorded = [
        (entry["graph"], entry["metric"], entry["measured"], entry["bound"])
        for entry in summary.get("violations", [])
    ]
    scanned = [
        (violation.graph, violation.metric, violation.measured, violation.bound)
        for violation in analysis.violations
    ]
    if recorded != scanned:
        mismatches.append(f"violations: materialized={recorded!r} scan={scanned!r}")
    if mismatches:
        raise ReproError(
            "materialized analytics disagree with the row scan ("
            + "; ".join(mismatches)
            + "); the store's incremental state has drifted"
        )
