"""Plain-text tables for benchmark and example output.

The paper has no figures to re-plot, so the harness reports its series as
aligned ASCII tables (one per experiment) that can be pasted into
EXPERIMENTS.md.  No third-party table library is used to keep the
dependency footprint at networkx + numpy.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Iterable[str] | None = None) -> str:
    """Render ``rows`` (dictionaries) as an aligned ASCII table.

    Columns default to the union of every row's keys in first-seen
    order, so rows carrying extra columns (e.g. the theorem-bound
    ratios only the paper's algorithm reports) never lose them to the
    accident of which row came first; missing values render as ``-``.
    Returns a string ending without a newline.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is not None:
        column_names = list(columns)
    else:
        column_names = []
        for row in rows:
            for name in row:
                if name not in column_names:
                    column_names.append(name)
    rendered = [
        [_render_cell(row.get(name, "-")) for name in column_names] for row in rows
    ]
    widths = [
        max(len(name), *(len(line[index]) for line in rendered))
        for index, name in enumerate(column_names)
    ]
    header = "  ".join(name.ljust(width) for name, width in zip(column_names, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator, *body])
