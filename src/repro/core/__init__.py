"""The paper's contribution: the deterministic near-optimal distributed MST.

Modules:

* :mod:`repro.core.fragments` -- MST fragments and MST forests.
* :mod:`repro.core.cole_vishkin` -- deterministic 3-colouring of rooted
  forests (Cole-Vishkin), used on the candidate fragment graph.
* :mod:`repro.core.maximal_matching` -- maximal matching on the candidate
  fragment forest driven by the 3-colouring (Section 4).
* :mod:`repro.core.controlled_ghs` -- the (n/k, O(k))-MST-forest
  construction (Theorem 4.3).
* :mod:`repro.core.mwoe` -- minimum-weight-outgoing-edge searches.
* :mod:`repro.core.boruvka_merge` -- the root's local fragment-graph
  merging used in the second phase.
* :mod:`repro.core.elkin_mst` -- the complete algorithm (Theorems 3.1 and
  3.2) and its result object.
* :mod:`repro.core.parameters` -- the paper's parameter choices (``k``).
"""

from .boruvka_merge import FragmentGraphMerge, merge_fragment_graph
from .cole_vishkin import cole_vishkin_coloring, validate_coloring
from .controlled_ghs import build_base_forest, ControlledGHSResult
from .elkin_mst import compute_mst, ElkinMSTResult
from .fragments import Fragment, MSTForest
from .maximal_matching import maximal_matching_from_coloring
from .parameters import choose_base_forest_parameter

__all__ = [
    "Fragment",
    "MSTForest",
    "cole_vishkin_coloring",
    "validate_coloring",
    "maximal_matching_from_coloring",
    "ControlledGHSResult",
    "build_base_forest",
    "FragmentGraphMerge",
    "merge_fragment_graph",
    "ElkinMSTResult",
    "compute_mst",
    "choose_base_forest_parameter",
]
