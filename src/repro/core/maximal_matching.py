"""Maximal matching on the candidate fragment forest (Section 4).

Given the rooted candidate fragment forest ``G'_i`` (every small fragment
points, via its MWOE, to another fragment) and a proper 3-colouring of
it, the paper computes a maximal matching in three steps: in step
``j in {0, 1, 2}`` every still-unmatched fragment of colour ``j`` that
has at least one unmatched child picks one such child and matches with it
(over the MWOE edge joining them).

The decision logic is local computation at fragment roots; the
communication it needs (children reporting whether they are unmatched,
parents notifying the chosen child) is charged by Controlled-GHS through
the ``on_step`` callback, one gather + one notify exchange per colour
step.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Optional, Set

from ..exceptions import ProtocolError
from .cole_vishkin import validate_coloring

Node = Hashable
MatchingEdge = FrozenSet[Node]
StepCallback = Callable[[int, Set[MatchingEdge]], None]


def maximal_matching_from_coloring(
    parent: Dict[Node, Optional[Node]],
    colors: Dict[Node, int],
    on_step: Optional[StepCallback] = None,
) -> Set[MatchingEdge]:
    """Compute a maximal matching of a rooted forest from a proper 3-colouring.

    Args:
        parent: parent pointer of every forest node (``None`` for roots).
        colors: proper colouring with colours in {0, 1, 2}.
        on_step: called once per colour step with the step index and the
            matching accumulated so far (before the step's additions are
            final); Controlled-GHS uses it to charge the two
            fragment-level exchanges each step costs.

    Returns:
        A set of 2-element frozensets {child, parent}; every edge of the
        matching is a (child, parent) edge of the forest, no two edges
        share a node, and the matching is maximal (no forest edge joins
        two unmatched nodes).
    """
    validate_coloring(parent, colors)
    invalid = [node for node, color in colors.items() if color not in (0, 1, 2)]
    if invalid:
        raise ProtocolError(
            f"maximal matching needs colours in {{0, 1, 2}}; node {invalid[0]!r} has {colors[invalid[0]]}"
        )

    children: Dict[Node, list] = {node: [] for node in parent}
    for node, parent_node in parent.items():
        if parent_node is not None:
            children[parent_node].append(node)
    for child_list in children.values():
        child_list.sort(key=repr)

    matched: Set[Node] = set()
    matching: Set[MatchingEdge] = set()
    for step in (0, 1, 2):
        if on_step is not None:
            on_step(step, set(matching))
        # Deterministic order so the whole algorithm stays deterministic.
        for node in sorted(parent, key=repr):
            if colors[node] != step or node in matched:
                continue
            candidates = [child for child in children[node] if child not in matched]
            if not candidates:
                continue
            chosen = candidates[0]
            matched.add(node)
            matched.add(chosen)
            matching.add(frozenset((node, chosen)))
    _assert_maximal(parent, matching, matched)
    return matching


def _assert_maximal(
    parent: Dict[Node, Optional[Node]],
    matching: Set[MatchingEdge],
    matched: Set[Node],
) -> None:
    """Defensive check: the produced matching is a maximal matching of the forest."""
    incident: Dict[Node, int] = {}
    for edge in matching:
        if len(edge) != 2:
            raise ProtocolError(f"matching edge {edge!r} does not have two endpoints")
        for node in edge:
            incident[node] = incident.get(node, 0) + 1
            if incident[node] > 1:
                raise ProtocolError(f"node {node!r} is matched twice")
    for node, parent_node in parent.items():
        if parent_node is None:
            continue
        if node not in matched and parent_node not in matched:
            raise ProtocolError(
                f"matching is not maximal: edge ({node!r}, {parent_node!r}) joins two unmatched nodes"
            )
