"""Controlled-GHS: constructing an (n/k, O(k))-MST forest (Section 4, Theorem 4.3).

The procedure runs ``ceil(log2 k)`` phases.  Phase ``i`` starts from an
``(n / 2^{i-1}, 6 * 2^i)``-MST forest and produces an
``(n / 2^i, 6 * 2^{i+1})``-MST forest:

1. every vertex tells its neighbours its fragment identity;
2. every fragment of diameter at most ``2^i`` (the set ``F'_i``) finds
   its minimum-weight outgoing edge (MWOE) by a convergecast over its
   fragment tree, and a message is sent over that edge;
3. the MWOEs orient ``F'_i`` into a *candidate fragment forest* (with the
   higher-identity fragment of a mutual MWOE pair acting as the parent);
4. the forest is 3-coloured with Cole-Vishkin and a maximal matching is
   extracted colour class by colour class;
5. matched pairs merge along their MWOE; every unmatched fragment of
   ``F'_i`` merges along its MWOE into whatever fragment that edge leads
   to; the new fragment identity (the identity of the new root) is then
   broadcast inside every merged fragment.

Every communication step above is executed through the simulator (the
neighbour exchange, the convergecasts, the broadcasts, the per-edge
messages and one broadcast/cross-edge/convergecast exchange per
Cole-Vishkin iteration and per matching sub-step), so the measured
round and message totals reflect the procedure the paper analyses:
``O(k log* n)`` rounds and ``O(|E| log k + n log k log* n)`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import FragmentError
from ..simulator.engine import Engine
from ..simulator.primitives.broadcast import forest_broadcast
from ..simulator.primitives.convergecast import forest_convergecast
from ..simulator.primitives.direct import send_over_edges
from ..simulator.primitives.neighbor_exchange import neighbor_exchange
from ..simulator.primitives.trees import RootedForest
from ..types import CostReport, Edge, FragmentId, PhaseTelemetry, VertexId
from .cole_vishkin import cole_vishkin_coloring
from .fragments import MSTForest
from .maximal_matching import maximal_matching_from_coloring
from .mwoe import Candidate, candidate_edge, fragment_outgoing_edges
from .parameters import controlled_ghs_phase_count


@dataclass
class ControlledGHSResult:
    """Outcome of the base-forest construction.

    Attributes:
        forest: the resulting MST forest (at most ``O(n/k)`` fragments of
            strong diameter ``O(k)``).
        k: the parameter the construction was run with.
        phases: per-phase telemetry (fragment counts and costs).
        cost: total rounds/messages/words consumed by the construction.
    """

    forest: MSTForest
    k: int
    phases: List[PhaseTelemetry] = field(default_factory=list)
    cost: CostReport = field(default_factory=CostReport)

    @property
    def mst_edges(self) -> Set[Edge]:
        """MST edges selected so far (the union of all fragment trees)."""
        return self.forest.tree_edges()

    @property
    def fragment_count(self) -> int:
        return self.forest.count

    def max_fragment_diameter(self) -> int:
        return self.forest.max_diameter()


def _first_non_none(first, second):
    """Convergecast combiner used by the cost-charging exchanges."""
    return first if first is not None else second


def _fragment_level_exchange(
    network: Engine,
    fragment_forest: RootedForest,
    root_values: Dict[VertexId, object],
    cross_messages: List[Tuple[VertexId, VertexId, object]],
) -> None:
    """One fragment-graph communication step, executed on the real network.

    A value travels from every fragment root down its tree
    (broadcast), across the relevant inter-fragment edges (one message
    each), and back up to the receiving fragments' roots (convergecast).
    This is exactly the cost the paper charges for one step of the
    Cole-Vishkin simulation or of the matching procedure:
    O(max fragment diameter) rounds and O(n) messages.
    """
    forest_broadcast(network, fragment_forest, root_values)
    received = send_over_edges(network, cross_messages)
    values: Dict[VertexId, Optional[object]] = {v: None for v in fragment_forest.vertices}
    for vertex, arrivals in received.items():
        if vertex in values and arrivals:
            values[vertex] = arrivals[0][1]
    forest_convergecast(network, fragment_forest, values, _first_non_none)


def build_base_forest(network: Engine, k: int) -> ControlledGHSResult:
    """Build an (n/k, O(k))-MST forest on ``network`` (Theorem 4.3).

    Args:
        network: the simulated network; all communication is charged to it.
        k: the forest parameter.  ``k = 1`` returns the forest of
            singletons without any communication.

    Returns:
        A :class:`ControlledGHSResult`.  Guarantees (for ``k <= n/10``,
        with the constants of Lemmas 4.1/4.2): at most ``4 n / k``
        fragments, each of strong diameter at most ``12 k``.
    """
    start = network.checkpoint()
    forest = MSTForest.singletons(network.vertices())
    result = ControlledGHSResult(forest=forest, k=k)
    total_phases = controlled_ghs_phase_count(k)

    for phase_index in range(total_phases):
        if forest.count <= 1:
            break
        phase_start = network.checkpoint()
        diameter_bound = 2**phase_index

        # Step 1: every vertex updates its neighbours with its fragment identity.
        fragment_of = forest.vertex_to_fragment()
        neighbor_fragments = neighbor_exchange(network, fragment_of)

        # Step 2: fragments of diameter <= 2^i (the set F'_i) find their MWOE.
        diameters = {
            fragment_id: fragment.diameter()
            for fragment_id, fragment in forest.fragments.items()
        }
        small_ids = {
            fragment_id
            for fragment_id, diameter in diameters.items()
            if diameter <= diameter_bound
        }
        if not small_ids:
            # Nothing can merge this phase; the paper's analysis never
            # reaches this state, but guard against it to stay safe.
            result.phases.append(
                PhaseTelemetry(
                    phase=phase_index,
                    fragments_before=forest.count,
                    fragments_after=forest.count,
                    rounds=0,
                    messages=0,
                    mst_edges_added=0,
                )
            )
            continue

        small_parent: Dict[VertexId, Optional[VertexId]] = {}
        for fragment_id in sorted(small_ids):
            small_parent.update(forest.fragments[fragment_id].parent)
        small_forest = RootedForest(parent=small_parent)

        mwoe_by_root = fragment_outgoing_edges(
            network, small_forest, fragment_of, neighbor_fragments
        )
        mwoe: Dict[FragmentId, Candidate] = {}
        for fragment_id in sorted(small_ids):
            candidate = mwoe_by_root[forest.root_of(fragment_id)]
            if candidate is None:
                raise FragmentError(
                    f"fragment {fragment_id} has no outgoing edge although "
                    f"{forest.count} fragments remain (graph disconnected?)"
                )
            mwoe[fragment_id] = candidate

        # The root informs the MWOE endpoint, and a message is sent over
        # the MWOE edge so the other side learns about its new
        # foreign-fragment child.
        forest_broadcast(
            network,
            small_forest,
            {forest.root_of(fid): mwoe[fid][:3] for fid in sorted(small_ids)},
        )
        send_over_edges(
            network,
            [(mwoe[fid][1], mwoe[fid][2], fid) for fid in sorted(small_ids)],
        )

        # Step 3: orient F'_i into the candidate fragment forest.
        target_of: Dict[FragmentId, FragmentId] = {
            fid: mwoe[fid][3] for fid in sorted(small_ids)
        }
        candidate_parent: Dict[FragmentId, Optional[FragmentId]] = {}
        for fid in sorted(small_ids):
            target = target_of[fid]
            if target not in small_ids:
                candidate_parent[fid] = None
                continue
            mutual = candidate_edge(mwoe[fid]) == candidate_edge(mwoe[target])
            if mutual and fid > target:
                # The higher-identity fragment of a mutual pair becomes
                # the parent, i.e. it is a root of the candidate forest.
                candidate_parent[fid] = None
            else:
                candidate_parent[fid] = target

        # Step 4a: Cole-Vishkin 3-colouring; each colour exchange is
        # charged as one fragment-level communication step.
        def charge_color_exchange(colors: Dict[FragmentId, int]) -> None:
            root_values = {
                forest.root_of(fid): colors[fid] for fid in sorted(small_ids)
            }
            cross = []
            for fid in sorted(small_ids):
                parent_fid = candidate_parent[fid]
                if parent_fid is None:
                    continue
                _, u, v, _ = mwoe[fid]
                cross.append((v, u, colors[parent_fid]))
            _fragment_level_exchange(network, small_forest, root_values, cross)

        coloring = cole_vishkin_coloring(
            candidate_parent,
            initial_ids={fid: int(fid) for fid in sorted(small_ids)},
            on_exchange=charge_color_exchange,
        )

        # Step 4b: maximal matching, two fragment-level exchanges per
        # colour sub-step (children report their status, parents notify
        # the chosen child).
        def charge_matching_step(step: int, matching_so_far) -> None:
            gather = []
            notify = []
            for fid in sorted(small_ids):
                parent_fid = candidate_parent[fid]
                if parent_fid is None:
                    continue
                _, u, v, _ = mwoe[fid]
                gather.append((u, v, fid))
                notify.append((v, u, parent_fid))
            root_values = {forest.root_of(fid): step for fid in sorted(small_ids)}
            _fragment_level_exchange(network, small_forest, root_values, gather)
            _fragment_level_exchange(network, small_forest, root_values, notify)

        matching = maximal_matching_from_coloring(
            candidate_parent, coloring.colors, on_step=charge_matching_step
        )

        # Step 5: merge.  Matched pairs merge along the MWOE joining them;
        # every unmatched fragment of F'_i merges along its own MWOE.
        matched: Set[FragmentId] = set()
        merge_edges: List[Tuple[Edge, FragmentId, FragmentId]] = []
        for pair in matching:
            a, b = sorted(pair)
            matched.update((a, b))
            child = a if candidate_parent.get(a) == b else b
            edge = candidate_edge(mwoe[child])
            merge_edges.append((edge, a, b))
        for fid in sorted(small_ids):
            if fid in matched:
                continue
            edge = candidate_edge(mwoe[fid])
            merge_edges.append((edge, fid, target_of[fid]))

        groups = _merge_components(forest, small_ids, merge_edges)
        new_forest = forest.merge_groups(groups)
        added = len(new_forest.tree_edges()) - len(forest.tree_edges())

        # The new fragment identity is broadcast inside every fragment.
        new_combined = new_forest.combined_forest()
        forest_broadcast(
            network,
            new_combined,
            {root: fid for fid, root in new_forest.roots().items()},
        )

        phase_cost = network.cost_since(phase_start)
        result.phases.append(
            PhaseTelemetry(
                phase=phase_index,
                fragments_before=forest.count,
                fragments_after=new_forest.count,
                rounds=phase_cost.rounds,
                messages=phase_cost.messages,
                mst_edges_added=added,
                details={
                    "diameter_bound": diameter_bound,
                    "small_fragments": len(small_ids),
                    "matching_size": len(matching),
                    "cole_vishkin_exchanges": coloring.exchanges,
                },
            )
        )
        forest = new_forest

    result.forest = forest
    result.cost = network.cost_since(start)
    return result


def _merge_components(
    forest: MSTForest,
    small_ids: Set[FragmentId],
    merge_edges: List[Tuple[Edge, FragmentId, FragmentId]],
) -> List[Tuple[List[FragmentId], List[Edge], VertexId]]:
    """Group fragments into merge components and pick each component's new root.

    The new root is the root of the unique constituent of diameter larger
    than the phase bound when there is one (Lemma 4.1 guarantees there is
    at most one), and otherwise the root of the highest-identity
    constituent -- an arbitrary but deterministic choice.
    """
    adjacency: Dict[FragmentId, Set[FragmentId]] = {}
    edges_in_component: Dict[FragmentId, List[Edge]] = {}
    involved: Set[FragmentId] = set()
    for edge, a, b in merge_edges:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
        involved.update((a, b))

    visited: Set[FragmentId] = set()
    groups: List[Tuple[List[FragmentId], List[Edge], VertexId]] = []
    for start in sorted(involved):
        if start in visited:
            continue
        component: List[FragmentId] = []
        stack = [start]
        visited.add(start)
        while stack:
            current = stack.pop()
            component.append(current)
            for neighbor in adjacency.get(current, ()):
                if neighbor not in visited:
                    visited.add(neighbor)
                    stack.append(neighbor)
        component_set = set(component)
        component_edges = [
            edge for edge, a, b in merge_edges if a in component_set and b in component_set
        ]
        # Deduplicate (a mutual MWOE pair contributes the same edge twice).
        component_edges = sorted(set(component_edges))
        large_members = [fid for fid in component if fid not in small_ids]
        if len(large_members) > 1:
            raise FragmentError(
                f"merge component {sorted(component)} contains {len(large_members)} fragments "
                "of large diameter; Lemma 4.1 allows at most one"
            )
        if large_members:
            new_root = forest.root_of(large_members[0])
        else:
            new_root = forest.root_of(max(component))
        groups.append((sorted(component), component_edges, new_root))
    return groups
