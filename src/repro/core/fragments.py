"""MST fragments and MST forests (Section 2 of the paper).

A *fragment* is a connected subtree of the (unique) MST; an *MST forest*
is a collection of vertex-disjoint fragments covering all vertices.  An
``(alpha, beta)``-MST forest has at most ``alpha`` fragments, each of
strong diameter at most ``beta``.

The classes here are the structural backbone shared by Controlled-GHS,
the Boruvka-over-BFS phase and all baselines: they maintain, for every
fragment, its root, its tree (as parent pointers over graph edges) and
its identity (the identity of its root, as in the paper), and they know
how to merge groups of fragments along connecting MST edges.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import FragmentError
from ..simulator.primitives.trees import RootedForest
from ..types import Edge, FragmentId, normalize_edge, VertexId


@dataclass
class Fragment:
    """One MST fragment: a rooted tree over a subset of the vertices.

    Attributes:
        root: the designated root vertex ``rt_F``.
        parent: parent pointer of every fragment vertex (``None`` for the
            root).  Every (child, parent) pair must be a graph edge and an
            MST edge; this is asserted by the verification layer rather
            than here, because the fragment itself has no access to the
            graph.
    """

    root: VertexId
    parent: Dict[VertexId, Optional[VertexId]]

    def __post_init__(self) -> None:
        if self.root not in self.parent:
            raise FragmentError(f"root {self.root} is not among the fragment's vertices")
        if self.parent[self.root] is not None:
            raise FragmentError(f"root {self.root} has a parent pointer")
        # Delegate structural validation (acyclicity, reachability).
        self._forest = RootedForest(parent=dict(self.parent))
        if len(self._forest.roots) != 1:
            raise FragmentError(
                f"fragment rooted at {self.root} has {len(self._forest.roots)} roots"
            )

    @property
    def fragment_id(self) -> FragmentId:
        """The fragment identity: the identity of its root (as in the paper)."""
        return self.root

    @property
    def vertices(self) -> Tuple[VertexId, ...]:
        """Vertices of the fragment, sorted."""
        return self._forest.vertices

    @property
    def size(self) -> int:
        """Number of vertices."""
        return len(self.parent)

    @property
    def depth(self) -> int:
        """Height of the fragment tree measured from the root."""
        return self._forest.height

    def tree_edges(self) -> Set[Edge]:
        """The fragment's tree edges in canonical form."""
        return {normalize_edge(child, parent) for child, parent in self._forest.edges()}

    def as_forest(self) -> RootedForest:
        """The fragment tree as a :class:`RootedForest` (single tree)."""
        return self._forest

    def diameter(self) -> int:
        """Strong diameter of the fragment tree (longest path, in hops).

        Computed with the classical double-BFS on trees; the fragment tree
        is a tree, for which double-BFS is exact.
        """
        adjacency: Dict[VertexId, List[VertexId]] = defaultdict(list)
        for child, parent in self._forest.edges():
            adjacency[child].append(parent)
            adjacency[parent].append(child)
        if self.size == 1:
            return 0

        def farthest(start: VertexId) -> Tuple[VertexId, int]:
            seen = {start: 0}
            queue = deque([start])
            far_vertex, far_distance = start, 0
            while queue:
                vertex = queue.popleft()
                for neighbor in adjacency[vertex]:
                    if neighbor not in seen:
                        seen[neighbor] = seen[vertex] + 1
                        if seen[neighbor] > far_distance:
                            far_vertex, far_distance = neighbor, seen[neighbor]
                        queue.append(neighbor)
            return far_vertex, far_distance

        extreme, _ = farthest(self.root)
        _, diameter = farthest(extreme)
        return diameter

    @staticmethod
    def singleton(vertex: VertexId) -> "Fragment":
        """A fragment consisting of a single vertex."""
        return Fragment(root=vertex, parent={vertex: None})

    @staticmethod
    def from_edges(root: VertexId, edges: Iterable[Edge]) -> "Fragment":
        """Build a fragment from its root and an edge set (re-orienting towards the root)."""
        adjacency: Dict[VertexId, List[VertexId]] = defaultdict(list)
        vertex_set: Set[VertexId] = {root}
        edge_list = list(edges)
        for u, v in edge_list:
            adjacency[u].append(v)
            adjacency[v].append(u)
            vertex_set.update((u, v))
        parent: Dict[VertexId, Optional[VertexId]] = {root: None}
        queue = deque([root])
        while queue:
            vertex = queue.popleft()
            for neighbor in adjacency[vertex]:
                if neighbor not in parent:
                    parent[neighbor] = vertex
                    queue.append(neighbor)
        if len(parent) != len(vertex_set):
            raise FragmentError(
                f"edges do not form a tree connected to root {root}: "
                f"{len(parent)} of {len(vertex_set)} vertices reachable"
            )
        if len(edge_list) != len(vertex_set) - 1:
            raise FragmentError(
                f"{len(edge_list)} edges over {len(vertex_set)} vertices is not a tree"
            )
        return Fragment(root=root, parent=parent)


@dataclass
class MSTForest:
    """A collection of vertex-disjoint fragments covering all vertices."""

    fragments: Dict[FragmentId, Fragment] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._vertex_fragment: Dict[VertexId, FragmentId] = {}
        for fragment_id, fragment in self.fragments.items():
            if fragment_id != fragment.fragment_id:
                raise FragmentError(
                    f"fragment keyed {fragment_id} has identity {fragment.fragment_id}"
                )
            for vertex in fragment.vertices:
                if vertex in self._vertex_fragment:
                    raise FragmentError(
                        f"vertex {vertex} belongs to fragments "
                        f"{self._vertex_fragment[vertex]} and {fragment_id}"
                    )
                self._vertex_fragment[vertex] = fragment_id

    # -------------------------------------------------------------- #
    # queries
    # -------------------------------------------------------------- #

    @property
    def count(self) -> int:
        """Number of fragments."""
        return len(self.fragments)

    @property
    def vertices(self) -> Tuple[VertexId, ...]:
        """All covered vertices, sorted."""
        return tuple(sorted(self._vertex_fragment))

    def fragment_of(self, vertex: VertexId) -> FragmentId:
        """Identity of the fragment containing ``vertex``."""
        try:
            return self._vertex_fragment[vertex]
        except KeyError as exc:
            raise FragmentError(f"vertex {vertex} is not covered by the forest") from exc

    def vertex_to_fragment(self) -> Dict[VertexId, FragmentId]:
        """A copy of the vertex -> fragment-identity mapping."""
        return dict(self._vertex_fragment)

    def max_diameter(self) -> int:
        """Maximum strong diameter over all fragments."""
        return max(fragment.diameter() for fragment in self.fragments.values())

    def tree_edges(self) -> Set[Edge]:
        """Union of all fragments' tree edges."""
        edges: Set[Edge] = set()
        for fragment in self.fragments.values():
            edges |= fragment.tree_edges()
        return edges

    def combined_forest(self) -> RootedForest:
        """All fragment trees as one :class:`RootedForest` (for parallel tree ops)."""
        parent: Dict[VertexId, Optional[VertexId]] = {}
        for fragment in self.fragments.values():
            parent.update(fragment.parent)
        return RootedForest(parent=parent)

    def root_of(self, fragment_id: FragmentId) -> VertexId:
        """Root vertex of the fragment with identity ``fragment_id``."""
        return self.fragments[fragment_id].root

    def roots(self) -> Dict[FragmentId, VertexId]:
        """Mapping fragment identity -> root vertex."""
        return {fragment_id: fragment.root for fragment_id, fragment in self.fragments.items()}

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #

    @staticmethod
    def singletons(vertices: Iterable[VertexId]) -> "MSTForest":
        """The forest of singleton fragments (the start of Boruvka / Controlled-GHS)."""
        fragments = {vertex: Fragment.singleton(vertex) for vertex in vertices}
        if not fragments:
            raise FragmentError("cannot build a forest over an empty vertex set")
        return MSTForest(fragments=fragments)

    def merge_groups(
        self,
        groups: Sequence[Tuple[Sequence[FragmentId], Sequence[Edge], VertexId]],
    ) -> "MSTForest":
        """Merge groups of fragments along connecting edges into a coarser forest.

        Args:
            groups: each entry is ``(fragment_ids, connecting_edges, new_root)``:
                the fragments to merge, the MST edges joining them (each
                connecting two distinct fragments of the group), and the
                vertex that roots the merged fragment (it must belong to
                one of the merged fragments).

        Fragments not mentioned in any group are carried over unchanged.
        Returns a new :class:`MSTForest`; ``self`` is left untouched.
        """
        merged: Dict[FragmentId, Fragment] = {}
        consumed: Set[FragmentId] = set()
        for fragment_ids, connecting_edges, new_root in groups:
            if not fragment_ids:
                raise FragmentError("cannot merge an empty group of fragments")
            edges: Set[Edge] = set()
            for fragment_id in fragment_ids:
                if fragment_id in consumed:
                    raise FragmentError(f"fragment {fragment_id} appears in two merge groups")
                consumed.add(fragment_id)
                edges |= self.fragments[fragment_id].tree_edges()
            edges |= {normalize_edge(u, v) for u, v in connecting_edges}
            group_vertices: Set[VertexId] = set()
            for fragment_id in fragment_ids:
                group_vertices.update(self.fragments[fragment_id].vertices)
            if new_root not in group_vertices:
                raise FragmentError(
                    f"new root {new_root} does not belong to the merged fragments"
                )
            if len(edges) != len(group_vertices) - 1:
                raise FragmentError(
                    f"merge of {len(fragment_ids)} fragments produced {len(edges)} edges "
                    f"over {len(group_vertices)} vertices (not a tree)"
                )
            fragment = Fragment.from_edges(new_root, edges)
            merged[fragment.fragment_id] = fragment
        for fragment_id, fragment in self.fragments.items():
            if fragment_id not in consumed:
                merged[fragment_id] = fragment
        return MSTForest(fragments=merged)

    # -------------------------------------------------------------- #
    # invariants
    # -------------------------------------------------------------- #

    def assert_covers(self, vertices: Iterable[VertexId]) -> None:
        """Raise :class:`FragmentError` unless the forest covers exactly ``vertices``."""
        expected = set(vertices)
        covered = set(self._vertex_fragment)
        if expected != covered:
            missing = expected - covered
            extra = covered - expected
            raise FragmentError(
                f"forest cover mismatch: missing {len(missing)} vertices, {len(extra)} extraneous"
            )

    def is_alpha_beta_forest(self, alpha: float, beta: float) -> bool:
        """True when the forest has at most ``alpha`` fragments, each of diameter <= ``beta``."""
        if self.count > alpha:
            return False
        return all(fragment.diameter() <= beta for fragment in self.fragments.values())

    def coarsens(self, finer: "MSTForest") -> bool:
        """True when every fragment of ``finer`` is contained in one fragment of ``self``."""
        for fragment in finer.fragments.values():
            owners = {self.fragment_of(vertex) for vertex in fragment.vertices}
            if len(owners) != 1:
                return False
        return True
