"""Deterministic Cole-Vishkin colouring of rooted forests.

Section 4 of the paper 3-colours the candidate fragment graph ``G'_i``
(a rooted forest: every small fragment points to the fragment its MWOE
leads to) by "simulating Cole-Vishkin's 3-vertex-coloring algorithm",
with every colour exchange between a fragment and its children costing
one parent-to-children communication step.

This module contains the colour arithmetic, which is local computation in
the distributed algorithm.  The number of communication steps it needs is
reported back to the caller (and can be observed through the
``on_exchange`` callback, which Controlled-GHS uses to charge the
corresponding rounds and messages in the simulator):

* one exchange per bit-reduction iteration (``O(log* n)`` of them), and
* one exchange per shift-down step of the final six-to-three reduction
  (three of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from ..exceptions import ProtocolError

Node = Hashable
ExchangeCallback = Callable[[Dict[Node, int]], None]


@dataclass
class ColoringResult:
    """Outcome of the Cole-Vishkin procedure.

    Attributes:
        colors: a proper colouring of the forest with colours in {0, 1, 2}.
        bit_reduction_iterations: iterations of the logarithmic colour
            reduction (the ``log* n`` part).
        shift_down_steps: steps of the final six-to-three reduction
            (always 3 unless the forest was already 3-coloured).
        exchanges: total parent-to-children communication steps consumed.
    """

    colors: Dict[Node, int]
    bit_reduction_iterations: int
    shift_down_steps: int

    @property
    def exchanges(self) -> int:
        return self.bit_reduction_iterations + self.shift_down_steps


def _lowest_differing_bit(a: int, b: int) -> int:
    """Index of the lowest bit in which ``a`` and ``b`` differ (they must differ)."""
    difference = a ^ b
    if difference == 0:
        raise ProtocolError("colour collision between a vertex and its parent")
    return (difference & -difference).bit_length() - 1


def validate_coloring(parent: Dict[Node, Optional[Node]], colors: Dict[Node, int]) -> None:
    """Raise :class:`ProtocolError` unless ``colors`` is a proper colouring of the forest."""
    for node, parent_node in parent.items():
        if node not in colors:
            raise ProtocolError(f"node {node!r} has no colour")
        if parent_node is None:
            continue
        if colors[node] == colors[parent_node]:
            raise ProtocolError(
                f"improper colouring: {node!r} and its parent {parent_node!r} "
                f"share colour {colors[node]}"
            )


def cole_vishkin_coloring(
    parent: Dict[Node, Optional[Node]],
    initial_ids: Optional[Dict[Node, int]] = None,
    on_exchange: Optional[ExchangeCallback] = None,
) -> ColoringResult:
    """Compute a proper 3-colouring of a rooted forest deterministically.

    Args:
        parent: parent pointer of every node (``None`` for roots).
        initial_ids: distinct non-negative integers seeding the colouring;
            defaults to enumerating the nodes in sorted order, but the
            distributed algorithm passes the fragment identities.
        on_exchange: invoked once before every colour-exchange step with
            the colours about to be communicated; Controlled-GHS uses it
            to charge the corresponding broadcast/convergecast costs.

    Returns:
        A :class:`ColoringResult` whose ``colors`` use only {0, 1, 2} and
        are proper on every (child, parent) edge.
    """
    if not parent:
        raise ProtocolError("cannot colour an empty forest")
    nodes = list(parent)
    for node, parent_node in parent.items():
        if parent_node is not None and parent_node not in parent:
            raise ProtocolError(f"parent {parent_node!r} of {node!r} is not a forest node")

    if initial_ids is None:
        initial_ids = {node: index for index, node in enumerate(sorted(nodes, key=repr))}
    colors: Dict[Node, int] = {}
    seen: Dict[int, Node] = {}
    for node in nodes:
        if node not in initial_ids:
            raise ProtocolError(f"node {node!r} has no initial identifier")
        value = int(initial_ids[node])
        if value < 0:
            raise ProtocolError(f"initial identifier of {node!r} is negative ({value})")
        if value in seen:
            raise ProtocolError(
                f"initial identifiers must be distinct: {node!r} and {seen[value]!r} share {value}"
            )
        seen[value] = node
        colors[node] = value

    def notify() -> None:
        if on_exchange is not None:
            on_exchange(dict(colors))

    # Phase 1: iterated bit reduction until at most six colours remain
    # (values 0..5).  Each iteration consumes one parent-colour exchange.
    bit_iterations = 0
    while max(colors.values()) >= 6:
        notify()
        bit_iterations += 1
        new_colors: Dict[Node, int] = {}
        for node in nodes:
            own = colors[node]
            parent_node = parent[node]
            reference = colors[parent_node] if parent_node is not None else own ^ 1
            index = _lowest_differing_bit(own, reference)
            new_colors[node] = (index << 1) | ((own >> index) & 1)
        colors = new_colors

    # Phase 2: shift-down + recolour to eliminate colours 5, 4, 3.
    shift_steps = 0
    for retired_color in (5, 4, 3):
        if max(colors.values()) < 3:
            break
        notify()
        shift_steps += 1
        shifted: Dict[Node, int] = {}
        for node in nodes:
            parent_node = parent[node]
            if parent_node is None:
                # The root picks a fresh colour different from its own so
                # that it keeps differing from its children (which all
                # adopt the root's previous colour).
                shifted[node] = 0 if colors[node] != 0 else 1
            else:
                shifted[node] = colors[parent_node]
        # After the shift-down all children of a node share that node's
        # previous colour, so a node of the retired colour can pick any
        # colour in {0, 1, 2} avoiding its (shifted) parent colour and its
        # children's common colour.
        recolored: Dict[Node, int] = {}
        for node in nodes:
            if shifted[node] != retired_color:
                recolored[node] = shifted[node]
                continue
            parent_node = parent[node]
            forbidden = {colors[node]}  # the children's colour after the shift
            if parent_node is not None:
                forbidden.add(shifted[parent_node])
            recolored[node] = min(c for c in (0, 1, 2) if c not in forbidden)
        colors = recolored

    validate_coloring(parent, colors)
    if max(colors.values()) > 2:
        raise ProtocolError(f"colour reduction stalled with max colour {max(colors.values())}")
    return ColoringResult(
        colors=colors,
        bit_reduction_iterations=bit_iterations,
        shift_down_steps=shift_steps,
    )
