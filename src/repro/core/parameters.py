"""Parameter selection (the ``k`` of the base MST forest).

Section 3 of the paper chooses the base-forest parameter ``k`` by regime:

* standard CONGEST, ``D <= sqrt(n)``: ``k = sqrt(n)``;
* standard CONGEST, ``D > sqrt(n)``: ``k = D``;
* CONGEST(b log n), ``D <= sqrt(n / b)``: ``k = sqrt(n / b)``;
* CONGEST(b log n), ``D > sqrt(n / b)``: ``k = D``.

Theorem 4.3 additionally requires ``k <= n / 10``; beyond that point the
base forest would not shrink further anyway, so we clamp.  The algorithm
only needs a 2-approximation of ``D`` (the depth of the BFS tree rooted
at ``rt``), which is what the caller passes in practice.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError


def choose_base_forest_parameter(n: int, diameter_estimate: int, bandwidth: int = 1) -> int:
    """Return the paper's choice of ``k`` for the base MST forest.

    Args:
        n: number of vertices.
        diameter_estimate: an upper estimate of the hop-diameter ``D``
            that is at least the eccentricity of the BFS root (the BFS
            tree depth qualifies; it is within a factor 2 of ``D``).
        bandwidth: the ``b`` of CONGEST(b log n).

    Returns:
        ``k >= 1``.  Theorem 4.3 states the forest construction for
        ``k <= n / 10``; we do not clamp to that technicality because the
        construction degrades gracefully for larger ``k`` (it simply
        finishes early once a single fragment remains), whereas clamping
        would break the ``k = D`` regime on high-diameter graphs.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if diameter_estimate < 0:
        raise ConfigurationError(f"diameter estimate must be >= 0, got {diameter_estimate}")
    if bandwidth < 1:
        raise ConfigurationError(f"bandwidth must be >= 1, got {bandwidth}")
    sqrt_term = math.ceil(math.sqrt(n / bandwidth))
    k = sqrt_term if diameter_estimate <= sqrt_term else diameter_estimate
    return max(1, k)


def controlled_ghs_phase_count(k: int) -> int:
    """Number of phases Controlled-GHS runs for parameter ``k`` (``ceil(log2 k)``)."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k == 1:
        return 0
    return math.ceil(math.log2(k))
