"""Minimum-weight outgoing edge (MWOE) searches.

Both phases of the paper repeatedly need, for every fragment ``F`` of
some forest, the lightest edge with exactly one endpoint in ``F`` --
either leaving ``F`` itself (Controlled-GHS) or leaving the *coarse*
fragment ``F_hat`` that contains ``F`` (the Boruvka-over-BFS phase,
where the candidate is computed per *base* fragment but must leave the
coarse fragment).

The search is the textbook two-step procedure: every vertex inspects its
incident edges locally (it knows which group each neighbour belongs to
from the preceding neighbour exchange), then a convergecast over the
fragment tree keeps the minimum.  Cost per forest: O(max fragment
diameter) rounds and O(n) messages, because all fragments search in
parallel.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..simulator.engine import Engine
from ..simulator.primitives.convergecast import forest_convergecast
from ..simulator.primitives.trees import RootedForest
from ..types import FragmentId, normalize_edge, VertexId

#: A candidate outgoing edge: (weight, u, v, group of v).  Tuples compare
#: lexicographically, and weights are unique, so ``min`` picks the MWOE
#: and ties can never be broken arbitrarily.
Candidate = Tuple[float, VertexId, VertexId, FragmentId]


def minimum_candidate(
    first: Optional[Candidate], second: Optional[Candidate]
) -> Optional[Candidate]:
    """Combiner for convergecasts over optional candidates (min, ignoring None)."""
    if first is None:
        return second
    if second is None:
        return first
    return first if first <= second else second


def local_outgoing_candidate(
    network: Engine,
    vertex: VertexId,
    own_group: FragmentId,
    neighbor_groups: Dict[VertexId, FragmentId],
) -> Optional[Candidate]:
    """The lightest edge from ``vertex`` to a neighbour outside ``own_group``.

    ``neighbor_groups`` is the information obtained from the neighbour
    exchange (group identity of every neighbour).  Returns ``None`` when
    every neighbour lies in the same group.
    """
    node = network.node(vertex)
    best: Optional[Candidate] = None
    for neighbor in node.neighbors:
        if neighbor_groups.get(neighbor, own_group) == own_group:
            continue
        candidate: Candidate = (
            node.edge_weights[neighbor],
            vertex,
            neighbor,
            neighbor_groups[neighbor],
        )
        best = minimum_candidate(best, candidate)
    return best


def fragment_outgoing_edges(
    network: Engine,
    fragment_forest: RootedForest,
    group_of: Dict[VertexId, FragmentId],
    neighbor_groups: Dict[VertexId, Dict[VertexId, FragmentId]],
) -> Dict[VertexId, Optional[Candidate]]:
    """For every tree of ``fragment_forest``, the lightest edge leaving its group.

    Args:
        network: the simulated network (charged for the convergecast).
        fragment_forest: the fragment trees to search (all in parallel).
        group_of: the group each participating vertex must "leave" --
            its own fragment in Controlled-GHS, its coarse fragment in
            the Boruvka-over-BFS phase.
        neighbor_groups: per vertex, the group of each of its neighbours
            (from :func:`~repro.simulator.primitives.neighbor_exchange.neighbor_exchange`).

    Returns:
        Mapping from each fragment root to its minimum outgoing candidate
        (``None`` when the whole group has no outgoing edge, i.e. it
        already spans the graph).
    """
    values: Dict[VertexId, Optional[Candidate]] = {}
    for vertex in fragment_forest.vertices:
        values[vertex] = local_outgoing_candidate(
            network, vertex, group_of[vertex], neighbor_groups.get(vertex, {})
        )
    result = forest_convergecast(network, fragment_forest, values, minimum_candidate)
    return result.root_values


def candidate_edge(candidate: Candidate) -> Tuple[VertexId, VertexId]:
    """Canonical (sorted) edge of a candidate tuple."""
    _, u, v, _ = candidate
    return normalize_edge(u, v)
