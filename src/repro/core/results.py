"""Result objects shared by the paper's algorithm and the baselines.

Every distributed MST run in this library -- the paper's algorithm, the
GHS-style baseline, the Garay-Kutten-Peleg baseline and the PRS-style
second phase -- reports its outcome as an :class:`MSTRunResult`: the tree
it produced plus the rounds and messages it consumed.  Benchmarks and the
verification layer only depend on this shape, which is what makes the
head-to-head experiments (E7-E9) uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import networkx as nx

from ..types import CostReport, Edge, PhaseTelemetry


@dataclass
class MSTRunResult:
    """Outcome of one distributed MST execution.

    Attributes:
        algorithm: short identifier (``"elkin"``, ``"ghs"``, ``"gkp"``, ...).
        edges: the MST edges, in canonical (sorted-endpoint) form.
        total_weight: sum of the selected edges' weights.
        cost: rounds, messages and words consumed.
        n / m: size of the input graph.
        bandwidth: the ``b`` of CONGEST(b log n) used for the run.
        phases: optional per-phase telemetry.
        details: algorithm-specific extras (parameter ``k``, BFS depth,
            base-forest statistics, per-stage cost split, ...).
    """

    algorithm: str
    edges: Set[Edge]
    total_weight: float
    cost: CostReport
    n: int
    m: int
    bandwidth: int = 1
    phases: List[PhaseTelemetry] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Rounds consumed (the paper's time complexity measure)."""
        return self.cost.rounds

    @property
    def messages(self) -> int:
        """Messages consumed (the paper's message complexity measure)."""
        return self.cost.messages

    @property
    def edge_count(self) -> int:
        """Number of selected edges (``n - 1`` for a correct run)."""
        return len(self.edges)

    def spans(self, graph: nx.Graph) -> bool:
        """True when the selected edges form a spanning tree of ``graph``."""
        if self.edge_count != graph.number_of_nodes() - 1:
            return False
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        tree.add_edges_from(self.edges)
        return nx.is_connected(tree)

    def summary_row(self) -> Dict[str, object]:
        """Flat dictionary used by the benchmark tables."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "rounds": self.rounds,
            "messages": self.messages,
            "weight": round(self.total_weight, 6),
        }
