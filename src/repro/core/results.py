"""Result objects shared by the paper's algorithm and the baselines.

Every distributed MST run in this library -- the paper's algorithm, the
GHS-style baseline, the Garay-Kutten-Peleg baseline and the PRS-style
second phase -- reports its outcome as an :class:`MSTRunResult`: the tree
it produced plus the rounds and messages it consumed.  Benchmarks and the
verification layer only depend on this shape, which is what makes the
head-to-head experiments (E7-E9) uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import networkx as nx

from ..types import CostReport, Edge, PhaseTelemetry


def _json_safe(value: object) -> object:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Tuples become lists, sets become sorted lists and mapping keys are
    stringified; anything exotic falls back to ``repr``.  Used so the
    ``details`` payload of a result can always round-trip through the
    campaign run store.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(item) for item in value)
    return repr(value)


@dataclass
class MSTRunResult:
    """Outcome of one distributed MST execution.

    Attributes:
        algorithm: short identifier (``"elkin"``, ``"ghs"``, ``"gkp"``, ...).
        edges: the MST edges, in canonical (sorted-endpoint) form.
        total_weight: sum of the selected edges' weights.
        cost: rounds, messages and words consumed.
        n / m: size of the input graph.
        bandwidth: the ``b`` of CONGEST(b log n) used for the run.
        phases: optional per-phase telemetry.
        details: algorithm-specific extras (parameter ``k``, BFS depth,
            base-forest statistics, per-stage cost split, ...).
    """

    algorithm: str
    edges: Set[Edge]
    total_weight: float
    cost: CostReport
    n: int
    m: int
    bandwidth: int = 1
    phases: List[PhaseTelemetry] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Rounds consumed (the paper's time complexity measure)."""
        return self.cost.rounds

    @property
    def messages(self) -> int:
        """Messages consumed (the paper's message complexity measure)."""
        return self.cost.messages

    @property
    def edge_count(self) -> int:
        """Number of selected edges (``n - 1`` for a correct run)."""
        return len(self.edges)

    def spans(self, graph: nx.Graph) -> bool:
        """True when the selected edges form a spanning tree of ``graph``."""
        if self.edge_count != graph.number_of_nodes() - 1:
            return False
        tree = nx.Graph()
        tree.add_nodes_from(graph.nodes())
        tree.add_edges_from(self.edges)
        return nx.is_connected(tree)

    def summary_row(self) -> Dict[str, object]:
        """Flat dictionary used by the benchmark tables."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "rounds": self.rounds,
            "messages": self.messages,
            "weight": round(self.total_weight, 6),
        }

    def to_json_dict(self) -> Dict[str, object]:
        """Serialize the full result to JSON-safe primitives.

        The inverse is :meth:`from_json_dict`; together they let the
        campaign run store persist completed runs and resume sweeps
        without re-simulating.  Edges are stored as sorted ``[u, v]``
        pairs so serialization is deterministic.
        """
        return {
            "algorithm": self.algorithm,
            "edges": [list(edge) for edge in sorted(self.edges)],
            "total_weight": self.total_weight,
            "cost": {
                "rounds": self.cost.rounds,
                "messages": self.cost.messages,
                "words": self.cost.words,
            },
            "n": self.n,
            "m": self.m,
            "bandwidth": self.bandwidth,
            "phases": [
                {
                    "phase": phase.phase,
                    "fragments_before": phase.fragments_before,
                    "fragments_after": phase.fragments_after,
                    "rounds": phase.rounds,
                    "messages": phase.messages,
                    "mst_edges_added": phase.mst_edges_added,
                    "details": _json_safe(phase.details),
                }
                for phase in self.phases
            ],
            "details": _json_safe(self.details),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "MSTRunResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        cost = payload["cost"]
        return cls(
            algorithm=str(payload["algorithm"]),
            edges={(int(u), int(v)) for u, v in payload["edges"]},
            total_weight=float(payload["total_weight"]),
            cost=CostReport(
                rounds=int(cost["rounds"]),
                messages=int(cost["messages"]),
                words=int(cost["words"]),
            ),
            n=int(payload["n"]),
            m=int(payload["m"]),
            bandwidth=int(payload["bandwidth"]),
            phases=[
                PhaseTelemetry(
                    phase=int(phase["phase"]),
                    fragments_before=int(phase["fragments_before"]),
                    fragments_after=int(phase["fragments_after"]),
                    rounds=int(phase["rounds"]),
                    messages=int(phase["messages"]),
                    mst_edges_added=int(phase["mst_edges_added"]),
                    details=dict(phase.get("details", {})),
                )
                for phase in payload.get("phases", [])
            ],
            details=dict(payload.get("details", {})),
        )
