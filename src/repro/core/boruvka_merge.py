"""The root's local fragment-graph merging (one Boruvka phase, done at ``rt``).

After the pipelined upcast, the BFS root ``rt`` knows, for every coarse
fragment ``F_hat`` of the current forest ``F_j``, its minimum-weight
outgoing edge.  It then locally builds the fragments' graph (vertices =
coarse fragments, edges = the MWOEs), merges every connected component
into a single new fragment, and assigns each old fragment its new
fragment identity.  This is free local computation in the CONGEST model;
the surrounding communication (upcast before, downcast after) is charged
by :mod:`repro.core.elkin_mst`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..exceptions import FragmentError
from ..types import Edge, FragmentId, normalize_edge
from .mwoe import Candidate


class _UnionFind:
    """Small union-find used for the fragments' graph components."""

    def __init__(self, elements) -> None:
        self._parent = {element: element for element in elements}

    def find(self, element):
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a, b) -> bool:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        # Deterministic orientation: smaller identity becomes the representative.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        return True


@dataclass
class FragmentGraphMerge:
    """Result of merging the fragments' graph at the root.

    Attributes:
        new_fragment_of: maps every old coarse fragment identity to the
            identity of the merged fragment that now contains it (the
            minimum identity of its component, a deterministic choice).
        mst_edges_added: the MWOE edges selected in this phase; they are
            MST edges by the cut property and are added to the output.
        new_fragment_ids: the identities of the merged fragments.
    """

    new_fragment_of: Dict[FragmentId, FragmentId]
    mst_edges_added: Set[Edge]
    new_fragment_ids: Set[FragmentId]

    @property
    def fragment_count(self) -> int:
        return len(self.new_fragment_ids)


def merge_fragment_graph(
    mwoe_per_fragment: Dict[FragmentId, Candidate],
    all_fragment_ids: Set[FragmentId],
) -> FragmentGraphMerge:
    """Merge coarse fragments along their MWOEs (one Boruvka phase, locally).

    Args:
        mwoe_per_fragment: for each coarse fragment that has an outgoing
            edge, its minimum-weight outgoing candidate
            ``(weight, u, v, target fragment)``.
        all_fragment_ids: identities of all current coarse fragments
            (including any without an entry in ``mwoe_per_fragment``;
            with a connected graph that only happens when a single
            fragment remains).

    Returns:
        The :class:`FragmentGraphMerge` describing the coarser forest.

    Raises:
        FragmentError: if a candidate refers to an unknown fragment or
            points back into its own fragment (which would indicate a
            broken MWOE search).
    """
    union_find = _UnionFind(all_fragment_ids)
    mst_edges: Set[Edge] = set()
    for fragment_id, candidate in mwoe_per_fragment.items():
        if fragment_id not in all_fragment_ids:
            raise FragmentError(f"unknown source fragment {fragment_id} in MWOE table")
        weight, u, v, target = candidate
        if target not in all_fragment_ids:
            raise FragmentError(
                f"MWOE of fragment {fragment_id} points to unknown fragment {target}"
            )
        if target == fragment_id:
            raise FragmentError(
                f"MWOE of fragment {fragment_id} is not an outgoing edge "
                f"(target is the fragment itself, edge ({u}, {v}, weight {weight}))"
            )
        mst_edges.add(normalize_edge(u, v))
        union_find.union(fragment_id, target)

    new_fragment_of = {
        fragment_id: union_find.find(fragment_id) for fragment_id in all_fragment_ids
    }
    if mwoe_per_fragment:
        before = len(all_fragment_ids)
        after = len(set(new_fragment_of.values()))
        if after > before - max(1, len(mwoe_per_fragment) // 2):
            # Boruvka guarantees the number of fragments at least halves
            # when every fragment has an outgoing edge; a weaker sanity
            # check (it must strictly decrease) still catches broken input.
            if after >= before:
                raise FragmentError(
                    f"fragment merge did not reduce the fragment count ({before} -> {after})"
                )
    return FragmentGraphMerge(
        new_fragment_of=new_fragment_of,
        mst_edges_added=mst_edges,
        new_fragment_ids=set(new_fragment_of.values()),
    )
