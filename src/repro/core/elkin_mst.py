"""The complete deterministic distributed MST algorithm (Theorems 3.1 and 3.2).

``compute_mst`` executes the paper's algorithm end to end on a simulated
CONGEST(b log n) network:

1. build the auxiliary BFS tree ``tau`` rooted at ``rt``
   (O(D) rounds, O(|E|) messages);
2. pick the base-forest parameter ``k`` from the regime
   (``k = sqrt(n/b)`` when the BFS depth is at most that, else ``k = D``)
   and build the base MST forest ``F_0`` with Controlled-GHS
   (Theorem 4.3);
3. label ``tau`` with subtree intervals for routing and upcast the base
   fragments' identities/positions to ``rt``
   (O(D + n/k) rounds, O(D * n/k) messages);
4. run Boruvka phases on top of the base forest: per phase, every base
   fragment finds the lightest edge leaving its *coarse* fragment
   (convergecast inside base fragments), the candidates are pipelined up
   ``tau``, the root merges the fragments' graph locally, the new
   fragment identities are pipelined back down to the base-fragment
   roots, broadcast inside the base fragments and exchanged between
   neighbours.  Each phase at least halves the number of coarse
   fragments, so there are at most ``ceil(log2)`` of them.

The result carries the selected MST edges together with the exact rounds
and messages consumed, which is what the benchmark harness compares
against the theorem bounds and against the baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import networkx as nx

from ..config import normalize_config, RunConfig
from ..exceptions import FragmentError
from ..graphs.properties import validate_weighted_graph
from ..simulator.engine import create_engine
from ..simulator.primitives.bfs import build_bfs_tree
from ..simulator.primitives.broadcast import forest_broadcast
from ..simulator.primitives.intervals import assign_intervals
from ..simulator.primitives.neighbor_exchange import neighbor_exchange
from ..simulator.primitives.pipeline import pipelined_downcast, pipelined_upcast
from ..types import CostReport, Edge, FragmentId, PhaseTelemetry, VertexId
from .boruvka_merge import merge_fragment_graph
from .controlled_ghs import build_base_forest
from .mwoe import Candidate, fragment_outgoing_edges
from .parameters import choose_base_forest_parameter
from .results import MSTRunResult

#: Re-exported result type so callers can ``from repro.core.elkin_mst import ElkinMSTResult``.
ElkinMSTResult = MSTRunResult


def compute_mst(
    graph: nx.Graph,
    config: Optional[RunConfig] = None,
    root: Optional[VertexId] = None,
) -> MSTRunResult:
    """Compute the MST of ``graph`` with the paper's deterministic algorithm.

    Args:
        graph: connected undirected graph with distinct positive edge
            weights (see :func:`repro.graphs.validate_weighted_graph`).
        config: run configuration (bandwidth ``b``, optional override of
            the base-forest parameter ``k``, telemetry switches).
        root: the BFS root ``rt``; defaults to the smallest vertex
            identity.

    Returns:
        An :class:`~repro.core.results.MSTRunResult` with
        ``algorithm == "elkin"``.
    """
    config = normalize_config(config)
    validate_weighted_graph(graph, require_unique_weights=True)
    n = graph.number_of_nodes()
    if n == 1:
        return MSTRunResult(
            algorithm="elkin",
            edges=set(),
            total_weight=0.0,
            cost=CostReport(),
            n=1,
            m=0,
            bandwidth=config.bandwidth,
        )

    network = create_engine(
        graph, bandwidth=config.bandwidth, validate=False, engine=config.engine
    )
    stage_costs: Dict[str, CostReport] = {}

    # Stage 1: auxiliary BFS tree tau.
    checkpoint = network.checkpoint()
    bfs_tree = build_bfs_tree(network, root)
    stage_costs["bfs"] = network.cost_since(checkpoint)

    # Stage 2: base MST forest via Controlled-GHS with the regime's k.
    k = (
        config.base_forest_k
        if config.base_forest_k is not None
        else choose_base_forest_parameter(n, bfs_tree.depth, config.bandwidth)
    )
    checkpoint = network.checkpoint()
    base = build_base_forest(network, k)
    stage_costs["controlled_ghs"] = network.cost_since(checkpoint)
    base_forest = base.forest
    mst_edges: Set[Edge] = set(base_forest.tree_edges())

    # Stage 3: interval labelling of tau and the upcast of base-fragment
    # identities and routing positions to the root.
    checkpoint = network.checkpoint()
    routing = assign_intervals(network, bfs_tree.forest)
    base_roots = base_forest.roots()
    pipelined_upcast(
        network,
        bfs_tree.forest,
        items={
            root_vertex: {fragment_id: (routing.position(root_vertex),)}
            for fragment_id, root_vertex in base_roots.items()
        },
    )
    stage_costs["intervals_and_registration"] = network.cost_since(checkpoint)

    # Stage 4: Boruvka phases over the base forest.
    base_combined = base_forest.combined_forest()
    base_of: Dict[VertexId, FragmentId] = base_forest.vertex_to_fragment()
    coarse_of: Dict[VertexId, FragmentId] = dict(base_of)
    coarse_of_base: Dict[FragmentId, FragmentId] = {fid: fid for fid in base_roots}
    phases = []
    phase_index = 0
    checkpoint = network.checkpoint()

    while len(set(coarse_of_base.values())) > 1:
        phase_start = network.checkpoint()
        coarse_ids = set(coarse_of_base.values())

        # 4a. Every vertex tells its neighbours its coarse fragment identity.
        neighbor_coarse = neighbor_exchange(network, coarse_of)

        # 4b. Every base fragment finds the lightest edge leaving its
        #     coarse fragment (convergecast inside the base fragments).
        candidates_by_root = fragment_outgoing_edges(
            network, base_combined, coarse_of, neighbor_coarse
        )

        # 4c. Pipelined upcast of the candidates, keyed by the coarse
        #     fragment they would leave; the root keeps the minimum per key.
        items: Dict[VertexId, Dict[FragmentId, Candidate]] = {}
        for fragment_id, root_vertex in base_roots.items():
            candidate = candidates_by_root.get(root_vertex)
            if candidate is None:
                continue
            weight, u, v, _ = candidate
            # Re-key the target group by *coarse* identity (the neighbour
            # exchange already reported coarse identities, so the fourth
            # component is the target coarse fragment).
            items.setdefault(root_vertex, {})[coarse_of_base[fragment_id]] = candidate
        upcast_result = pipelined_upcast(network, bfs_tree.forest, items)
        mwoe_per_coarse = upcast_result[bfs_tree.root]

        if not mwoe_per_coarse:
            break

        # 4d. The root merges the fragments' graph locally.
        merge = merge_fragment_graph(mwoe_per_coarse, coarse_ids)
        mst_edges |= merge.mst_edges_added

        # 4e. Pipelined downcast: every base-fragment root learns the
        #     identity of the coarse fragment that now contains it.
        payloads = [
            (base_roots[fragment_id], merge.new_fragment_of[coarse_of_base[fragment_id]])
            for fragment_id in sorted(base_roots)
        ]
        pipelined_downcast(network, bfs_tree.forest, payloads, routing=routing)

        # 4f. Broadcast the new coarse identity inside every base fragment.
        new_ids_by_root = {
            base_roots[fragment_id]: merge.new_fragment_of[coarse_of_base[fragment_id]]
            for fragment_id in base_roots
        }
        broadcast_values = forest_broadcast(network, base_combined, new_ids_by_root)
        coarse_of = dict(broadcast_values)
        coarse_of_base = {
            fragment_id: merge.new_fragment_of[coarse_of_base[fragment_id]]
            for fragment_id in base_roots
        }

        phase_cost = network.cost_since(phase_start)
        phases.append(
            PhaseTelemetry(
                phase=phase_index,
                fragments_before=len(coarse_ids),
                fragments_after=len(set(coarse_of_base.values())),
                rounds=phase_cost.rounds,
                messages=phase_cost.messages,
                mst_edges_added=len(merge.mst_edges_added),
                details={"upcast_keys": len(mwoe_per_coarse)},
            )
        )
        phase_index += 1
        if phase_index > 2 * max(1, n).bit_length() + 4:
            raise FragmentError(
                f"Boruvka did not converge after {phase_index} phases "
                f"({len(set(coarse_of_base.values()))} fragments remain)"
            )

    stage_costs["boruvka"] = network.cost_since(checkpoint)

    if len(mst_edges) != n - 1:
        raise FragmentError(
            f"algorithm selected {len(mst_edges)} edges for a graph with {n} vertices"
        )
    total_weight = sum(graph[u][v]["weight"] for u, v in mst_edges)

    result = MSTRunResult(
        algorithm="elkin",
        edges=mst_edges,
        total_weight=total_weight,
        cost=network.total_cost(),
        n=n,
        m=graph.number_of_edges(),
        bandwidth=config.bandwidth,
        phases=phases if config.collect_telemetry else [],
        details={
            "k": k,
            "bfs_depth": bfs_tree.depth,
            "bfs_root": bfs_tree.root,
            "base_fragment_count": base_forest.count,
            "base_max_diameter": base_forest.max_diameter(),
            "controlled_ghs_phases": [phase.__dict__ for phase in base.phases]
            if config.collect_telemetry
            else [],
            "boruvka_phase_count": phase_index,
            "stage_costs": {name: cost.__dict__ for name, cost in stage_costs.items()},
        },
    )
    if config.strict_bounds:
        from ..verify.complexity_checks import assert_elkin_bounds

        assert_elkin_bounds(result, condition=config.condition)
    return result
