"""Columnar run-store backend: sqlite3 behind the RunStore contract.

ROADMAP item 5.  The JSONL store (:mod:`~repro.campaign.store`) stays
the durable interchange format; this backend trades its
parse-everything-on-open load for a real database file:

* **Same contract.**  ``ColumnarStore`` is duck-type compatible with
  :class:`~repro.campaign.store.RunStore` everywhere the campaign stack
  touches a store: append/flush group commit with the same durability
  knobs, resume point-lookups, ``compact()``, idempotent
  ``merge_from()`` across backends, read-only opens, and the physical
  record interchange (``iter_record_lines`` / ``append_record_line``)
  that makes ``repro-mst store convert`` round trips byte-identical --
  every record's exact JSON text is stored verbatim in the ``records``
  table.

* **Columnar rows.**  Each run record also materializes its flat output
  row into a ``run_rows`` table (key metric columns plus the row's JSON
  text), so ``iter_rows`` -- the whole input of ``repro-mst report`` --
  streams rows without deserializing a single result payload.  That is
  the report-latency win benchmark E17 measures.

* **Incremental analytics.**  A
  :class:`~repro.analysis.incremental.MaterializedAnalytics` is folded
  forward on every append and persisted in the ``meta`` table, so the
  audit counters and power-law sufficient statistics of a million-row
  store are available without touching the rows at all.  Superseding
  appends (``resume=False`` re-runs) poison the incremental state --
  aggregates are not subtractable -- so it is marked dirty and rebuilt
  from the ``run_rows`` table on next use.

Durability mapping: ``"record"`` commits (and fsyncs, via
``synchronous=FULL``) every append in its own transaction; ``"batch"``
commits every ``batch_size`` appends or on :meth:`flush`; ``"none"``
sets ``synchronous=OFF`` and lets the OS decide.  ``stats["fsyncs"]``
counts commits under a syncing level (sqlite may issue more than one
fsync per transaction internally).
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union
from urllib.parse import quote

from ..analysis.incremental import MaterializedAnalytics
from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError
from .spec import RunSpec
from .store import (
    DURABILITY_LEVELS,
    GraphDescription,
    make_run_record,
    merge_stores,
)

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS records_by_key ON records (kind, key, id);
CREATE TABLE IF NOT EXISTS run_rows (
    record_id INTEGER PRIMARY KEY,
    key TEXT NOT NULL,
    graph TEXT,
    algorithm TEXT,
    n INTEGER,
    m INTEGER,
    rounds REAL,
    messages REAL,
    condition TEXT,
    status TEXT,
    row_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS run_rows_by_key ON run_rows (key);
"""

#: The scalar row columns mirrored into real sqlite columns (the full
#: row always travels in ``row_json``; these exist for ad-hoc SQL).
_ROW_COLUMNS = ("graph", "algorithm", "n", "m", "rounds", "messages", "condition", "status")

_LIVE_RUNS = (
    "SELECT key, MIN(id) AS first_id, MAX(id) AS last_id "
    "FROM records WHERE kind = 'run' GROUP BY key"
)


class ColumnarStore:
    """Content-addressed campaign storage in a single sqlite3 file."""

    backend_name = "columnar"

    def __init__(
        self,
        path: Union[str, Path],
        durability: str = "batch",
        batch_size: int = 64,
        read_only: bool = False,
    ) -> None:
        if durability not in DURABILITY_LEVELS:
            raise ConfigurationError(
                f"unknown durability {durability!r}; expected one of "
                f"{', '.join(DURABILITY_LEVELS)}"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.path = Path(path)
        self.durability = durability
        self.batch_size = batch_size
        self.read_only = read_only
        self.stats: Dict[str, int] = {
            "appends": 0,
            "commits": 0,
            "fsyncs": 0,
            "recovered_lines": 0,
        }
        if self.path.is_dir():
            raise ConfigurationError(
                f"{self.path} is a directory (a sharded JSONL store, not a columnar one)"
            )
        if read_only:
            if not self.path.exists():
                raise ConfigurationError(f"no run store at {self.path}")
            uri = "file:" + quote(str(self.path.resolve())) + "?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(str(self.path))
        self._conn.isolation_level = None  # explicit BEGIN/COMMIT
        #: Buffered (kind, key, payload, row) tuples awaiting commit.
        self._buffer: List[Tuple[str, str, str, Optional[Dict[str, object]]]] = []
        #: Parsed pending records, for point reads before the commit.
        self._pending_runs: Dict[str, Dict[str, object]] = {}
        self._run_keys: Dict[str, None] = {}
        self._graphs: Dict[str, GraphDescription] = {}
        self._physical_records = 0
        self._analytics: Optional[MaterializedAnalytics] = None
        self._analytics_dirty = False
        try:
            self._init_schema()
            self._load()
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise ConfigurationError(
                f"{self.path}: not a columnar run store ({error})"
            ) from error

    # -- schema / load ---------------------------------------------------

    def _init_schema(self) -> None:
        if self.read_only:
            version = self._meta_get("schema_version")
            if version is None:
                raise ConfigurationError(f"{self.path}: not a columnar run store")
            return
        self._conn.executescript(_SCHEMA)
        version = self._meta_get("schema_version")
        if version is None:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES ('schema_version', ?)",
                (str(_SCHEMA_VERSION),),
            )
            self._conn.commit()
        elif int(version) != _SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: unsupported columnar store schema v{version}"
            )
        if self.durability == "none":
            self._conn.execute("PRAGMA synchronous = OFF")
        else:
            self._conn.execute("PRAGMA synchronous = FULL")

    def _meta_get(self, key: str) -> Optional[str]:
        try:
            row = self._conn.execute("SELECT v FROM meta WHERE k = ?", (key,)).fetchone()
        except sqlite3.OperationalError:
            return None  # no meta table: not (yet) a columnar store
        return None if row is None else str(row[0])

    def _load(self) -> None:
        self._physical_records = int(
            self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0]
        )
        for (key,) in self._conn.execute(
            "SELECT key FROM records WHERE kind = 'run' GROUP BY key ORDER BY MIN(id)"
        ):
            self._run_keys[str(key)] = None
        for (payload,) in self._conn.execute(
            "SELECT rec.payload FROM records AS rec JOIN ("
            "  SELECT key, MIN(id) AS first_id, MAX(id) AS last_id"
            "  FROM records WHERE kind = 'graph' GROUP BY key"
            ") AS live ON rec.id = live.last_id ORDER BY live.first_id"
        ):
            record = json.loads(payload)
            self._graphs[str(record["key"])] = dict(record["description"])
        self._load_analytics()

    # -- context manager / lifecycle -------------------------------------

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_writable(self) -> None:
        if self.read_only:
            raise ConfigurationError(
                f"store at {self.path} is opened read_only; writes are not allowed"
            )

    def flush(self) -> None:
        """Commit every buffered record in one transaction."""
        if not self._buffer:
            return
        self._require_writable()
        self._conn.execute("BEGIN")
        cursor = self._conn.cursor()
        for kind, key, payload, row in self._buffer:
            cursor.execute(
                "INSERT INTO records (kind, key, payload) VALUES (?, ?, ?)",
                (kind, key, payload),
            )
            if kind == "run":
                assert row is not None
                cursor.execute(
                    "INSERT INTO run_rows (record_id, key, graph, algorithm, n, m,"
                    " rounds, messages, condition, status, row_json)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        cursor.lastrowid,
                        key,
                        *(self._scalar(row.get(column)) for column in _ROW_COLUMNS),
                        json.dumps(row),
                    ),
                )
            self._physical_records += 1
        self._persist_analytics(cursor)
        self._conn.commit()
        self._buffer.clear()
        self._pending_runs.clear()
        self.stats["commits"] += 1
        if self.durability != "none":
            self.stats["fsyncs"] += 1

    def close(self) -> None:
        """Flush and close the database connection."""
        self.flush()
        self._conn.close()

    @staticmethod
    def _scalar(value: object) -> object:
        """Coerce a row value into something sqlite can hold natively."""
        if value is None or isinstance(value, (int, float, str)):
            return value
        return json.dumps(value)

    # -- appending -------------------------------------------------------

    def _append(
        self, kind: str, key: str, payload: str, row: Optional[Dict[str, object]]
    ) -> None:
        self._require_writable()
        self._buffer.append((kind, key, payload, row))
        self.stats["appends"] += 1
        if self.durability == "record" or len(self._buffer) >= self.batch_size:
            self.flush()

    def record_run(
        self,
        spec: RunSpec,
        row: Dict[str, object],
        result_json: Dict[str, object],
        provenance: Dict[str, object],
    ) -> Dict[str, object]:
        record = make_run_record(spec, row, result_json, provenance)
        self._insert_run_record(record)
        return record

    def _insert_run_record(self, record: Dict[str, object]) -> None:
        """Backend hook: adopt one already-built run record (last wins)."""
        self._adopt_run_record(record, json.dumps(record))

    def _adopt_run_record(self, record: Dict[str, object], payload: str) -> None:
        key = str(record["key"])
        row = dict(record["row"])
        self._note_run(key, row)
        self._pending_runs[key] = record
        self._append("run", key, payload, row)

    def _note_run(self, key: str, row: Dict[str, object]) -> None:
        if key in self._run_keys:
            # Superseding append: incremental aggregates are not
            # subtractable, so the materialized state is rebuilt lazily.
            self._mark_analytics_dirty()
        else:
            self._run_keys[key] = None
            if self._analytics is not None:
                self._analytics.add_row(row)

    def record_graph(self, key: str, description: GraphDescription) -> None:
        self._graphs[key] = dict(description)
        record = {"kind": "graph", "key": key, "description": dict(description)}
        self._append("graph", key, json.dumps(record), None)

    # -- run lookups -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._run_keys)

    def __contains__(self, key: str) -> bool:
        return key in self._run_keys

    def has_run(self, key: str) -> bool:
        return key in self._run_keys

    def run_keys(self) -> List[str]:
        return list(self._run_keys)

    def _record_for(self, key: str) -> Dict[str, object]:
        pending = self._pending_runs.get(key)
        if pending is not None:
            return json.loads(json.dumps(pending))  # detach from the buffer
        row = self._conn.execute(
            "SELECT payload FROM records WHERE kind = 'run' AND key = ?"
            " ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        if row is None:
            raise KeyError(key)
        return json.loads(row[0])

    def get_row(self, key: str) -> Dict[str, object]:
        """The flat output row recorded for ``key`` (KeyError if absent).

        Served from the materialized ``run_rows`` column -- no result
        payload is deserialized.  Always a fresh copy.
        """
        pending = self._pending_runs.get(key)
        if pending is not None:
            return json.loads(json.dumps(pending["row"]))
        row = self._conn.execute(
            "SELECT row_json FROM run_rows WHERE record_id ="
            " (SELECT MAX(id) FROM records WHERE kind = 'run' AND key = ?)",
            (key,),
        ).fetchone()
        if row is None:
            raise KeyError(key)
        return json.loads(row[0])

    def get_result(self, key: str) -> MSTRunResult:
        """The full deserialized result recorded for ``key``."""
        return MSTRunResult.from_json_dict(self._record_for(key)["result"])

    def get_spec(self, key: str) -> RunSpec:
        return RunSpec.from_json_dict(self._record_for(key)["spec"])

    def get_provenance(self, key: str) -> Dict[str, object]:
        return dict(self._record_for(key)["provenance"])

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """All recorded rows, in insertion order, from the columnar table.

        This is the materialized fast path ``repro-mst report`` runs on:
        rows stream straight out of ``run_rows.row_json`` without
        touching the (much larger) spec/result/provenance payloads.
        """
        self.flush()
        return self._iter_rows()

    def _iter_rows(self) -> Iterator[Dict[str, object]]:
        for (row_json,) in self._conn.execute(
            "SELECT r.row_json FROM run_rows AS r"
            f" JOIN ({_LIVE_RUNS}) AS live ON r.record_id = live.last_id"
            " ORDER BY live.first_id"
        ):
            yield json.loads(row_json)

    def iter_rows_full_rescan(self) -> Iterator[Dict[str, object]]:
        """All recorded rows by re-parsing every live record payload.

        The escape hatch behind ``repro-mst report --full-rescan``:
        bypasses both the columnar ``run_rows`` table and the
        materialized analytics, deriving every row from the same bytes
        a JSONL store would read.  Tests assert it is byte-identical to
        :meth:`iter_rows`.
        """
        self.flush()
        return (record["row"] for record in self._iter_run_records())

    def iter_run_records(self) -> Iterator[Dict[str, object]]:
        """Every live run record, in insertion order (parsed payloads)."""
        self.flush()
        return self._iter_run_records()

    def _iter_run_records(self) -> Iterator[Dict[str, object]]:
        for (payload,) in self._conn.execute(
            "SELECT rec.payload FROM records AS rec"
            f" JOIN ({_LIVE_RUNS}) AS live ON rec.id = live.last_id"
            " ORDER BY live.first_id"
        ):
            yield json.loads(payload)

    # -- graph description cache ----------------------------------------

    def graph_description(self, key: str) -> Optional[GraphDescription]:
        description = self._graphs.get(key)
        return json.loads(json.dumps(description)) if description is not None else None

    def has_graph(self, key: str) -> bool:
        return key in self._graphs

    def graph_keys(self) -> List[str]:
        return list(self._graphs)

    def iter_graph_items(self) -> Iterator[Tuple[str, GraphDescription]]:
        for key, description in self._graphs.items():
            yield key, dict(description)

    # -- materialized analytics ------------------------------------------

    def _load_analytics(self) -> None:
        if self._physical_records == 0:
            # Fresh store: start folding incrementally from record one.
            self._analytics = MaterializedAnalytics()
            self._analytics_dirty = False
            return
        payload = self._meta_get("analytics")
        state = self._meta_get("analytics_state")
        if payload is None or state != self._analytics_fingerprint():
            # Absent, or the file advanced without analytics upkeep
            # (e.g. external tooling): rebuild lazily.
            self._analytics = None
            self._analytics_dirty = True
            return
        try:
            self._analytics = MaterializedAnalytics.from_json_dict(json.loads(payload))
            self._analytics_dirty = False
        except Exception:
            self._analytics = None
            self._analytics_dirty = True

    def _analytics_fingerprint(self) -> str:
        return json.dumps(
            {"records": self._physical_records, "runs": len(self._run_keys)},
            sort_keys=True,
        )

    def _mark_analytics_dirty(self) -> None:
        self._analytics = None
        self._analytics_dirty = True

    def _persist_analytics(self, cursor: sqlite3.Cursor) -> None:
        if self._analytics is not None and not self._analytics_dirty:
            cursor.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES ('analytics', ?)",
                (json.dumps(self._analytics.to_json_dict()),),
            )
            cursor.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES ('analytics_state', ?)",
                (self._analytics_fingerprint(),),
            )
        else:
            cursor.execute(
                "DELETE FROM meta WHERE k IN ('analytics', 'analytics_state')"
            )

    def analytics(self) -> MaterializedAnalytics:
        """The incremental analytics, rebuilding from ``run_rows`` if stale."""
        if self._analytics is None or self._analytics_dirty:
            self.flush()
            self._analytics = MaterializedAnalytics.from_rows(self._iter_rows())
            self._analytics_dirty = False
            if not self.read_only:
                self._conn.execute("BEGIN")
                cursor = self._conn.cursor()
                self._persist_analytics(cursor)
                self._conn.commit()
        return self._analytics

    def materialized_summary(self) -> Dict[str, object]:
        """Counters and fits from the materialized state (no row scan)."""
        return self.analytics().summary()

    # -- layout ----------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        return False

    def shard_paths(self) -> List[Path]:
        return [self.path] if self.path.exists() else []

    # -- maintenance -----------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Drop superseded records and reclaim the space (VACUUM).

        Same contract as the JSONL backend: keeps the last record per
        key, idempotent, returns physical record counts.
        """
        self._require_writable()
        self.flush()
        before = self._physical_records
        self._conn.execute("BEGIN")
        self._conn.execute(
            "DELETE FROM records WHERE id NOT IN"
            " (SELECT MAX(id) FROM records GROUP BY kind, key)"
        )
        self._conn.execute(
            "DELETE FROM run_rows WHERE record_id NOT IN (SELECT id FROM records)"
        )
        self._conn.commit()
        self._conn.execute("VACUUM")
        after = int(self._conn.execute("SELECT COUNT(*) FROM records").fetchone()[0])
        self._physical_records = after
        # Live rows are unchanged, so valid analytics stay valid -- but
        # the fingerprint moved with the physical record count.
        self._conn.execute("BEGIN")
        self._persist_analytics(self._conn.cursor())
        self._conn.commit()
        return {"before": before, "after": after, "dropped": before - after}

    def merge_from(self, source) -> Dict[str, int]:
        """Fold ``source`` (any backend, or a path) into this store."""
        self._require_writable()
        return merge_stores(self, source)

    # -- physical record interchange -------------------------------------

    def iter_record_lines(self) -> Iterator[str]:
        """Every physical record's exact JSON text, in append order."""
        self.flush()
        return (
            payload
            for (payload,) in self._conn.execute(
                "SELECT payload FROM records ORDER BY id"
            )
        )

    def append_record_line(self, line: str) -> None:
        """Append one physical record given as its exact JSON text."""
        self._require_writable()
        text = line.strip()
        if not text:
            return
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid store record line ({error})") from error
        kind = record.get("kind")
        if kind == "run":
            self._adopt_run_record(record, text)
        elif kind == "graph":
            self._graphs[str(record["key"])] = dict(record["description"])
            self._append("graph", str(record["key"]), text, None)
        else:
            raise ConfigurationError(f"unknown record kind {kind!r}")
