"""Named campaign presets reproducing the paper's E1-E9 scenario grids.

Each preset is a factory returning a fresh :class:`Campaign` whose grid
mirrors one of the experiment scenarios of the reproduction record
(``benchmarks/bench_e*``), at a scale suitable for laptops and CI:

* E1/E2 -- the controlled-GHS base forest: mixed families across the
  diameter regimes, and an explicit sweep of the ``k`` override.
* E3/E4 -- Theorem 3.1: round scaling on low-diameter graphs and the
  near-linear message bound across density extremes.
* E5 -- the high-diameter regime (``k = D``).
* E6 -- Theorem 3.2: the CONGEST(b log n) bandwidth sweep.
* E7/E8/E9 -- head-to-heads against the GKP, GHS and PRS-style
  baselines on their separating families.

``smoke`` is a deliberately tiny 16-cell grid used by CI and the
acceptance tests for the parallel executor.  ``zoo`` is the workload-zoo
sweep: every registered graph family (core set plus the
:mod:`repro.workloads` additions) under the paper's algorithm and a
sequential differential reference, plus a denser differential-stress
grid -- the preset the batched executor is sized against.  ``zoo-large``
is the n = 10^5 grid the numpy ``array`` kernel is sized against.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List

from ..exceptions import ConfigurationError
from ..graphs.generators import GraphSpec
from .spec import Campaign, graph_spec_for, RunSpec


def _e1_base_forest() -> Campaign:
    """E1: controlled-GHS base forest across diameter regimes."""
    graphs = [
        graph_spec_for("random_connected", 64),
        graph_spec_for("grid", 64),
        graph_spec_for("path", 64),
        graph_spec_for("star", 64),
    ]
    return Campaign.from_grid("e1-base-forest", graphs, seeds=(0, 1))


def _e2_k_sweep() -> Campaign:
    """E2: explicit base-forest parameter (k) sweep on one instance."""
    graphs = [graph_spec_for("random_connected", 96)]
    return Campaign.from_grid("e2-k-sweep", graphs, seeds=(0,), k_overrides=(2, 4, 8, None))


def _e3_low_diameter() -> Campaign:
    """E3 (Theorem 3.1, time): round scaling on low-diameter graphs."""
    graphs = [graph_spec_for("random_connected", n) for n in (64, 128, 256)]
    return Campaign.from_grid("e3-low-diameter", graphs, seeds=(0,))


def _e4_messages() -> Campaign:
    """E4 (Theorem 3.1, messages): density extremes for the message bound."""
    graphs = [
        GraphSpec("random_connected", {"n": 96, "extra_edges": 96}),
        graph_spec_for("complete", 32),
        GraphSpec("random_regular", {"n": 64, "degree": 4}),
        graph_spec_for("preferential_attachment", 96),
    ]
    return Campaign.from_grid("e4-messages", graphs, seeds=(0,))


def _e5_high_diameter() -> Campaign:
    """E5: the high-diameter regime where the paper picks k = D."""
    graphs = [
        graph_spec_for("path", 128),
        graph_spec_for("cycle", 128),
        graph_spec_for("caterpillar", 128),
        graph_spec_for("lollipop", 96),
    ]
    return Campaign.from_grid("e5-high-diameter", graphs, seeds=(0,))


def _e6_bandwidth() -> Campaign:
    """E6 (Theorem 3.2): CONGEST(b log n) bandwidth sweep."""
    graphs = [graph_spec_for("random_connected", 128)]
    return Campaign.from_grid("e6-bandwidth", graphs, bandwidths=(1, 2, 4, 8), seeds=(0,))


def _e7_vs_gkp() -> Campaign:
    """E7: messages against Garay-Kutten-Peleg on sparse low-diameter graphs."""
    graphs = [GraphSpec("random_connected", {"n": 128, "extra_edges": 128})]
    return Campaign.from_grid("e7-vs-gkp", graphs, algorithms=("elkin", "gkp"), seeds=(0, 1))


def _e8_vs_ghs() -> Campaign:
    """E8: rounds against GHS on families whose MST diameter is Theta(n)."""
    graphs = [graph_spec_for("hub_path", 128), graph_spec_for("wheel", 64)]
    return Campaign.from_grid("e8-vs-ghs", graphs, algorithms=("elkin", "ghs"), seeds=(0,))


def _e9_vs_prs() -> Campaign:
    """E9: second-phase messages against a PRS-style sqrt(n) base forest."""
    graphs = [graph_spec_for("path", 96), graph_spec_for("lollipop", 96)]
    return Campaign.from_grid("e9-vs-prs", graphs, algorithms=("elkin", "prs"), seeds=(0,))


def _smoke() -> Campaign:
    """Tiny 16-cell grid (2 graphs x 2 algorithms x 2 bandwidths x 2 seeds)."""
    graphs = [
        graph_spec_for("random_connected", 24),
        graph_spec_for("grid", 16),
    ]
    return Campaign.from_grid(
        "smoke", graphs, algorithms=("elkin", "ghs"), bandwidths=(1, 2), seeds=(0, 1)
    )


#: The sequential references every zoo instance is differentially
#: tested against (four independent implementations; see
#: ``tests/test_property_based.py`` for the seeded-instance suite).
ZOO_REFERENCES = ("kruskal", "prim", "prim_dense", "boruvka_seq")


def _zoo() -> Campaign:
    """The workload-zoo sweep (coverage + differential stress).

    Two concatenated sub-grids, all on the fast kernel with pinned
    seeds (every cell deterministic, so the batched executor can share
    graphs, oracles and arena lanes):

    * *coverage*: the canonical small instance of **every** registered
      family, run by the paper's algorithm (seed 0) and by all four
      sequential references (seeds 0 and 1) -- a differential panel on
      every family;
    * *stress*: denser instances where verification and graph
      construction dominate, run by the four sequential references --
      the differential-testing workload that batched execution
      amortizes hardest.
    """
    from .. import workloads

    specs: List[RunSpec] = []
    for graph in workloads.zoo_coverage_specs():
        specs.append(RunSpec(graph=graph, algorithm="elkin", engine="fast", seed=0))
        for algorithm, seed in itertools.product(ZOO_REFERENCES, (0, 1)):
            specs.append(
                RunSpec(graph=graph, algorithm=algorithm, engine="fast", seed=seed)
            )
    for graph, algorithm, seed in itertools.product(
        workloads.zoo_stress_specs(), ZOO_REFERENCES, (0, 1)
    ):
        specs.append(
            RunSpec(graph=graph, algorithm=algorithm, engine="fast", seed=seed)
        )
    return Campaign(name="zoo", specs=specs)


def _zoo_large() -> Campaign:
    """n = 10^5-scale instances on the array kernel (Theorem 3.1 regime).

    The scale the paper's complexity statements are about: three
    message-heavy low-diameter families at n = 10^5, run by the paper's
    algorithm on the numpy kernel.  Verification is off (the sequential
    oracle would dominate the sweep) and callers should pass
    ``--no-diameter`` -- exact hop-diameter is O(n m) and these
    instances are all D = O(log n) by construction.  The ``fast``
    kernel can execute this grid too, just not interactively.
    """
    graphs = [
        GraphSpec("random_connected", {"n": 100_000, "extra_edges": 400_000, "seed": 0}),
        GraphSpec("random_regular", {"n": 100_000, "degree": 8, "seed": 0}),
        GraphSpec("hypercube", {"dim": 16, "seed": 0}),
    ]
    specs = [
        RunSpec(graph=graph, algorithm="elkin", engine="array", seed=0)
        for graph in graphs
    ]
    return Campaign(name="zoo-large", specs=specs, verify=False)


def _zoo_faulty() -> Campaign:
    """The network-conditions sweep: algorithm x graph x condition.

    Three small zoo graphs, the paper's algorithm and the GHS baseline,
    each under the clean network plus three condition presets.  The
    ``lossy`` and ``delayed`` cells terminate and must pass the full
    oracle panel (eventual delivery preserves correctness); the
    ``crash-stop`` cells exercise the typed
    :class:`~repro.exceptions.NonTerminationError` path and produce
    ``status = "non-terminated"`` rows.  Every cell is deterministic
    (pinned seeds, counter-hashed fault fates), so two runs of this
    preset -- at any jobs count -- are byte-identical.
    """
    graphs = [
        graph_spec_for("random_connected", 24),
        graph_spec_for("grid", 16),
        graph_spec_for("cycle", 20),
    ]
    return Campaign.from_grid(
        "zoo-faulty",
        graphs,
        algorithms=("elkin", "ghs"),
        engines=("fast",),
        seeds=(0,),
        conditions=(None, "lossy", "delayed", "crash-stop"),
    )


PRESETS: Dict[str, Callable[[], Campaign]] = {
    "e1-base-forest": _e1_base_forest,
    "e2-k-sweep": _e2_k_sweep,
    "e3-low-diameter": _e3_low_diameter,
    "e4-messages": _e4_messages,
    "e5-high-diameter": _e5_high_diameter,
    "e6-bandwidth": _e6_bandwidth,
    "e7-vs-gkp": _e7_vs_gkp,
    "e8-vs-ghs": _e8_vs_ghs,
    "e9-vs-prs": _e9_vs_prs,
    "smoke": _smoke,
    "zoo": _zoo,
    "zoo-faulty": _zoo_faulty,
    "zoo-large": _zoo_large,
}


def available_presets() -> List[str]:
    """Sorted preset names accepted by ``repro-mst sweep --preset``."""
    return sorted(PRESETS)


def preset_campaign(name: str, engine: str = "") -> Campaign:
    """Materialize the named preset, optionally retargeted at ``engine``."""
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {', '.join(available_presets())}"
        )
    campaign = PRESETS[name]()
    if engine:
        campaign = campaign.with_engine(engine)
    return campaign
