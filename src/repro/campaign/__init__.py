"""Campaign orchestration: declarative sweep grids, executors, run store.

The paper's headline claims are *scaling curves* -- rounds and messages
as functions of ``n``, ``D`` and the bandwidth ``b`` -- so reproducing
them means sweeping hundreds of (graph family x algorithm x bandwidth x
engine x seed) cells.  This package turns such sweeps into data:

* :mod:`repro.campaign.spec` -- :class:`RunSpec` (one cell, fully
  serializable, content-hashed) and :class:`Campaign` (a named grid of
  cells with a cross-product expander);
* :mod:`repro.campaign.presets` -- named grids reproducing the paper's
  E1-E9 experiment scenarios;
* :mod:`repro.campaign.executor` -- serial and ``multiprocessing``
  executors that produce row-for-row identical output;
* :mod:`repro.campaign.store` -- an append-only JSONL run store keyed by
  each cell's content hash, with provenance and resume semantics;
* :mod:`repro.campaign.columnar` -- the sqlite-backed columnar backend
  behind the same contract (:func:`open_store` picks by path; see
  DESIGN.md, Section 15).

Quickstart::

    from repro.campaign import Campaign, RunStore, execute_campaign
    from repro.graphs import GraphSpec

    campaign = Campaign.from_grid(
        "demo",
        graphs=[GraphSpec("random_connected", {"n": 64})],
        algorithms=("elkin", "ghs"),
        bandwidths=(1, 4),
        seeds=(0, 1),
    )
    report = execute_campaign(campaign, store=RunStore("runs.jsonl"), jobs=4)
    print(report.rows)
"""

from .columnar import ColumnarStore
from .executor import CampaignReport, execute_campaign, run_spec
from .presets import available_presets, preset_campaign, PRESETS
from .spec import Campaign, graph_spec_for, inline_graph_spec, RunSpec
from .store import convert_store, open_store, RunStore

__all__ = [
    "Campaign",
    "CampaignReport",
    "ColumnarStore",
    "PRESETS",
    "RunSpec",
    "RunStore",
    "available_presets",
    "convert_store",
    "execute_campaign",
    "graph_spec_for",
    "inline_graph_spec",
    "open_store",
    "preset_campaign",
    "run_spec",
]
