"""Declarative layer: serializable run specs and campaign grids.

A :class:`RunSpec` pins down *everything* that determines one simulated
execution -- the graph (as a :class:`~repro.graphs.generators.GraphSpec`),
the algorithm, the CONGEST bandwidth, the simulation engine, the
generator seed and the optional base-forest ``k`` override.  Because the
spec is pure data it can be hashed (:meth:`RunSpec.run_key`), stored in
the JSONL run store, shipped to a worker process, and compared across
machines.

A :class:`Campaign` is a named, ordered list of specs; the
:meth:`Campaign.from_grid` expander materializes the full cross-product
of the supplied axes in a deterministic order (graph-major, then
algorithm, bandwidth, engine, seed, k-override), which is what makes the
parallel executor's output reproducible row for row.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from ..conditions.spec import NetworkCondition, normalize_condition
from ..exceptions import ConfigurationError
from ..graphs.generators import ensure_zoo_families, FAMILIES, GraphSpec, SHAPE_RULES
from ..simulator.engine import DEFAULT_ENGINE


def _canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: object) -> str:
    """16-hex-character content hash of a JSON-safe payload.

    The identity function of the whole campaign layer: run keys, graph
    keys and the scheduler's work-unit keys are all this hash over a
    canonical JSON encoding, so identities agree across processes,
    hosts and sessions.
    """
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()[:16]


def graph_spec_for(family: str, n: int, seed: Optional[int] = None) -> GraphSpec:
    """Build a :class:`GraphSpec` for ``family`` at target size ``n``.

    Families parameterized by something other than a vertex count
    (grids, tori, lollipops, barbells) get canonical shapes derived from
    ``n`` so the CLI and the presets can sweep every family on one
    ``--sizes`` axis.
    """
    ensure_zoo_families()
    if family not in FAMILIES:
        known = ", ".join(sorted(FAMILIES))
        raise ConfigurationError(f"unknown graph family '{family}'; known families: {known}")
    if family == "edge_list":
        raise ConfigurationError("edge_list specs carry explicit edges; build them directly")
    shape = SHAPE_RULES.get(family)
    params: Dict[str, object] = shape(n) if shape is not None else {"n": n}
    if seed is not None:
        params["seed"] = seed
    return GraphSpec(family, params)


def inline_graph_spec(graph: nx.Graph, require_int_nodes: bool = True) -> GraphSpec:
    """Serialize a prebuilt weighted graph into an ``edge_list`` spec.

    This is how the legacy runners (``compare_algorithms`` /
    ``sweep_bandwidth``), which accept an already-built
    :class:`networkx.Graph`, ride on the campaign layer: the graph is
    flattened into a sorted ``(u, v, weight)`` list so the resulting
    spec hashes and round-trips like any other.
    """
    if require_int_nodes and any(not isinstance(node, int) for node in graph.nodes()):
        raise ConfigurationError("inline graphs must have integer node labels")
    edges = sorted(
        (min(int(u), int(v)), max(int(u), int(v)), float(data["weight"]))
        for u, v, data in graph.edges(data=True)
    )
    params: Dict[str, object] = {"edges": [list(edge) for edge in edges]}
    covered = {u for u, _, _ in edges} | {v for _, v, _ in edges}
    uncovered = sorted(int(node) for node in graph.nodes() if int(node) not in covered)
    if uncovered:  # only a connected 1-vertex graph can reach this
        params["nodes"] = uncovered
    return GraphSpec("edge_list", params)


@dataclass(frozen=True)
class RunSpec:
    """One cell of a sweep: graph x algorithm x bandwidth x engine x seed.

    Attributes:
        graph: declarative graph instance description.
        algorithm: name registered in :mod:`repro.algorithms`.
        bandwidth: ``b`` of the CONGEST(b log n) model.
        engine: simulation kernel name (``"reference"`` / ``"fast"``).
        seed: generator seed; when not ``None`` it overrides the
            ``seed`` entry of ``graph.params`` (the seed axis of a grid)
            and is recorded in output rows for provenance.
        base_forest_k: explicit override of the paper's base-forest
            parameter ``k`` (``None`` applies the paper's rule).
        collect_telemetry: record per-phase telemetry on the result
            (the default).  Only a non-default value enters the content
            hash, so pre-existing store keys stay valid.
        strict_bounds: raise when measured costs exceed the theorem
            bounds.  Same hash rule as ``collect_telemetry``.
        label: presentation-only row label.  Deliberately *excluded*
            from the content hash: relabeling a sweep must not invalidate
            its completed cells in the run store.
        condition: optional :class:`~repro.conditions.NetworkCondition`
            applied to the cell (preset names / clause strings / JSON
            dicts are normalized at construction).  ``None`` -- the
            default, and the only value existing stores contain --
            leaves the content hash unchanged.
    """

    graph: GraphSpec
    algorithm: str = "elkin"
    bandwidth: int = 1
    engine: str = DEFAULT_ENGINE
    seed: Optional[int] = None
    base_forest_k: Optional[int] = None
    collect_telemetry: bool = True
    strict_bounds: bool = False
    label: Optional[str] = None
    condition: Optional[NetworkCondition] = None

    def __post_init__(self) -> None:
        if self.graph.family == "edge_list" and self.seed is not None:
            raise ConfigurationError(
                "the seed axis does not apply to edge_list graphs (the instance "
                "is fixed by its edges); drop the seed or use a generator family"
            )
        if self.condition is not None and not isinstance(self.condition, NetworkCondition):
            object.__setattr__(self, "condition", normalize_condition(self.condition))

    def is_deterministic(self) -> bool:
        """True when building this spec twice yields the identical instance.

        ``edge_list`` specs carry their edges and weights verbatim; every
        other family draws random weights (and, for random families, a
        random structure) unless a generator seed is pinned.  The
        executor only shares instance descriptions across cells -- and
        the run store only caches them -- for deterministic specs;
        non-deterministic cells derive their description from the very
        graph they simulate, so each row is always self-consistent.
        """
        spec = self.effective_graph_spec()
        return spec.family == "edge_list" or spec.params.get("seed") is not None

    def effective_graph_spec(self) -> GraphSpec:
        """The graph spec with the run's seed axis merged into its params."""
        if self.seed is None or self.graph.family == "edge_list":
            return self.graph
        params = dict(self.graph.params)
        params["seed"] = self.seed
        return GraphSpec(self.graph.family, params)

    def build_graph(self) -> nx.Graph:
        return self.effective_graph_spec().build()

    def display_label(self) -> str:
        return self.label or self.effective_graph_spec().label()

    def _identity(self) -> Dict[str, object]:
        # Cached: the store's group-commit path calls run_key() /
        # to_json_dict() once per record, and the identity (a frozen
        # spec's pure function) dominated append cost before caching.
        # Frozen dataclasses still own a __dict__, so the cache rides
        # there via object.__setattr__; equality ignores it.
        cached = self.__dict__.get("_identity_cache")
        if cached is None:
            spec = self.effective_graph_spec()
            cached = {
                "graph": {"family": spec.family, "params": spec.params},
                "algorithm": self.algorithm,
                "bandwidth": self.bandwidth,
                "engine": self.engine,
                "seed": self.seed,
                "base_forest_k": self.base_forest_k,
            }
            # Non-default execution switches extend the identity; the
            # default combination hashes exactly as it did before these
            # fields existed, keeping old run stores resumable.
            if not self.collect_telemetry:
                cached["collect_telemetry"] = False
            if self.strict_bounds:
                cached["strict_bounds"] = True
            if self.condition is not None:
                cached["condition"] = self.condition.identity()
            # repro: allow[CON303] memo cache, excluded from eq/hash identity
            object.__setattr__(self, "_identity_cache", cached)
        # Shallow copy: to_json_dict decorates the top level in place.
        return dict(cached)

    def run_key(self) -> str:
        """Content hash identifying this cell in the run store (cached)."""
        key = self.__dict__.get("_run_key_cache")
        if key is None:
            key = content_hash(self._identity())
            # repro: allow[CON303] memo cache, excluded from eq/hash identity
            object.__setattr__(self, "_run_key_cache", key)
        return key

    def graph_key(self) -> str:
        """Content hash of the (seed-resolved) graph instance description (cached)."""
        key = self.__dict__.get("_graph_key_cache")
        if key is None:
            spec = self.effective_graph_spec()
            key = content_hash({"family": spec.family, "params": spec.params})
            # repro: allow[CON303] memo cache, excluded from eq/hash identity
            object.__setattr__(self, "_graph_key_cache", key)
        return key

    def to_json_dict(self) -> Dict[str, object]:
        payload = self._identity()
        payload["graph"] = {"family": self.graph.family, "params": self.graph.params}
        payload["label"] = self.label
        if self.condition is not None:
            # Full form (identity() drops presentation fields like name).
            payload["condition"] = self.condition.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "RunSpec":
        graph = payload["graph"]
        return cls(
            graph=GraphSpec(str(graph["family"]), dict(graph["params"])),
            algorithm=str(payload["algorithm"]),
            bandwidth=int(payload["bandwidth"]),
            engine=str(payload["engine"]),
            seed=None if payload.get("seed") is None else int(payload["seed"]),
            base_forest_k=(
                None
                if payload.get("base_forest_k") is None
                else int(payload["base_forest_k"])
            ),
            collect_telemetry=bool(payload.get("collect_telemetry", True)),
            strict_bounds=bool(payload.get("strict_bounds", False)),
            label=payload.get("label"),
            condition=normalize_condition(payload.get("condition")),
        )


@dataclass
class Campaign:
    """A named, ordered collection of run specs (one sweep)."""

    name: str
    specs: List[RunSpec] = field(default_factory=list)
    verify: bool = True

    @classmethod
    def from_grid(
        cls,
        name: str,
        graphs: Sequence[GraphSpec],
        algorithms: Iterable[str] = ("elkin",),
        bandwidths: Iterable[int] = (1,),
        engines: Iterable[str] = (DEFAULT_ENGINE,),
        seeds: Iterable[Optional[int]] = (None,),
        k_overrides: Iterable[Optional[int]] = (None,),
        conditions: Iterable[Optional[object]] = (None,),
        labels: Optional[Sequence[Optional[str]]] = None,
        verify: bool = True,
    ) -> "Campaign":
        """Materialize the cross-product of the supplied axes.

        The expansion order is deterministic (graph-major, then
        algorithm, bandwidth, engine, seed, k-override, condition) so
        two expansions of the same grid always agree cell for cell.
        """
        if labels is not None and len(labels) != len(graphs):
            raise ConfigurationError(
                f"labels must match graphs: {len(labels)} labels, {len(graphs)} graphs"
            )
        specs = [
            RunSpec(
                graph=graph,
                algorithm=algorithm,
                bandwidth=bandwidth,
                engine=engine,
                seed=seed,
                base_forest_k=k_override,
                label=labels[index] if labels is not None else None,
                condition=normalize_condition(condition),
            )
            for (
                (index, graph),
                algorithm,
                bandwidth,
                engine,
                seed,
                k_override,
                condition,
            ) in itertools.product(
                enumerate(graphs), algorithms, bandwidths, engines, seeds, k_overrides, conditions
            )
        ]
        return cls(name=name, specs=specs, verify=verify)

    def __len__(self) -> int:
        return len(self.specs)

    def run_keys(self) -> List[str]:
        return [spec.run_key() for spec in self.specs]

    def with_engine(self, engine: str) -> "Campaign":
        """A copy of the campaign retargeted at another simulation engine."""
        return Campaign(
            name=self.name,
            specs=[replace(spec, engine=engine) for spec in self.specs],
            verify=self.verify,
        )

    def with_condition(self, condition: Optional[object]) -> "Campaign":
        """A copy of the campaign with every cell run under ``condition``."""
        normalized = normalize_condition(condition)
        return Campaign(
            name=self.name,
            specs=[replace(spec, condition=normalized) for spec in self.specs],
            verify=self.verify,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "verify": self.verify,
            "specs": [spec.to_json_dict() for spec in self.specs],
        }


