"""Batched-parallel campaign scheduler: graph-affine units on persistent workers.

This module composes the two fast execution paths that used to be
mutually exclusive -- batching (:class:`~repro.campaign.executor._BatchRunner`)
and multiprocessing (the ``jobs > 1`` pool) -- into one scheduler:

* the pending cells are partitioned into **graph-affine work units**
  (:func:`partition_units`): cells sharing a ``graph_key`` always land
  in the same unit, so whichever worker leases the unit builds each
  graph and its verification oracle exactly once, like the in-process
  batch runner does;
* units are leased from a shared task queue to **persistent worker
  processes** -- one process lifecycle per campaign, not one pool per
  phase; a worker that finishes a unit immediately leases the next, so
  stragglers self-balance;
* each worker runs the stock :class:`_BatchRunner` arena over its unit
  and appends the finished cells to its own **worker-local shard
  store** (``durability="batch"``, one commit per completed lease),
  so no two processes ever contend on one file;
* the parent streams lifecycle events off a result queue -- observers
  (:class:`repro.api.hooks.RunObserver`) see ``on_run_start`` /
  ``on_phase`` / ``on_result`` live, in completion order -- and folds
  every shard into the caller's store with the idempotent
  :meth:`~repro.campaign.store.RunStore.merge_from`.

Rows, store records and resume semantics are byte-identical to the
serial, batched and legacy pool paths; only wall-clock time and the
provenance ``executor`` tag (``"batched-pool-<jobs>"``) differ.  A
worker that dies mid-campaign loses only its uncommitted lease: every
shard it flushed is still folded in, the campaign raises, and a
``--resume`` completes exactly the missing cells.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError, SimulationError
from .spec import content_hash, RunSpec
from .store import GraphDescription, open_store, RunStore

#: Target number of work units leased per worker over a campaign.
#: More units per worker means finer-grained load balancing; fewer
#: means better arena amortization inside each unit.  Four leaves
#: enough slack for stragglers without fragmenting the graph groups
#: of small sweeps.
UNITS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkUnit:
    """One lease: a run of campaign cells covering whole graph groups.

    ``cells`` carries, per cell, its campaign index, the JSON form of
    its spec (specs cross process boundaries as data) and the cached
    instance description when the parent store already held a usable
    one.  ``unit_key`` content-hashes the member run keys, so a unit's
    identity -- like every other identity of the campaign layer --
    agrees across processes, hosts and sessions.
    """

    unit_key: str
    cells: Tuple[Tuple[int, Dict[str, object], Optional[GraphDescription]], ...]


def partition_units(
    pending: Sequence[Tuple[int, RunSpec, str]],
    descriptions: Dict[str, GraphDescription],
    jobs: int,
    unit_cells: Optional[int] = None,
) -> List[WorkUnit]:
    """Split the pending cells into graph-affine work units.

    Cells are grouped by ``graph_key`` in first-occurrence (campaign)
    order, and whole groups are packed greedily into units of about
    ``len(pending) / (jobs * UNITS_PER_WORKER)`` cells.  A group is
    never split: every cell sharing a graph lands in one unit, so the
    worker leasing it pays one graph build, one oracle and one
    description for the whole group.  The partition is a pure function
    of the pending cells (keys are content hashes), so re-running a
    campaign leases identical units.
    """
    groups: Dict[str, List[Tuple[int, RunSpec, str]]] = {}
    for index, spec, key in pending:
        groups.setdefault(spec.graph_key(), []).append((index, spec, key))
    if unit_cells is None:
        target = max(1, round(len(pending) / (max(1, jobs) * UNITS_PER_WORKER)))
    else:
        target = max(1, unit_cells)
    units: List[WorkUnit] = []
    bucket: List[Tuple[int, RunSpec, str]] = []

    def emit() -> None:
        if not bucket:
            return
        units.append(
            WorkUnit(
                unit_key=content_hash([key for _, _, key in bucket]),
                cells=tuple(
                    (index, spec.to_json_dict(), descriptions.get(spec.graph_key()))
                    for index, spec, _ in bucket
                ),
            )
        )
        bucket.clear()

    for members in groups.values():
        bucket.extend(members)
        if len(bucket) >= target:
            emit()
    emit()
    return units


def _shard_path(shard_root: str, worker_id: int, backend: str = "jsonl") -> Path:
    """Worker-local shard store path; the backend follows the fold target.

    JSONL shards are sharded directories, columnar shards single sqlite
    files -- keeping each worker on the same backend as the caller's
    store exercises one code path end to end and keeps the fold a
    same-backend merge.
    """
    name = f"worker-{worker_id:02d}"
    if backend == "columnar":
        name += ".sqlite"
    return Path(shard_root) / name


def _transportable(error: BaseException) -> Optional[BaseException]:
    # The result queue pickles in a background feeder thread, where a
    # pickling failure would vanish silently; probe here and fall back
    # to the traceback text the parent always receives.
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return None


def _worker_main(
    worker_id: int,
    tasks: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
    abort: "multiprocessing.Event",
    shard_root: str,
    shard_backend: str,
    executor_name: str,
    do_verify: bool,
    compute_diameter: bool,
    want_results: bool,
) -> None:
    """Persistent worker: lease units until the sentinel, commit per lease."""
    from .executor import _BatchRunner, _provenance

    store = open_store(
        _shard_path(shard_root, worker_id, shard_backend),
        backend=shard_backend,
        durability="batch",
    )
    busy = 0.0
    units = cells = 0
    try:
        while True:
            unit = tasks.get()
            if unit is None:
                break
            if abort.is_set():
                continue  # keep draining so every worker reaches a sentinel
            started = time.perf_counter()
            pending = [
                (index, RunSpec.from_json_dict(spec_json), "")
                for index, spec_json, _ in unit.cells
            ]
            runner = _BatchRunner(pending, do_verify, compute_diameter)
            for (index, spec, _), (_, _, description) in zip(pending, unit.cells):
                results.put(("start", worker_id, index))
                _, row, result_json, used = runner.run(index, spec, description)
                store.record_run(
                    spec, row, result_json, _provenance(spec, executor_name, do_verify)
                )
                cells += 1
                results.put(
                    ("result", worker_id, index, row,
                     result_json if want_results else None, used)
                )
            store.flush()  # group commit: one fsync per completed lease
            units += 1
            busy += time.perf_counter() - started
    except BaseException as error:
        store.flush()  # finished cells of the failing lease still count
        results.put(("error", worker_id, _transportable(error), traceback.format_exc()))
    finally:
        store.close()
        results.put(
            ("done", worker_id, {"units": units, "cells": cells, "busy_seconds": busy})
        )


def run_scheduled(
    pending: Sequence[Tuple[int, RunSpec, str]],
    descriptions: Dict[str, GraphDescription],
    store: RunStore,
    jobs: int,
    executor_name: str,
    do_verify: bool,
    compute_diameter: bool,
    observers: Sequence[object],
    record_description: Callable[[RunSpec, GraphDescription], bool],
) -> Tuple[Dict[int, Dict[str, object]], int, int, List[Dict[str, object]]]:
    """Run the pending cells on persistent workers; fold shards into ``store``.

    Returns ``(fresh, described, workers, worker_stats)``: the freshly
    simulated rows by campaign index, the number of graph descriptions
    recorded via ``record_description``, the worker count, and one
    stats dict per worker (units/cells executed, busy seconds, and
    utilization -- busy time over campaign wall time).

    The shard fold runs in a ``finally``: a worker crash or an
    interrupt still merges every committed lease before the error
    propagates, so a subsequent ``--resume`` re-runs only what was
    genuinely lost.
    """
    from .executor import _notify
    from ..simulator.engine import active_provider_count

    methods = multiprocessing.get_all_start_methods()
    if active_provider_count() and "fork" not in methods:
        # Spawned workers start from a fresh interpreter: a caller's
        # engine_provider (a live closure) cannot cross that boundary,
        # so cells would silently run on different engines than the
        # parent process intended.  Fail loudly instead.
        raise ConfigurationError(
            f"{active_provider_count()} engine provider(s) are installed but this "
            "platform cannot fork worker processes; providers do not survive "
            "spawn -- run with jobs=1 (or batch=False) inside engine_provider"
        )
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    units = partition_units(pending, descriptions, jobs)
    worker_count = min(jobs, len(units))
    tasks = context.Queue()
    results = context.Queue()
    abort = context.Event()
    for unit in units:
        tasks.put(unit)
    for _ in range(worker_count):
        tasks.put(None)  # one sentinel per worker, after every unit

    shard_root = tempfile.mkdtemp(prefix="repro-campaign-shards-")
    shard_backend = getattr(store, "backend_name", "jsonl")
    specs_by_index = {index: spec for index, spec, _ in pending}
    fresh: Dict[int, Dict[str, object]] = {}
    described = 0
    stats: Dict[int, Dict[str, object]] = {}
    finished: Set[int] = set()
    failure: Optional[Tuple[Optional[BaseException], str]] = None
    workers: List[multiprocessing.Process] = []
    started = time.perf_counter()
    try:
        for worker_id in range(worker_count):
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    tasks,
                    results,
                    abort,
                    shard_root,
                    shard_backend,
                    executor_name,
                    do_verify,
                    compute_diameter,
                    bool(observers),
                ),
                daemon=True,
            )
            process.start()
            workers.append(process)
        while len(finished) < worker_count:
            try:
                event = results.get(timeout=0.1)
            except queue.Empty:
                for worker_id, process in enumerate(workers):
                    if worker_id in finished or process.exitcode is None:
                        continue
                    # Exited without a "done" event: a hard crash.  Its
                    # committed leases are still on disk and folded in
                    # below; only the uncommitted lease is lost.
                    finished.add(worker_id)
                    abort.set()
                    if failure is None:
                        failure = (
                            None,
                            f"campaign worker {worker_id} died with exit code "
                            f"{process.exitcode}; committed leases were kept and "
                            f"resume completes the rest",
                        )
                continue
            kind = event[0]
            if kind == "start":
                _notify(observers, "on_run_start", specs_by_index[event[2]])
            elif kind == "result":
                _, _, index, row, result_json, used = event
                spec = specs_by_index[index]
                fresh[index] = row
                if record_description(spec, used):
                    described += 1
                if observers and result_json is not None:
                    result = MSTRunResult.from_json_dict(result_json)
                    for phase in result.phases:
                        _notify(observers, "on_phase", spec, phase)
                    _notify(observers, "on_result", spec, result, row)
            elif kind == "error":
                _, _, error, text = event
                abort.set()
                if failure is None:
                    failure = (error, text)
            else:  # "done"
                _, worker_id, info = event
                stats[worker_id] = info
                finished.add(worker_id)
    except BaseException:
        abort.set()
        raise
    finally:
        wall = max(time.perf_counter() - started, 1e-9)
        for process in workers:
            process.join(timeout=10.0)
        for process in workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=10.0)
        for channel in (tasks, results):
            channel.close()
            channel.cancel_join_thread()
        # Fold every shard -- including a crashed worker's committed
        # leases -- into the caller's store.  merge_from skips keys the
        # store already holds, so the fold is idempotent.
        for worker_id in range(worker_count):
            shard = _shard_path(shard_root, worker_id, shard_backend)
            if shard.exists():
                store.merge_from(shard)
        shutil.rmtree(shard_root, ignore_errors=True)
    if failure is not None:
        error, text = failure
        if isinstance(error, BaseException):
            raise error
        raise SimulationError(f"parallel campaign execution failed: {text}")
    worker_stats = []
    for worker_id in range(worker_count):
        info = stats.get(worker_id, {})
        busy = float(info.get("busy_seconds", 0.0))
        worker_stats.append(
            {
                "worker": worker_id,
                "units": int(info.get("units", 0)),
                "cells": int(info.get("cells", 0)),
                "busy_seconds": round(busy, 6),
                "utilization": round(busy / wall, 4),
            }
        )
    return fresh, described, worker_count, worker_stats
