"""Persistence layer: a group-commit JSONL run store with resume support.

Every completed cell of a campaign is appended as one JSON line keyed by
the cell's content hash (:meth:`~repro.campaign.spec.RunSpec.run_key`),
together with its output row, the full serialized
:class:`~repro.core.results.MSTRunResult` and a provenance stamp
(package version, engine, seed, executor).  Re-running a campaign
against the same store skips every cell whose key is already present --
the resume semantics the ``repro-mst sweep --resume`` flag exposes.

Store v2 (this module) adds three things over the original
one-fsync-per-record file:

* **Group commit.**  Appends are buffered and committed with one
  ``write`` + one ``fsync`` per batch (``durability="batch"``, the
  default) instead of one syscall pair per record.  The durability knob
  also offers ``"record"`` (the original per-record fsync, for callers
  that must never lose an acknowledged cell) and ``"none"`` (no fsync
  at all; the OS decides).  :meth:`flush` commits the buffer explicitly
  and the store is a context manager (``with RunStore(...) as store:``)
  that flushes on exit; the campaign executor flushes at the end of
  every campaign, so ``--resume`` semantics are exact no matter the
  durability level -- at worst a crash re-runs the uncommitted tail.

* **Sharded layout.**  A store path naming a *directory* holds a
  ``MANIFEST.json`` plus ``shard-NNNNN.jsonl`` files that roll over
  every ``shard_records`` records, so huge campaign stores never hinge
  on one monolithic file.  A path naming a file (e.g. the classic
  ``runs.jsonl``) keeps the original single-file layout; old stores
  are transparently readable and writable either way.

* **Maintenance.**  :meth:`compact` rewrites the store dropping
  superseded last-record-wins duplicates; :meth:`merge_from` folds
  another store (v1 file or v2 directory) into this one, skipping keys
  already present -- both idempotent, both exposed as ``repro-mst
  store compact|merge``.

Crash recovery: a torn final line (a write interrupted before its
terminating newline) is dropped on load and counted in
``stats["recovered_lines"]``; a *terminated* corrupt line is still a
hard :class:`~repro.exceptions.ConfigurationError`, because it means
the file was damaged, not merely truncated.

A store constructed with ``path=None`` is purely in-memory; the legacy
experiment runners use that mode so they stay side-effect free.
"""

from __future__ import annotations

import copy
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.results import MSTRunResult
from ..exceptions import ConfigurationError
from .spec import RunSpec

#: One instance description: {"n": int, "m": int, "D": int (optional)}.
GraphDescription = Dict[str, object]

#: Supported durability levels (see :class:`RunStore`).
DURABILITY_LEVELS = ("record", "batch", "none")

#: Name of the v2 manifest file inside a sharded store directory.
MANIFEST_NAME = "MANIFEST.json"

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"


def _shard_name(index: int) -> str:
    return f"{_SHARD_PREFIX}{index:05d}{_SHARD_SUFFIX}"


def _is_directory_layout(path: Path) -> bool:
    """Classify a store path: directory (v2 sharded) or single file (v1).

    An existing path is classified by what it is; a fresh path by its
    spelling -- a ``.jsonl``/``.json``/``.ndjson`` suffix means the
    classic single-file layout, anything else becomes a shard directory.
    """
    if path.is_dir():
        return True
    if path.exists():
        return False
    return path.suffix.lower() not in (".jsonl", ".json", ".ndjson")


class RunStore:
    """Content-addressed storage for campaign cells (JSONL on disk).

    Records are one of two kinds::

        {"kind": "run",   "key": <run_key>,   "spec": ..., "row": ...,
         "result": ..., "provenance": ...}
        {"kind": "graph", "key": <graph_key>, "description": {...}}

    Storage is append-only; on load, the last record per key wins, so
    overwriting a cell is just appending a fresh record
    (:meth:`compact` rewrites the store without the superseded
    records).

    Args:
        path: ``None`` for a purely in-memory store, a file path for
            the classic single-file JSONL layout, or a directory path
            for the sharded v2 layout (``MANIFEST.json`` +
            ``shard-NNNNN.jsonl``).
        durability: ``"batch"`` (default) buffers appends and commits
            them with one fsync per :attr:`batch_size` records or
            explicit :meth:`flush`; ``"record"`` commits and fsyncs
            every append immediately; ``"none"`` never calls fsync.
        batch_size: records per automatic group commit under
            ``"batch"`` durability.
        shard_records: records per shard file before the directory
            layout rolls over to a new shard.
        read_only: open for reading only.  Crash repairs (torn-tail
            truncation, re-termination newlines) stay in-memory and
            every write path (:meth:`record_run`, :meth:`flush`,
            :meth:`compact`, :meth:`merge_from`) raises
            :class:`~repro.exceptions.ConfigurationError`.  The path
            must exist.
    """

    #: Backend identifier, mirrored by ``ColumnarStore.backend_name``.
    backend_name = "jsonl"

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        durability: str = "batch",
        batch_size: int = 64,
        shard_records: int = 4096,
        read_only: bool = False,
    ) -> None:
        if durability not in DURABILITY_LEVELS:
            raise ConfigurationError(
                f"unknown durability {durability!r}; expected one of "
                f"{', '.join(DURABILITY_LEVELS)}"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if shard_records < 1:
            raise ConfigurationError(f"shard_records must be >= 1, got {shard_records}")
        self.path = Path(path) if path is not None else None
        self.durability = durability
        self.batch_size = batch_size
        self.shard_records = shard_records
        self.read_only = read_only
        if read_only:
            if self.path is None:
                raise ConfigurationError("read_only requires an on-disk store path")
            if not self.path.exists():
                raise ConfigurationError(f"no run store at {self.path}")
        self.stats: Dict[str, int] = {
            "appends": 0,
            "commits": 0,
            "fsyncs": 0,
            "recovered_lines": 0,
        }
        self._runs: Dict[str, Dict[str, object]] = {}
        self._graphs: Dict[str, GraphDescription] = {}
        self._buffer: List[str] = []
        self._handle = None
        self._sharded = self.path is not None and _is_directory_layout(self.path)
        #: Shard file names in commit order (single-file stores use one
        #: pseudo-shard: the file itself).
        self._shards: List[str] = []
        #: Physical records in the active (last) shard.
        self._active_records = 0
        #: Physical records on disk across all shards (>= logical ones).
        self._physical_records = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- context manager / lifecycle -------------------------------------

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def flush(self) -> None:
        """Commit every buffered record to disk (one write, one fsync).

        A no-op for in-memory stores and when the buffer is empty.
        Under ``durability="none"`` the data is written but not fsynced.
        """
        if self.path is None or not self._buffer:
            return
        self._require_writable()
        start = 0
        while start < len(self._buffer):
            self._rotate_if_needed()
            if self._sharded:
                room = max(1, self.shard_records - self._active_records)
                chunk = self._buffer[start : start + room]
            else:
                chunk = self._buffer[start:]
            handle = self._open_handle()
            handle.write("".join(chunk))
            handle.flush()
            if self.durability != "none":
                os.fsync(handle.fileno())
                self.stats["fsyncs"] += 1
            self._active_records += len(chunk)
            self._physical_records += len(chunk)
            start += len(chunk)
        self._buffer.clear()
        self.stats["commits"] += 1

    def close(self) -> None:
        """Flush and release the underlying file handle."""
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- layout ----------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        """True for the directory (v2) layout, False for a single file."""
        return self._sharded

    def shard_paths(self) -> List[Path]:
        """The on-disk files holding this store's records, in order."""
        if self.path is None:
            return []
        if not self._sharded:
            return [self.path] if self.path.exists() else []
        return [self.path / name for name in self._shards]

    def _manifest_path(self) -> Path:
        assert self.path is not None
        return self.path / MANIFEST_NAME

    def _write_manifest(self) -> None:
        payload = {
            "version": 2,
            "shards": list(self._shards),
            "shard_records": self.shard_records,
        }
        tmp = self._manifest_path().with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self._manifest_path())

    def _discover_shards(self) -> List[str]:
        """Shard names from the manifest, self-healed against the directory.

        Shards written after a crash (before the manifest caught up) are
        globbed back in; shards listed but missing are dropped.  Order is
        the shard index order either way.
        """
        assert self.path is not None
        names = set()
        manifest = self._manifest_path()
        if manifest.exists():
            try:
                listed = json.loads(manifest.read_text(encoding="utf-8"))
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{manifest}: corrupt store manifest ({error})"
                ) from error
            names.update(str(name) for name in listed.get("shards", []))
        names.update(
            entry.name
            for entry in self.path.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}")
        )
        return sorted(name for name in names if (self.path / name).exists())

    def _rotate_if_needed(self) -> None:
        """Ensure the active shard has room; roll to a new one if not."""
        if not self._sharded:
            return
        if self._shards and self._active_records < self.shard_records:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._shards.append(_shard_name(len(self._shards)))
        self._active_records = 0
        self.path.mkdir(parents=True, exist_ok=True)
        self._write_manifest()

    def _open_handle(self):
        if self._handle is None:
            if self._sharded:
                self._rotate_if_needed()
                target = self.path / self._shards[-1]
            else:
                target = self.path
            target.parent.mkdir(parents=True, exist_ok=True)
            self._handle = target.open("a", encoding="utf-8")
        return self._handle

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        if self._sharded:
            self._shards = self._discover_shards()
            for name in self._shards:
                self._active_records = self._load_file(self.path / name)
        else:
            self._active_records = self._load_file(self.path)

    def _load_file(self, path: Path) -> int:
        """Load one JSONL file into the in-memory maps; returns its record count.

        Streamed line by line (legacy single-file stores can be huge).
        The final line is allowed to be torn (no terminating newline and
        unparseable): that is the signature of a crash mid-write, and
        the record it held was never acknowledged as committed.  Any
        other malformed line is corruption and raises.
        """
        records = 0
        needs_newline = False
        offset = line_number = 0
        with path.open("rb") as handle:
            for raw in handle:
                line_number += 1
                line_start = offset
                offset += len(raw)
                # A line can lack its terminator only at EOF.
                terminated = raw.endswith(b"\n")
                stripped = raw.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                    if not terminated:
                        # The tear landed exactly between the record's
                        # last byte and its newline: the record is
                        # complete and kept, but the file must be
                        # re-terminated or the next append would
                        # concatenate onto this line and corrupt it for
                        # every later reader.
                        needs_newline = True
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    if not terminated:
                        # Torn write: the crash interrupted this append.
                        # The tail must also be cut from the file, or
                        # later appends would concatenate onto the
                        # half-record and corrupt the line for every
                        # subsequent reader.
                        self.stats["recovered_lines"] += 1
                        if not self.read_only:
                            try:
                                os.truncate(path, line_start)
                            except OSError:
                                pass  # read-only filesystem: recovery stays in-memory
                        continue
                    raise ConfigurationError(
                        f"{path}:{line_number}: corrupt run-store line ({error})"
                    ) from error
                kind = record.get("kind")
                if kind == "run":
                    self._runs[str(record["key"])] = record
                elif kind == "graph":
                    self._graphs[str(record["key"])] = dict(record["description"])
                else:
                    raise ConfigurationError(
                        f"{path}:{line_number}: unknown record kind {kind!r}"
                    )
                records += 1
                self._physical_records += 1
        if needs_newline and not self.read_only:
            try:
                with path.open("a", encoding="utf-8") as handle:
                    handle.write("\n")
            except OSError:
                pass  # read-only filesystem: the in-memory state is still right
        return records

    # -- writing ---------------------------------------------------------

    def _require_writable(self) -> None:
        if self.read_only:
            raise ConfigurationError(
                f"store at {self.path} is opened read_only; writes are not allowed"
            )

    def _append(self, record: Dict[str, object]) -> None:
        self._require_writable()
        if self.path is None:
            return
        # No sort_keys: records are built in deterministic order, and
        # preserving row insertion order keeps table columns stable
        # when rows are reloaded on resume.
        self._buffer.append(json.dumps(record) + "\n")
        self.stats["appends"] += 1
        if self.durability == "record" or len(self._buffer) >= self.batch_size:
            self.flush()

    # -- run records -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._runs)

    def __contains__(self, key: str) -> bool:
        return key in self._runs

    def has_run(self, key: str) -> bool:
        return key in self._runs

    def run_keys(self) -> List[str]:
        return list(self._runs)

    def get_row(self, key: str) -> Dict[str, object]:
        """The flat output row recorded for ``key`` (KeyError if absent).

        Deep-copied: mutating the returned row (including nested lists
        or detail dicts) must never reach the store's own record, or a
        later :meth:`compact` would persist the corruption.
        """
        return copy.deepcopy(self._runs[key]["row"])

    def get_result(self, key: str) -> MSTRunResult:
        """The full deserialized result recorded for ``key``."""
        return MSTRunResult.from_json_dict(self._runs[key]["result"])

    def get_spec(self, key: str) -> RunSpec:
        return RunSpec.from_json_dict(self._runs[key]["spec"])

    def get_provenance(self, key: str) -> Dict[str, object]:
        return copy.deepcopy(self._runs[key]["provenance"])

    def record_run(
        self,
        spec: RunSpec,
        row: Dict[str, object],
        result_json: Dict[str, object],
        provenance: Dict[str, object],
    ) -> Dict[str, object]:
        record = make_run_record(spec, row, result_json, provenance)
        self._insert_run_record(record)
        return record

    def _insert_run_record(self, record: Dict[str, object]) -> None:
        """Backend hook: adopt one already-built run record (last wins)."""
        self._runs[str(record["key"])] = record
        self._append(record)

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """All recorded rows, in insertion (file) order (deep copies)."""
        for record in self._runs.values():
            yield copy.deepcopy(record["row"])

    def iter_run_records(self) -> Iterator[Dict[str, object]]:
        """Every live run record, in insertion order.

        Backend-agnostic iteration surface used by :func:`merge_stores`.
        The yielded dicts are the store's own records -- treat them as
        read-only (use :meth:`get_row` / :meth:`iter_rows` for copies).
        """
        yield from self._runs.values()

    # -- graph description cache ----------------------------------------

    def graph_description(self, key: str) -> Optional[GraphDescription]:
        description = self._graphs.get(key)
        return copy.deepcopy(description) if description is not None else None

    def has_graph(self, key: str) -> bool:
        return key in self._graphs

    def iter_graph_items(self) -> Iterator[Tuple[str, GraphDescription]]:
        """Every cached graph description, in insertion order."""
        for key, description in self._graphs.items():
            yield key, dict(description)

    def record_graph(self, key: str, description: GraphDescription) -> None:
        self._graphs[key] = dict(description)
        self._append({"kind": "graph", "key": key, "description": dict(description)})

    def graph_keys(self) -> List[str]:
        return list(self._graphs)

    # -- maintenance -----------------------------------------------------

    def _live_records(self) -> Iterator[Dict[str, object]]:
        """Every live (non-superseded) record: graphs first, then runs."""
        for key, description in self._graphs.items():
            yield {"kind": "graph", "key": key, "description": dict(description)}
        yield from self._runs.values()

    def compact(self) -> Dict[str, int]:
        """Rewrite the store keeping only the last record per key.

        Drops superseded duplicates (``resume=False`` re-runs, merged
        overlaps).  The rewrite is crash-safe: the full live record set
        is written to a temporary and renamed into place (for sharded
        stores: as one consolidated shard) before any old file is
        removed, so no window loses committed records.  A second
        :meth:`compact` is a no-op (idempotent).  Returns
        ``{"before": .., "after": .., "dropped": ..}`` physical record
        counts; in-memory stores report zeros.
        """
        if self.path is None:
            return {"before": 0, "after": 0, "dropped": 0}
        self._require_writable()
        self.close()
        live = list(self._live_records())
        before = self._physical_records
        if self._sharded:
            self.path.mkdir(parents=True, exist_ok=True)
            # The compacted output is one shard regardless of
            # shard_records (appends re-grow the shard set from there):
            # a single os.replace switches the whole live record set
            # atomically *before* any old shard is removed.  Every
            # crash window is then safe -- stale shards left behind
            # only re-assert the newest value of keys they contain
            # (within-shard order is append order), and the
            # self-healing glob drops them once the unlinks complete.
            name = _shard_name(0)
            self._rewrite_atomically(self.path / name, live)
            for stale in self._shards:
                if stale != name:
                    (self.path / stale).unlink(missing_ok=True)
            self._shards = [name]
            self._write_manifest()
        else:
            self._rewrite_atomically(self.path, live)
        self._active_records = len(live)
        self._physical_records = len(live)
        return {"before": before, "after": len(live), "dropped": before - len(live)}

    def _rewrite_atomically(self, target: Path, records: List[Dict[str, object]]) -> None:
        """Write ``records`` to a temporary and rename it over ``target``.

        Always fsyncs, whatever the durability level: this path deletes
        the only other copy of committed (possibly fsynced) records, so
        the knob that governs append acknowledgment latency must not
        weaken a destructive rewrite.
        """
        tmp = target.with_name(target.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)

    def merge_from(self, source: Union["RunStore", str, Path]) -> Dict[str, int]:
        """Fold ``source`` (a store of any backend, or a path) into this one.

        Records whose key this store already holds are kept as-is, which
        makes merging the same source twice -- or merging stores from
        parallel CI shards that overlap -- idempotent.  Source paths are
        opened ``read_only`` (merging must never side-effect the
        source).  Returns ``{"runs": .., "graphs": .., "skipped": ..}``
        counts.
        """
        self._require_writable()
        return merge_stores(self, source)

    # -- physical record interchange -------------------------------------

    def iter_record_lines(self) -> Iterator[str]:
        """Every physical record as its exact JSON text, in file order.

        Superseded records are included (conversion preserves the full
        append history); blank lines and torn tails are skipped, exactly
        as loading does.  In-memory stores yield their live records.
        Used by :func:`convert_store` for byte-identical migration.
        """
        if self.path is None:
            for record in self._live_records():
                yield json.dumps(record)
            return
        self.flush()
        for path in self.shard_paths():
            with path.open("rb") as handle:
                for raw in handle:
                    terminated = raw.endswith(b"\n")
                    stripped = raw.strip()
                    if not stripped:
                        continue
                    try:
                        json.loads(stripped)
                    except (json.JSONDecodeError, UnicodeDecodeError) as error:
                        if not terminated:
                            continue  # torn tail: dropped on load as well
                        raise ConfigurationError(
                            f"{path}: corrupt run-store line ({error})"
                        ) from error
                    yield stripped.decode("utf-8")

    def append_record_line(self, line: str) -> None:
        """Append one physical record given as its exact JSON text.

        The text is preserved verbatim (modulo the terminating newline),
        which is what makes ``store convert`` round trips byte-identical.
        """
        self._require_writable()
        text = line.strip()
        if not text:
            return
        try:
            record = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid store record line ({error})") from error
        kind = record.get("kind")
        if kind == "run":
            self._runs[str(record["key"])] = record
        elif kind == "graph":
            self._graphs[str(record["key"])] = dict(record["description"])
        else:
            raise ConfigurationError(f"unknown record kind {kind!r}")
        if self.path is None:
            return
        self._buffer.append(text + "\n")
        self.stats["appends"] += 1
        if self.durability == "record" or len(self._buffer) >= self.batch_size:
            self.flush()


# -- backend seam ---------------------------------------------------------

#: Backend names accepted by :func:`open_store` / ``--store-backend``.
STORE_BACKENDS = ("auto", "jsonl", "columnar")

#: Fresh paths with one of these suffixes select the columnar backend.
_COLUMNAR_SUFFIXES = (".sqlite", ".sqlite3", ".db")

_SQLITE_MAGIC = b"SQLite format 3\x00"


def make_run_record(
    spec: RunSpec,
    row: Dict[str, object],
    result_json: Dict[str, object],
    provenance: Dict[str, object],
) -> Dict[str, object]:
    """The canonical run-record dict shared by every store backend."""
    return {
        "kind": "run",
        "key": spec.run_key(),
        "spec": spec.to_json_dict(),
        # Copied: callers may decorate their returned rows with
        # presentation columns; the store must not see those.
        "row": dict(row),
        "result": result_json,
        "provenance": provenance,
    }


def _looks_like_sqlite(path: Path) -> bool:
    try:
        with path.open("rb") as handle:
            return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def detect_backend(path: Union[str, Path]) -> str:
    """Classify a store path as ``"jsonl"`` or ``"columnar"``.

    Existing paths are classified by what they hold (directories and
    JSONL files are ``jsonl``; files starting with the SQLite magic are
    ``columnar``); fresh paths by their suffix (``.sqlite`` /
    ``.sqlite3`` / ``.db`` select the columnar backend).
    """
    path = Path(path)
    if path.is_dir():
        return "jsonl"
    if path.exists():
        return "columnar" if _looks_like_sqlite(path) else "jsonl"
    return "columnar" if path.suffix.lower() in _COLUMNAR_SUFFIXES else "jsonl"


def open_store(
    path: Optional[Union[str, Path]] = None,
    backend: str = "auto",
    durability: str = "batch",
    batch_size: int = 64,
    shard_records: int = 4096,
    read_only: bool = False,
):
    """Open a run store of any backend behind one construction seam.

    ``backend="auto"`` (the default) resolves via :func:`detect_backend`;
    ``path=None`` is always the in-memory JSONL-backend store.  Every
    construction site that accepts a user-supplied store path (CLI,
    :class:`~repro.api.runner.Runner`, scheduler shards) goes through
    here so the columnar backend is a spelling away everywhere.
    """
    if backend not in STORE_BACKENDS:
        raise ConfigurationError(
            f"unknown store backend {backend!r}; expected one of "
            f"{', '.join(STORE_BACKENDS)}"
        )
    if backend == "auto":
        backend = "jsonl" if path is None else detect_backend(path)
    if backend == "columnar":
        if path is None:
            raise ConfigurationError("the columnar backend requires an on-disk path")
        from .columnar import ColumnarStore

        return ColumnarStore(
            path, durability=durability, batch_size=batch_size, read_only=read_only
        )
    return RunStore(
        path,
        durability=durability,
        batch_size=batch_size,
        shard_records=shard_records,
        read_only=read_only,
    )


def _same_store_path(a: Optional[Path], b: Optional[Path]) -> bool:
    """True when both paths name the same store file/directory.

    Resolved before comparison so relative/absolute/symlinked spellings
    of one path cannot bypass the self-merge guard.
    """
    if a is None or b is None:
        return False
    try:
        return Path(a).resolve() == Path(b).resolve()
    except OSError:
        return Path(a) == Path(b)


def merge_stores(dest, source) -> Dict[str, int]:
    """Fold ``source`` into ``dest`` across any backend pairing.

    Both stores only need the backend-agnostic surface
    (``iter_graph_items`` / ``iter_run_records`` / ``has_run`` /
    ``has_graph`` / ``_insert_run_record``), so JSONL and columnar
    stores merge in any direction.  Source paths are opened read-only.
    """
    if isinstance(source, (str, Path)):
        source_path = Path(source)
        if not source_path.exists():
            raise ConfigurationError(f"no run store at {source_path}")
        if _same_store_path(dest.path, source_path):
            raise ConfigurationError("cannot merge a store into itself")
        opened = open_store(source_path, read_only=True)
        try:
            return merge_stores(dest, opened)
        finally:
            opened.close()
    if source is dest or _same_store_path(dest.path, source.path):
        raise ConfigurationError("cannot merge a store into itself")
    merged_graphs = merged_runs = skipped = 0
    for key, description in source.iter_graph_items():
        if dest.has_graph(key):
            skipped += 1
            continue
        dest.record_graph(key, description)
        merged_graphs += 1
    for record in source.iter_run_records():
        if dest.has_run(str(record["key"])):
            skipped += 1
            continue
        dest._insert_run_record(record)
        merged_runs += 1
    dest.flush()
    return {"runs": merged_runs, "graphs": merged_graphs, "skipped": skipped}


def convert_store(
    source: Union[str, Path],
    destination: Union[str, Path],
    backend: str = "auto",
    durability: str = "batch",
    shard_records: int = 4096,
) -> Dict[str, object]:
    """Copy a store record-for-record into a fresh store at ``destination``.

    Every physical record's JSON text travels verbatim (superseded
    records included), so ``JSONL -> columnar -> JSONL`` round trips are
    byte-identical for single-file stores and byte-identical per record
    stream for sharded ones.  The destination must not exist; the source
    is opened read-only.
    """
    source_path = Path(source)
    if not source_path.exists():
        raise ConfigurationError(f"no run store at {source_path}")
    dest_path = Path(destination)
    if dest_path.exists():
        raise ConfigurationError(f"refusing to convert onto existing path {dest_path}")
    src = open_store(source_path, read_only=True)
    try:
        dest = open_store(
            dest_path, backend=backend, durability=durability, shard_records=shard_records
        )
        try:
            records = 0
            for line in src.iter_record_lines():
                dest.append_record_line(line)
                records += 1
        finally:
            dest.close()
    finally:
        src.close()
    return {"records": records, "backend": dest.backend_name}
